"""Provable-redundancy certificates for untestable stuck-at faults.

The prover (:class:`RedundancyProver`) tries, per fault and in cost
order, four independent proofs of undetectability under the simulator's
exact semantics (all-X start, binary-discrepancy-at-a-PO detection):

* ``unexcitable`` — the value-set fixpoint shows the fault site can
  never take the binary value opposite the stuck value, so the forced
  value only ever *refines* X; ternary gate functions are monotone
  under refinement, hence every binary good-machine output value is
  reproduced by the faulty machine.
* ``dead-cone`` — the net where the fault effect enters the circuit
  has no structural path to any primary output, across any number of
  frames.
* ``implied-unexcitable`` — assuming the site takes the opposite
  binary value contradicts the implication closure; the recorded
  derivation is the certificate.
* ``unobservable`` — a monotone difference-propagation fixpoint over
  the time-unrolled structure: the set ``D`` of nets that can *ever*
  differ between the good and faulty machine, computed against the
  good and per-fault faulty value-set fixpoints, never reaches a
  primary output.  Propagation out of a gate is blocked when a side
  input holds the same constant controlling value in both machines.

Every certificate is machine-checkable: :func:`check_certificate`
re-derives the cited facts from the netlist (value-set fixpoints,
reachability, step replay, closure conditions) without trusting the
search that produced them.  The test suite additionally cross-checks
every certificate against the oracle fault simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.sim.faults import Fault, fault_name, validate_fault
from repro.analysis.static.implication import (
    ImplicationEngine,
    replay_implication_steps,
)
from repro.analysis.static.structure import observable_nets
from repro.analysis.static.valuesets import (
    CAN0,
    CAN1,
    SET_0,
    SET_1,
    Clamp,
    frame_fixpoint,
    set_to_str,
)

KIND_UNEXCITABLE = "unexcitable"
KIND_DEAD_CONE = "dead-cone"
KIND_IMPLIED = "implied-unexcitable"
KIND_UNOBSERVABLE = "unobservable"

CERTIFICATE_KINDS = (
    KIND_UNEXCITABLE,
    KIND_DEAD_CONE,
    KIND_IMPLIED,
    KIND_UNOBSERVABLE,
)

_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}


@dataclass
class Certificate:
    """One machine-checkable proof that a fault is untestable."""

    kind: str
    fault: Fault
    evidence: Dict[str, object]

    @property
    def name(self) -> str:
        return fault_name(self.fault)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON form."""
        return {
            "kind": self.kind,
            "fault": {
                "name": self.name,
                "net": self.fault.net,
                "stuck": self.fault.stuck,
                "gate": self.fault.gate,
                "pin": self.fault.pin,
            },
            "evidence": dict(self.evidence),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Certificate":
        """Validate and rebuild a certificate from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping):
            raise AnalysisError(f"certificate is not an object: {payload!r}")
        kind = payload.get("kind")
        if kind not in CERTIFICATE_KINDS:
            raise AnalysisError(f"unknown certificate kind {kind!r}")
        fault_raw = payload.get("fault")
        if not isinstance(fault_raw, Mapping):
            raise AnalysisError(f"certificate has no fault: {payload!r}")
        evidence = payload.get("evidence", {})
        if not isinstance(evidence, Mapping):
            raise AnalysisError(f"certificate evidence is not an object")
        try:
            pin = fault_raw.get("pin")
            fault = Fault(
                net=str(fault_raw["net"]),
                stuck=int(fault_raw["stuck"]),  # type: ignore[arg-type]
                gate=(
                    str(fault_raw["gate"])
                    if fault_raw.get("gate") is not None
                    else None
                ),
                pin=int(pin) if pin is not None else None,  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(f"malformed certificate fault: {fault_raw!r}") from exc
        return cls(kind=str(kind), fault=fault, evidence=dict(evidence))


def _effect_entry(fault: Fault) -> str:
    """The net where the fault effect first enters the circuit."""
    return fault.gate if fault.gate is not None else fault.net


class RedundancyProver:
    """Per-fault untestability proofs over one circuit.

    Builds the good-machine value-set fixpoint and the structural
    observable region once; the implication engine learns lazily on the
    first fault that needs it.
    """

    def __init__(self, circuit: Circuit, max_frames: Optional[int] = None) -> None:
        self.circuit = circuit
        self.max_frames = max_frames
        self.value_sets, self.frames = frame_fixpoint(circuit, max_frames=max_frames)
        self.observable = observable_nets(circuit)
        self._engine: Optional[ImplicationEngine] = None

    @property
    def engine(self) -> ImplicationEngine:
        """The implication engine, learned on first use."""
        if self._engine is None:
            self._engine = ImplicationEngine(self.circuit, self.value_sets)
            self._engine.learn()
        return self._engine

    def prove(self, fault: Fault) -> Optional[Certificate]:
        """A certificate of untestability, or ``None`` (possibly testable)."""
        validate_fault(self.circuit, fault)
        opposite = CAN1 if fault.stuck == 0 else CAN0
        site_mask = self.value_sets.get(fault.net, 0)
        if not site_mask & opposite:
            return Certificate(
                KIND_UNEXCITABLE,
                fault,
                {"site": fault.net, "values": set_to_str(site_mask)},
            )
        entry = _effect_entry(fault)
        if entry not in self.observable:
            return Certificate(KIND_DEAD_CONE, fault, {"entry": entry})
        literal = (fault.net, 1 - fault.stuck)
        steps = self.engine.contradictions.get(literal)
        if steps is not None:
            return Certificate(
                KIND_IMPLIED,
                fault,
                {
                    "literal": [literal[0], literal[1]],
                    "steps": [dict(s) for s in steps],
                },
            )
        return self._prove_unobservable(fault)

    # -- difference propagation ---------------------------------------------

    def _prove_unobservable(self, fault: Fault) -> Optional[Certificate]:
        clamp = Clamp(fault.net, fault.stuck, fault.gate, fault.pin)
        faulty_sets, _ = frame_fixpoint(
            self.circuit, clamp, max_frames=self.max_frames
        )
        region, blocked = _difference_region(
            self.circuit, self.value_sets, faulty_sets, fault
        )
        if region is None:
            return None
        return Certificate(
            KIND_UNOBSERVABLE,
            fault,
            {
                "region": sorted(region),
                "blocked": [list(b) for b in sorted(blocked)],
            },
        )


def _agree_const(
    gsets: Mapping[str, int], fsets: Mapping[str, int], net: str
) -> Optional[int]:
    """The binary constant ``net`` provably holds in *both* machines."""
    g = gsets.get(net, 0)
    if g == fsets.get(net, 0) and g in (SET_0, SET_1):
        return 0 if g == SET_0 else 1
    return None


def _gate_blocked(
    circuit: Circuit,
    gsets: Mapping[str, int],
    fsets: Mapping[str, int],
    gate_name: str,
    skip_pin: Optional[int] = None,
) -> Optional[Tuple[str, str, int]]:
    """A side input holding an agree-constant controlling value, if any.

    Such an input pins the gate output to the same constant in both
    machines, so no difference can pass through.  ``skip_pin`` excludes
    the faulty pin itself for branch faults.
    """
    gate = circuit.gate(gate_name)
    control = _CONTROLLING.get(gate.gtype)
    if control is None:
        return None
    for pin, driver in enumerate(gate.fanins):
        if pin == skip_pin:
            continue
        if _agree_const(gsets, fsets, driver) == control:
            return (gate_name, driver, control)
    return None


def _difference_region(
    circuit: Circuit,
    gsets: Mapping[str, int],
    fsets: Mapping[str, int],
    fault: Fault,
) -> Tuple[Optional[Set[str]], List[Tuple[str, str, int]]]:
    """The monotone closure of nets that may ever differ between the
    good and the faulty machine, or ``None`` when it reaches a PO."""
    blocked: List[Tuple[str, str, int]] = []
    region: Set[str] = set()
    worklist: List[str] = []

    def add(net: str) -> bool:
        """Returns False when the region reached a primary output."""
        if net in region:
            return True
        region.add(net)
        worklist.append(net)
        return not circuit.is_output(net)

    # Seed: where can the forced value first cause a divergence?
    if fault.gate is None:
        if not add(fault.net):
            return None, blocked
    else:
        gate = circuit.gate(fault.gate)
        seeded = True
        if _agree_const(gsets, fsets, fault.gate) is not None:
            seeded = False
        elif gate.gtype is not GateType.DFF:
            block = _gate_blocked(
                circuit, gsets, fsets, fault.gate, skip_pin=fault.pin
            )
            if block is not None:
                blocked.append(block)
                seeded = False
        if seeded and not add(fault.gate):
            return None, blocked

    while worklist:
        net = worklist.pop()
        for sink, _pin in circuit.fanout(net):
            if sink in region:
                continue
            if circuit.gate(sink).gtype is GateType.DFF:
                if _agree_const(gsets, fsets, sink) is None and not add(sink):
                    return None, blocked
                continue
            if _agree_const(gsets, fsets, sink) is not None:
                continue
            block = _gate_blocked(circuit, gsets, fsets, sink)
            if block is not None:
                blocked.append(block)
                continue
            if not add(sink):
                return None, blocked
    return region, blocked


# -- validation -------------------------------------------------------------


def check_certificate(circuit: Circuit, certificate: Certificate) -> bool:
    """Re-validate ``certificate`` against ``circuit`` from scratch.

    Recomputes every fact the certificate relies on — value-set
    fixpoints, structural reachability, implication-step replay, the
    difference-region closure conditions — without re-running the
    search.  Returns ``False`` on any mismatch (including a fault that
    does not fit the circuit).
    """
    fault = certificate.fault
    try:
        validate_fault(circuit, fault)
    except Exception:
        return False
    evidence = certificate.evidence
    if certificate.kind == KIND_UNEXCITABLE:
        value_sets, _ = frame_fixpoint(circuit)
        mask = value_sets.get(fault.net, 0)
        opposite = CAN1 if fault.stuck == 0 else CAN0
        return not mask & opposite and evidence.get("values") == set_to_str(mask)
    if certificate.kind == KIND_DEAD_CONE:
        entry = _effect_entry(fault)
        return evidence.get("entry") == entry and entry not in observable_nets(
            circuit
        )
    if certificate.kind == KIND_IMPLIED:
        literal_raw = evidence.get("literal")
        steps = evidence.get("steps")
        if (
            not isinstance(literal_raw, (list, tuple))
            or len(literal_raw) != 2
            or not isinstance(steps, (list, tuple))
        ):
            return False
        literal = (str(literal_raw[0]), int(literal_raw[1]))
        if literal != (fault.net, 1 - fault.stuck):
            return False
        value_sets, _ = frame_fixpoint(circuit)
        return replay_implication_steps(circuit, value_sets, literal, steps)
    if certificate.kind == KIND_UNOBSERVABLE:
        return _check_unobservable(circuit, fault, evidence)
    return False


def _check_unobservable(
    circuit: Circuit, fault: Fault, evidence: Mapping[str, object]
) -> bool:
    region_raw = evidence.get("region")
    if not isinstance(region_raw, (list, tuple)):
        return False
    region = {str(net) for net in region_raw}
    if any(net not in circuit.gates for net in region):
        return False
    if any(circuit.is_output(net) for net in region):
        return False
    gsets, _ = frame_fixpoint(circuit)
    fsets, _ = frame_fixpoint(
        circuit, Clamp(fault.net, fault.stuck, fault.gate, fault.pin)
    )
    # Region members must genuinely be allowed to differ (no agreed
    # constants smuggled in), and the fault effect must enter inside it
    # (or be provably unable to enter at all).
    if any(_agree_const(gsets, fsets, net) is not None for net in region):
        return False
    if fault.gate is None:
        if fault.net not in region:
            return False
    else:
        gate = circuit.gate(fault.gate)
        if fault.gate not in region:
            if _agree_const(gsets, fsets, fault.gate) is None and (
                gate.gtype is GateType.DFF
                or _gate_blocked(
                    circuit, gsets, fsets, fault.gate, skip_pin=fault.pin
                )
                is None
            ):
                return False
    # Closure: a difference inside the region can never escape it.
    for net in region:
        for sink, _pin in circuit.fanout(net):
            if sink in region:
                continue
            if circuit.gate(sink).gtype is GateType.DFF:
                return False
            if _agree_const(gsets, fsets, sink) is not None:
                continue
            if _gate_blocked(circuit, gsets, fsets, sink) is None:
                return False
    return True
