"""The aggregate static-analysis pass: one call, one canonical payload.

:func:`analyze` runs the whole stack — value-set fixpoint, structural
analyses, implication learning, per-fault redundancy proofs — and
packages the results as one canonical JSON-ready payload: the payload
the ``repro analyze`` CLI emits, the artifact cache stores
(content-addressed under :func:`repro.runtime.keys.analysis_key`), and
the serve/flow layers report pruned faults from.

A :class:`StaticAnalysis` wraps the payload with typed accessors; when
rebuilt from a cache hit it re-proves nothing, and faults outside the
analyzed universe are proved on demand against a lazily rebuilt
prover (same inputs, same verdicts).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.sim.faults import Fault, fault_name
from repro.analysis.static.certify import (
    Certificate,
    RedundancyProver,
    check_certificate,
)
from repro.analysis.static.implication import ImplicationEngine
from repro.analysis.static.structure import (
    fanout_free_regions,
    observable_nets,
    post_dominators,
)
from repro.analysis.static.valuesets import constants_of, set_to_str
from repro.trace import trace_event, traced

ANALYSIS_FORMAT = 1
"""Version of the analysis payload layout (also part of the cache key)."""

VERDICT_UNTESTABLE = "untestable"
VERDICT_OPEN = "open"


def _literal_key(net: str, value: int) -> str:
    return f"{net}={value}"


@dataclass
class StaticAnalysis:
    """One circuit's static-analysis results.

    ``payload`` is the canonical JSON projection; ``certificates`` maps
    canonical fault names to their rebuilt :class:`Certificate` for the
    proved-untestable subset of the analyzed fault universe.
    """

    circuit: Circuit
    payload: Dict[str, object]
    certificates: Dict[str, Certificate]
    max_frames: Optional[int] = None
    _prover: Optional[RedundancyProver] = field(default=None, repr=False)
    _extra: Dict[str, Optional[Certificate]] = field(
        default_factory=dict, repr=False
    )

    @property
    def n_proved(self) -> int:
        """Faults of the analyzed universe proved untestable."""
        return len(self.certificates)

    def verdict(self, fault: Fault) -> Optional[Certificate]:
        """The fault's certificate, or ``None`` when possibly testable.

        Faults outside the analyzed universe are proved on demand and
        memoized (the prover is deterministic, so the answer matches
        what a direct analysis of that fault would have produced).
        """
        name = fault_name(fault)
        if name in self.certificates:
            return self.certificates[name]
        faults = self.payload.get("faults")
        if isinstance(faults, Mapping) and name in faults:
            return None
        if name not in self._extra:
            if self._prover is None:
                self._prover = RedundancyProver(
                    self.circuit, max_frames=self.max_frames
                )
            self._extra[name] = self._prover.prove(fault)
        return self._extra[name]

    def to_json(self) -> str:
        """Canonical JSON rendering (sorted keys, two-space indent)."""
        return json.dumps(self.payload, sort_keys=True, indent=2) + "\n"


def _build_payload(
    circuit: Circuit,
    faults: Sequence[Fault],
    max_frames: Optional[int],
) -> Dict[str, object]:
    """Run the full pass and project it to the canonical payload."""
    prover = RedundancyProver(circuit, max_frames=max_frames)
    engine: ImplicationEngine = prover.engine
    ffr = fanout_free_regions(circuit)
    dominators = post_dominators(circuit)
    observable = prover.observable
    dead_cones = sorted(net for net in circuit.gates if net not in observable)

    fault_entries: Dict[str, Dict[str, object]] = {}
    by_kind: Dict[str, int] = {}
    for fault in faults:
        certificate = prover.prove(fault)
        entry: Dict[str, object] = {
            "verdict": VERDICT_UNTESTABLE if certificate else VERDICT_OPEN,
            "certificate": certificate.to_dict() if certificate else None,
        }
        fault_entries[fault_name(fault)] = entry
        if certificate is not None:
            by_kind[certificate.kind] = by_kind.get(certificate.kind, 0) + 1

    implications = {
        _literal_key(net, value): [[m, w] for m, w in targets]
        for (net, value), targets in sorted(engine.implications.items())
        if targets
    }
    learned = {
        _literal_key(net, value): [[m, w] for m, w in targets]
        for (net, value), targets in sorted(engine.learned.items())
    }
    return {
        "format": ANALYSIS_FORMAT,
        "circuit": circuit.name,
        "config": {"max_frames": max_frames},
        "frames": prover.frames,
        "value_sets": {
            net: set_to_str(mask) for net, mask in sorted(prover.value_sets.items())
        },
        "constants": constants_of(prover.value_sets),
        "implied_constants": engine.implied_constants(),
        "contradictions": sorted(
            [net, value] for net, value in engine.contradictions
        ),
        "implications": implications,
        "learned": learned,
        "ffr": ffr,
        "dominators": {net: list(doms) for net, doms in dominators.items()},
        "observable": sorted(observable),
        "dead_cones": dead_cones,
        "faults": fault_entries,
        "summary": {
            "n_faults": len(fault_entries),
            "proved_untestable": sum(by_kind.values()),
            "by_kind": dict(sorted(by_kind.items())),
        },
    }


def _certificates_from_payload(
    payload: Mapping[str, object],
) -> Dict[str, Certificate]:
    faults = payload.get("faults")
    if not isinstance(faults, Mapping):
        raise AnalysisError("analysis payload has no fault table")
    out: Dict[str, Certificate] = {}
    for name, entry in faults.items():
        if not isinstance(entry, Mapping):
            raise AnalysisError(f"malformed fault entry for {name!r}")
        cert_raw = entry.get("certificate")
        if cert_raw is not None:
            out[str(name)] = Certificate.from_dict(cert_raw)  # type: ignore[arg-type]
    return out


def analyze(
    circuit: Circuit,
    faults: Optional[Sequence[Fault]] = None,
    runtime: Optional[object] = None,
    max_frames: Optional[int] = None,
) -> StaticAnalysis:
    """Statically analyze ``circuit`` over ``faults``.

    ``faults`` defaults to the equivalence-collapsed universe the flows
    target.  With a runtime, the payload is served from (and stored
    into) the content-addressed artifact cache, and the pass is traced:
    a ``static_analysis`` span plus one deterministic ``analysis``
    summary event, identical whether computed or replayed from cache.
    """
    if faults is None:
        from repro.sim.collapse import collapse_faults

        faults = collapse_faults(circuit)
    faults = list(faults)
    with traced(runtime, "static_analysis", circuit=circuit.name):
        payload: Optional[Dict[str, object]] = None
        key: Optional[str] = None
        cache = getattr(runtime, "cache", None)
        if cache is not None:
            from repro.runtime.keys import (
                analysis_key,
                circuit_fingerprint,
                faults_fingerprint,
            )

            key = analysis_key(
                circuit_fingerprint(circuit),
                faults_fingerprint(faults),
                {"format": ANALYSIS_FORMAT, "max_frames": max_frames},
            )
            cached = cache.get(key)
            if _payload_valid(cached, faults):
                payload = dict(cached)  # type: ignore[arg-type]
                trace_event(runtime, "cache_hit", op="analysis", key=key)
            else:
                stats = getattr(runtime, "stats", None)
                if stats is not None:
                    stats.cache_misses += 1
                trace_event(runtime, "cache_miss", op="analysis", key=key)
        if payload is None:
            payload = _build_payload(circuit, faults, max_frames)
            if cache is not None and key is not None:
                cache.put(key, payload)
        certificates = _certificates_from_payload(payload)
        summary = payload.get("summary", {})
        trace_event(
            runtime,
            "analysis",
            circuit=circuit.name,
            faults=len(faults),
            proved=(
                summary.get("proved_untestable", 0)
                if isinstance(summary, Mapping)
                else 0
            ),
        )
        return StaticAnalysis(
            circuit=circuit,
            payload=payload,
            certificates=certificates,
            max_frames=max_frames,
        )


def _payload_valid(payload: object, faults: Sequence[Fault]) -> bool:
    """Accept a cached payload only if it covers exactly our universe."""
    if not isinstance(payload, Mapping):
        return False
    if payload.get("format") != ANALYSIS_FORMAT:
        return False
    table = payload.get("faults")
    if not isinstance(table, Mapping):
        return False
    return set(table) == {fault_name(f) for f in faults}


__all__ = [
    "ANALYSIS_FORMAT",
    "StaticAnalysis",
    "analyze",
    "check_certificate",
]
