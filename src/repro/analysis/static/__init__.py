"""Static implication engine and provable-redundancy identification.

Layered bottom-up:

* :mod:`repro.analysis.static.valuesets` — possible-value-set
  abstraction (subsets of ``{0, 1, X}``) with an accumulating frame
  fixpoint over the sequential structure; the soundness bedrock.
* :mod:`repro.analysis.static.structure` — observable region,
  fanout-free regions and frame-local post-dominators.
* :mod:`repro.analysis.static.implication` — direct and learned
  (contrapositive) implications, impossible literals with recorded,
  replayable derivations.
* :mod:`repro.analysis.static.certify` — per-fault untestability
  proofs emitting machine-checkable certificates, plus the
  independent certificate checker.
* :mod:`repro.analysis.static.engine` — the aggregate :func:`analyze`
  pass: canonical JSON payload, artifact-cache content addressing,
  trace attribution.
"""

from repro.analysis.static.valuesets import (
    CAN0,
    CAN1,
    CANX,
    SET_ALL,
    Clamp,
    constants_of,
    frame_fixpoint,
    gate_value_set,
    set_from_str,
    set_to_str,
)
from repro.analysis.static.structure import (
    fanout_free_regions,
    observable_nets,
    post_dominators,
)
from repro.analysis.static.implication import (
    ImplicationEngine,
    replay_implication_steps,
)
from repro.analysis.static.certify import (
    CERTIFICATE_KINDS,
    Certificate,
    RedundancyProver,
    check_certificate,
)
from repro.analysis.static.engine import (
    ANALYSIS_FORMAT,
    StaticAnalysis,
    analyze,
)

__all__ = [
    "ANALYSIS_FORMAT",
    "CAN0",
    "CAN1",
    "CANX",
    "CERTIFICATE_KINDS",
    "Certificate",
    "Clamp",
    "ImplicationEngine",
    "RedundancyProver",
    "SET_ALL",
    "StaticAnalysis",
    "analyze",
    "check_certificate",
    "constants_of",
    "fanout_free_regions",
    "frame_fixpoint",
    "gate_value_set",
    "observable_nets",
    "post_dominators",
    "replay_implication_steps",
    "set_from_str",
    "set_to_str",
]
