"""Structural analyses over the time-unrolled netlist.

Three classic ATPG structures, all deterministic functions of the
netlist alone:

* **Observable region** — backward reachability from the primary
  outputs over combinational edges *and* flip-flop D→Q edges (the
  time-unrolled sequential structure, unbounded depth).  A net outside
  it can never influence any output in any cycle: its faults are
  *dead-cone* undetectable.
* **Fanout-free regions** — each net's FFR head, the first stem (a
  multi-fanout net, a primary output, or a flip-flop D input) its
  single-path fanout chain runs into.  A fault effect inside an FFR
  must pass through the head to be observed.
* **Combinational post-dominators** — per net, the nets every
  frame-local path to an *exit* (a primary output or a flip-flop D
  input, where the effect crosses the frame boundary) passes through.
  Dominators are the gates a blocked side input kills whole cones at;
  certificates cite them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


def observable_nets(circuit: Circuit) -> FrozenSet[str]:
    """Nets with a structural path to some primary output, across any
    number of frame boundaries."""
    seen: Set[str] = set()
    queue = deque(circuit.outputs)
    while queue:
        net = queue.popleft()
        if net in seen:
            continue
        seen.add(net)
        for driver in circuit.gate(net).fanins:
            if driver not in seen:
                queue.append(driver)
    return frozenset(seen)


def fanout_free_regions(circuit: Circuit) -> Dict[str, str]:
    """Map each net to its fanout-free-region head."""
    heads: Dict[str, str] = {}

    def head_of(net: str) -> str:
        chain: List[str] = []
        current = net
        while current not in heads:
            sinks = circuit.fanout(current)
            if (
                circuit.is_output(current)
                or len(sinks) != 1
                or circuit.gate(sinks[0][0]).gtype is GateType.DFF
            ):
                heads[current] = current
                break
            chain.append(current)
            current = sinks[0][0]
        resolved = heads[current] if current in heads else current
        for name in chain:
            heads[name] = resolved
        return resolved

    for net in circuit.nets:
        head_of(net)
    return dict(sorted(heads.items()))


def post_dominators(circuit: Circuit) -> Dict[str, Tuple[str, ...]]:
    """Frame-local post-dominators of every net, toward the exits.

    Exits are primary outputs and flip-flop D pins; a net with no
    frame-local path to an exit dominates only itself.  Sets are
    returned sorted for canonical output.
    """
    doms: Dict[str, FrozenSet[str]] = {}
    order = [
        net
        for net in circuit.nets
        if circuit.gate(net).gtype.is_combinational or circuit.gate(net).gtype.is_source
    ]
    # Sinks first: combinational outputs in reverse topological order,
    # then every source net (whose sinks are all combinational or flops).
    for net in list(reversed(circuit.combinational_order)) + [
        n for n in order if not circuit.gate(n).gtype.is_combinational
    ]:
        sink_doms: List[FrozenSet[str]] = []
        exits = circuit.is_output(net)
        for sink, _pin in circuit.fanout(net):
            if circuit.gate(sink).gtype is GateType.DFF:
                exits = True
            else:
                sink_doms.append(doms[sink])
        if exits:
            doms[net] = frozenset({net})
        elif sink_doms:
            inter: FrozenSet[str] = sink_doms[0]
            for other in sink_doms[1:]:
                inter = inter & other
            doms[net] = inter | {net}
        else:
            doms[net] = frozenset({net})
    return {net: tuple(sorted(doms[net])) for net in sorted(doms)}
