"""COP: controllability-observability program estimates.

Classic random-pattern testability estimation (Brglez):

* **signal probability** ``p(net)`` — probability the net is 1 under
  independent uniform random inputs (propagated gate-by-gate with the
  independence approximation; flip-flops iterate to a fixpoint),
* **observability** ``o(net)`` — probability a change on the net is
  seen at some primary output, and
* **detection probability** of a stuck-at fault — probability one
  random pattern detects it: ``p(activate) * o(net)``.

These estimates are approximations (reconvergent fanout breaks the
independence assumption), but they rank faults well: the faults the
random-walk generator and the LFSR baseline leave behind are exactly
the low-detection-probability tail, which the benchmarks quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.sim.faults import Fault


@dataclass(frozen=True)
class CopEstimates:
    """COP probabilities per net.

    Attributes
    ----------
    probability:
        ``p(net = 1)`` under uniform random inputs.
    observability:
        Probability that flipping the net flips some primary output.
    """

    probability: Dict[str, float]
    observability: Dict[str, float]


def compute_cop(circuit: Circuit, iterations: int = 20) -> CopEstimates:
    """Estimate COP probabilities for ``circuit``.

    Flip-flop probabilities start at 0.5 and iterate through the state
    feedback ``iterations`` times (damped averaging for convergence).
    """
    prob: Dict[str, float] = {}
    for net, gate in circuit.gates.items():
        if gate.gtype is GateType.INPUT:
            prob[net] = 0.5
        elif gate.gtype is GateType.CONST0:
            prob[net] = 0.0
        elif gate.gtype is GateType.CONST1:
            prob[net] = 1.0
        else:
            prob[net] = 0.5

    for _ in range(iterations):
        for net in circuit.combinational_order:
            prob[net] = _gate_probability(circuit.gate(net), prob)
        for net in circuit.flops:
            d_net = circuit.gate(net).fanins[0]
            prob[net] = 0.5 * prob[net] + 0.5 * prob[d_net]

    obs: Dict[str, float] = {net: 0.0 for net in circuit.gates}
    for net in circuit.outputs:
        obs[net] = 1.0
    for _ in range(iterations):
        for net in reversed(circuit.combinational_order):
            gate = circuit.gate(net)
            for pin, fanin in enumerate(gate.fanins):
                through = obs[net] * _pin_sensitivity(gate, pin, prob)
                if through > obs[fanin]:
                    obs[fanin] = through
        for net in circuit.flops:
            d_net = circuit.gate(net).fanins[0]
            if obs[net] > obs[d_net]:
                obs[d_net] = obs[net]
        for net in circuit.gates:
            best = obs[net]
            for sink, pin in circuit.fanout(net):
                sink_gate = circuit.gate(sink)
                if sink_gate.gtype is GateType.DFF:
                    through = obs[sink]
                else:
                    through = obs[sink] * _pin_sensitivity(sink_gate, pin, prob)
                if through > best:
                    best = through
            obs[net] = best

    return CopEstimates(probability=prob, observability=obs)


def detection_probability(estimates: CopEstimates, fault: Fault) -> float:
    """Estimated probability that one random pattern detects ``fault``.

    Activation: the net must take the value opposite the stuck value;
    observation: the (stem) net's COP observability.  Branch faults use
    the stem observability as an (optimistic) proxy.
    """
    p = estimates.probability[fault.net]
    activation = p if fault.stuck == 0 else (1.0 - p)
    return activation * estimates.observability[fault.net]


def _gate_probability(gate, prob: Dict[str, float]) -> float:
    gtype = gate.gtype
    ins = [prob[f] for f in gate.fanins]
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return 1.0 - ins[0]
    if gtype in (GateType.AND, GateType.NAND):
        p = 1.0
        for value in ins:
            p *= value
        return p if gtype is GateType.AND else 1.0 - p
    if gtype in (GateType.OR, GateType.NOR):
        q = 1.0
        for value in ins:
            q *= 1.0 - value
        return 1.0 - q if gtype is GateType.OR else q
    # XOR / XNOR: fold pairwise; p(a^b) = pa(1-pb) + pb(1-pa).
    p = ins[0]
    for value in ins[1:]:
        p = p * (1.0 - value) + value * (1.0 - p)
    return p if gtype is GateType.XOR else 1.0 - p


def _pin_sensitivity(gate, pin: int, prob: Dict[str, float]) -> float:
    """Probability the gate output follows a change on ``pin``."""
    gtype = gate.gtype
    others = [prob[f] for k, f in enumerate(gate.fanins) if k != pin]
    if gtype in (GateType.BUF, GateType.NOT):
        return 1.0
    if gtype in (GateType.AND, GateType.NAND):
        s = 1.0
        for value in others:
            s *= value  # side inputs must be 1
        return s
    if gtype in (GateType.OR, GateType.NOR):
        s = 1.0
        for value in others:
            s *= 1.0 - value  # side inputs must be 0
        return s
    return 1.0  # XOR / XNOR always propagate
