"""Testability analysis.

* :mod:`repro.analysis.scoap` — SCOAP controllability/observability
  measures (Goldstein), extended to sequential circuits by iterating
  through the flip-flops to a fixpoint.
* :mod:`repro.analysis.cop` — COP signal probabilities and single
  stuck-at detection-probability estimates under random patterns;
  quantitatively explains which faults the LFSR baseline and the
  random-walk generator miss.
* :mod:`repro.analysis.static` — the static implication engine and
  provable-redundancy identifier: value-set constant propagation,
  learned implications, and per-fault untestability certificates that
  drive the certified fault pre-prune.
"""

from repro.analysis.scoap import ScoapMeasures, compute_scoap
from repro.analysis.cop import CopEstimates, compute_cop, detection_probability
from repro.analysis.static import (
    Certificate,
    RedundancyProver,
    StaticAnalysis,
    analyze,
    check_certificate,
)

__all__ = [
    "ScoapMeasures",
    "compute_scoap",
    "CopEstimates",
    "compute_cop",
    "detection_probability",
    "Certificate",
    "RedundancyProver",
    "StaticAnalysis",
    "analyze",
    "check_certificate",
]
