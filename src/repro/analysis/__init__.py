"""Testability analysis.

* :mod:`repro.analysis.scoap` — SCOAP controllability/observability
  measures (Goldstein), extended to sequential circuits by iterating
  through the flip-flops to a fixpoint.
* :mod:`repro.analysis.cop` — COP signal probabilities and single
  stuck-at detection-probability estimates under random patterns;
  quantitatively explains which faults the LFSR baseline and the
  random-walk generator miss.
"""

from repro.analysis.scoap import ScoapMeasures, compute_scoap
from repro.analysis.cop import CopEstimates, compute_cop, detection_probability

__all__ = [
    "ScoapMeasures",
    "compute_scoap",
    "CopEstimates",
    "compute_cop",
    "detection_probability",
]
