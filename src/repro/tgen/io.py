"""Test sequence file I/O.

A minimal, diff-friendly text format — one pattern per line as
``0``/``1``/``x`` characters, ``#`` comments, blank lines ignored:

    # s27, 10 cycles
    0111
    1001
    ...

Used by the CLI to hand sequences between runs and to external tools.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import SimulationError
from repro.tgen.sequence import TestSequence


def dumps_sequence(sequence: TestSequence, comment: str | None = None) -> str:
    """Render a sequence in the text format."""
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"# {row}")
    lines.extend(sequence.to_strings())
    return "\n".join(lines) + "\n"


def loads_sequence(text: str) -> TestSequence:
    """Parse the text format back into a sequence.

    Raises
    ------
    SimulationError
        On malformed characters or ragged line widths.
    """
    rows = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        for char in line:
            if char not in "01xX":
                raise SimulationError(
                    f"line {line_no}: bad character {char!r} in sequence file"
                )
        rows.append(line)
    return TestSequence.from_strings(rows)


def save_sequence(
    sequence: TestSequence, path: str | Path, comment: str | None = None
) -> None:
    """Write a sequence file."""
    Path(path).write_text(dumps_sequence(sequence, comment))


def load_sequence(path: str | Path) -> TestSequence:
    """Read a sequence file."""
    return loads_sequence(Path(path).read_text())
