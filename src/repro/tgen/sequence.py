"""The :class:`TestSequence` value type.

A test sequence ``T`` is a time-ordered list of primary-input patterns.
The paper's notation is mirrored directly:

* ``T(u)`` — the pattern at time unit ``u`` → :meth:`TestSequence.at`.
* ``T_i`` — the sequence restricted to input ``i`` →
  :meth:`TestSequence.restrict`.
* ``T_i(u)`` — one value → :meth:`TestSequence.value`.

Sequences are immutable; all edits produce new instances.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.values import V0, V1, VX, Value, resolve_char, to_char


class TestSequence:
    """An immutable sequence of primary-input patterns.

    Parameters
    ----------
    patterns:
        One tuple of ternary values per time unit; all tuples must have
        the same width (the number of primary inputs).
    """

    __slots__ = ("_patterns",)

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, patterns: Iterable[Sequence[Value]]) -> None:
        rows = [tuple(p) for p in patterns]
        widths = {len(r) for r in rows}
        if len(widths) > 1:
            raise SimulationError(f"ragged test sequence: widths {sorted(widths)}")
        for row in rows:
            for value in row:
                if value not in (V0, V1, VX):
                    raise SimulationError(f"bad ternary value {value!r} in sequence")
        self._patterns: Tuple[Tuple[Value, ...], ...] = tuple(rows)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_strings(cls, rows: Iterable[str]) -> "TestSequence":
        """Build from strings of ``0``/``1``/``x``, one per time unit.

        >>> TestSequence.from_strings(["0111", "1001"]).value(1, 0)
        1
        """
        return cls([tuple(resolve_char(c) for c in row) for row in rows])

    @classmethod
    def empty(cls, width: int) -> "TestSequence":
        """A zero-length sequence of the given input width.

        The width is not recoverable from an empty sequence; callers
        that need it should track it separately.
        """
        del width  # width only documents intent; an empty sequence is width-free
        return cls([])

    # -- paper notation -----------------------------------------------------

    def at(self, u: int) -> Tuple[Value, ...]:
        """``T(u)``: the pattern applied at time unit ``u``."""
        return self._patterns[u]

    def value(self, u: int, i: int) -> Value:
        """``T_i(u)``: the value input ``i`` receives at time ``u``."""
        return self._patterns[u][i]

    def restrict(self, i: int) -> Tuple[Value, ...]:
        """``T_i``: the whole sequence restricted to input ``i``."""
        return tuple(row[i] for row in self._patterns)

    @property
    def width(self) -> int:
        """Number of primary inputs (0 for an empty sequence)."""
        return len(self._patterns[0]) if self._patterns else 0

    # -- editing (all return new sequences) ----------------------------------

    def append(self, pattern: Sequence[Value]) -> "TestSequence":
        """Sequence extended by one pattern."""
        return TestSequence(self._patterns + (tuple(pattern),))

    def concat(self, other: "TestSequence") -> "TestSequence":
        """Concatenation ``self`` then ``other``."""
        return TestSequence(self._patterns + other._patterns)

    def prefix(self, length: int) -> "TestSequence":
        """The first ``length`` patterns."""
        return TestSequence(self._patterns[:length])

    def drop_time_unit(self, u: int) -> "TestSequence":
        """Sequence with time unit ``u`` omitted (used by compaction)."""
        return TestSequence(self._patterns[:u] + self._patterns[u + 1 :])

    # -- misc ---------------------------------------------------------------

    def to_strings(self) -> Tuple[str, ...]:
        """Render as ``0``/``1``/``x`` strings, one per time unit."""
        return tuple("".join(to_char(v) for v in row) for row in self._patterns)

    @property
    def patterns(self) -> Tuple[Tuple[Value, ...], ...]:
        """The raw pattern tuples (what simulators consume)."""
        return self._patterns

    def __iter__(self) -> Iterator[Tuple[Value, ...]]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def __getitem__(self, u: int) -> Tuple[Value, ...]:
        return self._patterns[u]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TestSequence):
            return NotImplemented
        return self._patterns == other._patterns

    def __hash__(self) -> int:
        return hash(self._patterns)

    def __repr__(self) -> str:
        return f"TestSequence(len={len(self)}, width={self.width})"
