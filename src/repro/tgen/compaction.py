"""Static compaction of sequential test sequences.

Implements omission-based static compaction in the spirit of the
vector-omission/restoration techniques of Pomeranz & Reddy: time units
are tentatively removed and the shortened sequence is re-fault-simulated;
the removal is kept only if the target fault set stays fully detected.
Block sizes shrink geometrically (delta-debugging style), so large
useless stretches go quickly while single-vector omission still runs at
the end.

The paper applies exactly this kind of static compaction to the
STRATEGATE/SEQCOM sequences before mining weights from them; shorter
``T`` directly shortens the mined subsequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.netlist import Circuit
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimulator
from repro.tgen.sequence import TestSequence
from repro.trace import traced


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of static compaction.

    Attributes
    ----------
    sequence:
        The compacted sequence (detects the full target set).
    original_length / compacted_length:
        Lengths before and after.
    n_simulations:
        Fault simulations spent.
    """

    sequence: TestSequence
    original_length: int
    compacted_length: int
    n_simulations: int

    @property
    def reduction(self) -> float:
        """Fractional length reduction achieved."""
        if not self.original_length:
            return 0.0
        return 1.0 - self.compacted_length / self.original_length


def compact_sequence(
    circuit: Circuit,
    sequence: TestSequence,
    target_faults: Sequence[Fault],
    max_simulations: int = 200,
    compiled: CompiledCircuit | None = None,
    runtime=None,
    sim_backend=None,
) -> CompactionResult:
    """Statically compact ``sequence`` while preserving detection of
    every fault in ``target_faults``.

    Parameters
    ----------
    circuit:
        The circuit under test.
    sequence:
        A sequence known to detect all of ``target_faults``.
    target_faults:
        The faults that must remain detected.
    max_simulations:
        Budget of fault-simulation checks; compaction stops early when
        it is exhausted (the current best sequence is returned).
    compiled:
        Optional pre-compiled circuit to reuse.
    runtime:
        Optional :class:`~repro.runtime.context.RuntimeContext` for
        cached / parallel fault simulation.
    sim_backend:
        Fault-simulation backend (results are backend-independent).
    """
    comp = compiled or compile_circuit(circuit)
    sim = FaultSimulator(circuit, comp, runtime=runtime, backend=sim_backend)
    faults = list(target_faults)
    checks = 0

    def detects_all(candidate: TestSequence) -> bool:
        nonlocal checks
        checks += 1
        result = sim.run(candidate.patterns, faults)
        return not result.undetected

    original_length = len(sequence)
    if not faults or not len(sequence):
        return CompactionResult(sequence, original_length, len(sequence), 0)

    with traced(
        runtime,
        "static_compaction",
        length=original_length,
        budget=max_simulations,
    ):
        # Free truncation: nothing after the last detection time is useful.
        result = sim.run(sequence.patterns, faults)
        checks += 1
        if result.undetected:
            raise ValueError(
                f"sequence does not detect {len(result.undetected)} of the "
                "target faults"
            )
        last_needed = max(result.detection_time.values())
        current = sequence.prefix(last_needed + 1)

        block = max(1, len(current) // 2)
        while block >= 1 and checks < max_simulations:
            start = len(current) - block
            progressed = False
            while start >= 0 and checks < max_simulations:
                candidate = TestSequence(
                    current.patterns[:start] + current.patterns[start + block :]
                )
                if len(candidate) and detects_all(candidate):
                    current = candidate
                    progressed = True
                    start -= block
                else:
                    start -= max(1, block // 2) if block > 1 else 1
            if block == 1 and not progressed:
                break
            block //= 2

    return CompactionResult(
        sequence=current,
        original_length=original_length,
        compacted_length=len(current),
        n_simulations=checks,
    )
