"""Deterministic test sequence generation substrate.

The paper takes as input a deterministic test sequence produced by
STRATEGATE [24] or SEQCOM [25] and statically compacted.  Those tools
are not available; this package provides the stand-in: a
simulation-based sequential test generator with fault dropping and
restarts (:mod:`repro.tgen.random_tgen`) followed by restoration-based
static compaction (:mod:`repro.tgen.compaction`).

The weight-selection procedure only consumes the *sequence* and the
detection times it induces, so any deterministic sequence works; the
method's coverage guarantee is relative to the sequence's own coverage.
"""

from repro.tgen.sequence import TestSequence
from repro.tgen.random_tgen import GeneratedTest, generate_test_sequence
from repro.tgen.compaction import compact_sequence

__all__ = [
    "TestSequence",
    "GeneratedTest",
    "generate_test_sequence",
    "compact_sequence",
]
