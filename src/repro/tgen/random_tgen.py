"""Simulation-based sequential test generation.

This is the stand-in for STRATEGATE [24] / SEQCOM [25]: it produces the
deterministic test sequence ``T`` that drives the paper's weight
selection.  The generator is a greedy, fault-simulation-guided search:

1. At each time unit, draw ``candidates`` random input patterns and
   *peek* each one against the remaining faults from the current
   circuit/fault state (no prefix re-simulation — the incremental
   simulator carries state forward).
2. Commit the pattern detecting the most new faults; on a tie, prefer
   the earliest drawn (keeps the walk random).
3. If no progress happens for ``patience`` consecutive time units, the
   walk continues with purely random patterns (sequential faults often
   need long sensitizing runs before a detection burst).
4. Stop when every target fault is detected, or at ``max_len``.

The result is deterministic in the seed.  Coverage is whatever the walk
achieves — exactly like a real ATPG tool, the downstream procedure
treats the *detected set* as the target set, so the paper's "complete
fault coverage" claim (relative to ``T``) is preserved verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.collapse import collapse_faults
from repro.sim.faults import Fault
from repro.sim.faultsim import IncrementalFaultSimulator
from repro.tgen.sequence import TestSequence
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class GeneratedTest:
    """Result of test generation.

    Attributes
    ----------
    sequence:
        The generated deterministic test sequence ``T``.
    detected:
        Faults the sequence detects (the downstream target set ``F``).
    undetected:
        Target faults the walk never detected.
    """

    sequence: TestSequence
    detected: Tuple[Fault, ...]
    undetected: Tuple[Fault, ...]

    @property
    def coverage(self) -> float:
        """Detected fraction of the target fault list."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


def generate_test_sequence(
    circuit: Circuit,
    faults: Sequence[Fault] | None = None,
    seed: int = 1,
    max_len: int = 4000,
    candidates: int = 4,
    patience: int = 64,
    compiled: CompiledCircuit | None = None,
    sim_backend=None,
) -> GeneratedTest:
    """Generate a deterministic test sequence for ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit under test.
    faults:
        Target faults; defaults to the collapsed stuck-at list.
    seed:
        Seed for the deterministic random walk.
    max_len:
        Hard cap on sequence length.
    candidates:
        Random patterns peeked per time unit; the best is committed.
    patience:
        After this many consecutive unproductive time units the
        candidate peeking is suspended for one unit (a free random
        step), which is both faster and a useful perturbation.
    compiled:
        Optional pre-compiled circuit to reuse.
    sim_backend:
        Fault-simulation backend (results are backend-independent).
    """
    comp = compiled or compile_circuit(circuit)
    if faults is None:
        faults = collapse_faults(circuit)
    sim = IncrementalFaultSimulator(
        circuit, list(faults), comp, backend=sim_backend
    )
    rng = DeterministicRng(seed)
    n_pi = len(circuit.inputs)

    patterns: List[Tuple[int, ...]] = []
    detected: List[Fault] = []
    dry_run = 0
    since_regroup = 0

    while sim.n_remaining and len(patterns) < max_len:
        if dry_run >= patience and dry_run % 4 != 0:
            # Free-running random walk during dry spells: peeking every
            # step buys nothing when nothing is detectable nearby.
            pattern = rng.bits(n_pi)
        else:
            best = rng.bits(n_pi)
            best_score = sim.peek(best)
            for _ in range(candidates - 1):
                cand = rng.bits(n_pi)
                score = sim.peek(cand)
                if score > best_score:
                    best, best_score = cand, score
            pattern = best
        newly = sim.step(pattern)
        patterns.append(pattern)
        since_regroup += 1
        if newly:
            detected.extend(newly)
            dry_run = 0
            if since_regroup >= 128:
                sim.regroup()
                since_regroup = 0
        else:
            dry_run += 1

    sequence = TestSequence(patterns)
    undetected = tuple(sorted(sim.remaining_faults()))
    return GeneratedTest(
        sequence=sequence,
        detected=tuple(sorted(detected)),
        undetected=undetected,
    )
