"""Bit-twiddling helpers for the bit-parallel fault simulator.

The simulator packs up to :data:`WORD_BITS` simulation machines into a
single Python integer; these helpers manipulate such machine words.
Python integers are arbitrary precision, so a "word" here may be any
width — the constant is just the default group size chosen so that a
word stays within one or two 64-bit limbs.
"""

from __future__ import annotations

from typing import Iterator

WORD_BITS = 64
"""Default number of simulation machines packed per fault group."""


def mask_of_width(width: int) -> int:
    """Return a mask with the ``width`` low bits set.

    >>> bin(mask_of_width(4))
    '0b1111'
    """
    if width < 0:
        raise ValueError(f"negative mask width {width}")
    return (1 << width) - 1


def bit_count(word: int) -> int:
    """Count set bits in a non-negative integer."""
    if word < 0:
        raise ValueError("bit_count expects a non-negative word")
    return bin(word).count("1")


def iter_set_bits(word: int) -> Iterator[int]:
    """Yield the indices of set bits in ascending order.

    >>> list(iter_set_bits(0b1010))
    [1, 3]
    """
    if word < 0:
        raise ValueError("iter_set_bits expects a non-negative word")
    index = 0
    while word:
        if word & 1:
            yield index
        word >>= 1
        index += 1
