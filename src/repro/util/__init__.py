"""Small shared utilities: deterministic RNG, ASCII tables, bit helpers."""

from repro.util.rng import DeterministicRng
from repro.util.tables import format_table
from repro.util.bits import (
    bit_count,
    iter_set_bits,
    mask_of_width,
)

__all__ = [
    "DeterministicRng",
    "format_table",
    "bit_count",
    "iter_set_bits",
    "mask_of_width",
]
