"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report;
this module renders them as aligned ASCII so the output can be compared
against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Every cell is converted with :func:`str`.  Column widths are sized to
    the longest cell.  A ``title`` line, when given, is placed above the
    header.

    >>> print(format_table(["a", "bb"], [[1, 2], [33, 4]]))
    a  | bb
    ---+---
    1  | 2
    33 | 4
    """
    materialized = [[str(cell) for cell in row] for row in rows]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in materialized:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)
