"""Deterministic random number generation.

Everything in this library that involves randomness (test generation,
synthetic circuit construction, LFSR seeding for the baseline) funnels
through :class:`DeterministicRng` so that every experiment is exactly
reproducible from its seed.  The class is a thin wrapper over
:class:`random.Random` with the handful of draw shapes the library needs.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

_T = TypeVar("_T")


class DeterministicRng:
    """A seeded random source with convenience draws for test generation.

    Parameters
    ----------
    seed:
        Any hashable seed.  Two instances constructed with equal seeds
        produce identical draw streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was constructed with."""
        return self._seed

    def bit(self) -> int:
        """Draw a uniform random bit (0 or 1)."""
        return self._rng.getrandbits(1)

    def bits(self, n: int) -> tuple[int, ...]:
        """Draw ``n`` uniform random bits as a tuple."""
        if n < 0:
            raise ValueError(f"cannot draw {n} bits")
        word = self._rng.getrandbits(n) if n else 0
        return tuple((word >> i) & 1 for i in range(n))

    def randint(self, lo: int, hi: int) -> int:
        """Draw a uniform integer in the inclusive range ``[lo, hi]``."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        """Draw a uniform float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, items: Sequence[_T]) -> _T:
        """Draw one element of ``items`` uniformly."""
        return self._rng.choice(items)

    def sample(self, items: Sequence[_T], k: int) -> list[_T]:
        """Draw ``k`` distinct elements of ``items`` uniformly."""
        return self._rng.sample(items, k)

    def shuffle(self, items: list[_T]) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def fork(self, label: int) -> "DeterministicRng":
        """Derive an independent generator keyed by ``(seed, label)``.

        Forking lets concurrent phases (e.g. per-circuit experiments)
        draw independently without consuming each other's streams.
        """
        return DeterministicRng(hash((self._seed, label)) & 0x7FFFFFFF)
