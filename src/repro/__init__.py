"""repro — Built-In Generation of Weighted Test Sequences for
Synchronous Sequential Circuits.

A complete, from-scratch reproduction of Pomeranz & Reddy (DATE 2000):
gate-level netlist IR, 3-valued bit-parallel sequential fault
simulation, deterministic test generation and compaction, the paper's
subsequence-weight selection procedure, weight-FSM / test-pattern-
generator hardware synthesis, and observation-point insertion.

Quickstart
----------
>>> from repro import run_full_flow
>>> flow = run_full_flow("s27")
>>> flow.table6.n_sequences >= 1
True

Packages
--------
``repro.circuit``   netlist IR, .bench I/O, benchmark library
``repro.sim``       logic & stuck-at fault simulation
``repro.tgen``      deterministic test generation + static compaction
``repro.core``      the paper's weight-selection procedure
``repro.hw``        weight FSMs, TPG synthesis, cost & verification
``repro.obs``       observation-point insertion
``repro.baselines`` LFSR BIST and the 3-weight method of [10]
``repro.flows``     end-to-end pipelines and experiment drivers
``repro.runtime``   parallel execution, artifact caching, run metrics
``repro.resilience`` retry/timeout policies, chaos injection, checkpoints
``repro.lint``      static diagnostics: circuit / TPG / determinism rules
"""

from repro.circuit import (
    Circuit,
    CircuitBuilder,
    available_circuits,
    load_circuit,
    parse_bench,
    parse_bench_text,
    write_bench,
    write_verilog,
)
from repro.sim import (
    Fault,
    FaultSimulator,
    LogicSimulator,
    all_faults,
    collapse_faults,
    detection_times,
)
from repro.tgen import TestSequence, compact_sequence, generate_test_sequence
from repro.core import (
    ProcedureConfig,
    Weight,
    WeightAssignment,
    mine_weight,
    reverse_order_simulation,
    select_weight_assignments,
)
from repro.hw import synthesize_tpg, verify_tpg
from repro.obs import observation_point_tradeoff
from repro.flows import FlowConfig, run_full_flow
from repro.runtime import RuntimeContext, RuntimeStats

__version__ = "1.1.0"

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "available_circuits",
    "load_circuit",
    "parse_bench",
    "parse_bench_text",
    "write_bench",
    "write_verilog",
    "Fault",
    "FaultSimulator",
    "LogicSimulator",
    "all_faults",
    "collapse_faults",
    "detection_times",
    "TestSequence",
    "compact_sequence",
    "generate_test_sequence",
    "ProcedureConfig",
    "Weight",
    "WeightAssignment",
    "mine_weight",
    "reverse_order_simulation",
    "select_weight_assignments",
    "synthesize_tpg",
    "verify_tpg",
    "observation_point_tradeoff",
    "FlowConfig",
    "run_full_flow",
    "RuntimeContext",
    "RuntimeStats",
    "__version__",
]
