"""E17 (related-work class): full scan vs the proposed non-scan method.

The canonical alternative to weighted-sequence BIST is full scan +
combinational ATPG ([20]'s class modifies flip-flops; full scan is its
endpoint).  This bench measures the tradeoff the paper's introduction
argues qualitatively:

* **coverage** — scan ATPG proves untestability combinationally, so it
  reaches every scan-testable fault; the non-scan method reaches
  whatever `T` reaches,
* **test time** — scan pays (chain length + 1) cycles per test; the
  weighted sequences pay |Ω| x L_G free-running cycles,
* **hardware** — per-flop scan muxes + 3 routed pins vs the TPG's
  weight FSMs + counters at the inputs only.

A second payoff: the scan-ATPG untestability proofs explain the
random-walk coverage plateau on the synthetic stand-ins (compare the
`untestable` column with 100% minus the `det` column of Table 6).

The benchmark kernel is scan ATPG on s27.
"""

from __future__ import annotations

from repro.flows import flow_for
from repro.flows.experiments import active_suite
from repro.hw import tpg_cost, synthesize_tpg
from repro.scan import insert_scan, scan_atpg, scan_cost
from repro.sim import collapse_faults
from repro.util.tables import format_table


def test_scan_vs_proposed(benchmark, record_table):
    rows = []
    for name in active_suite():
        flow = flow_for(name)
        circuit = flow.circuit
        faults = collapse_faults(circuit)

        scan = scan_atpg(circuit, faults)
        cost = scan_cost(circuit, scan.design)

        # Every combinational detection must re-verify through the
        # expanded scan session.
        assert set(scan.detected) <= set(scan.session_detected), name

        tpg = synthesize_tpg(
            list(flow.reverse_order.kept),
            flow.procedure.l_g,
            circuit.inputs,
        )
        proposed_cost = tpg_cost(tpg)
        proposed_cycles = flow.table6.n_sequences * flow.procedure.l_g

        rows.append(
            [
                name,
                len(faults),
                len(flow.procedure.target_faults),
                len(scan.detected),
                len(scan.untestable),
                scan.session_cycles,
                proposed_cycles,
                f"{cost.extra_gates}g/{cost.extra_ports}p",
                f"{proposed_cost.n_gates}g+{proposed_cost.n_flops}ff/0p",
            ]
        )

    text = format_table(
        ["circuit", "faults", "proposed det", "scan det",
         "proven untestable", "scan cycles", "proposed cycles",
         "scan cost", "TPG cost"],
        rows,
        title=(
            "E17: full scan + combinational ATPG vs the proposed "
            "non-scan weighted sequences"
        ),
    )
    record_table("scan_comparison", text)

    flow = flow_for("s27")

    def kernel():
        return scan_atpg(flow.circuit)

    result = benchmark(kernel)
    assert result.tests
