"""E8: the complexity claim of Section 4.2.

The paper bounds the procedure by O(N_F * L^2 * N_PI) subsequence
derivations plus the dominant fault-simulation effort of
O(N_F * L * N_PI) sequences of length L_G, tamed in practice by the
sample-first screen.  This bench measures how the procedure's
simulation counters scale as the circuit (and its fault set) grows,
and checks the screen is doing its job (skips > 0 on non-trivial
circuits).

The benchmark kernel is the procedure on the smallest synthetic
circuit, so the suite reports a stable scaling baseline.
"""

from __future__ import annotations

import time

from repro.circuit.synth import SynthSpec, synthesize
from repro.core import ProcedureConfig, select_weight_assignments
from repro.sim import collapse_faults
from repro.tgen import generate_test_sequence
from repro.util.tables import format_table

SIZES = [
    SynthSpec("scale20", n_pi=4, n_po=2, n_ff=3, n_gates=20, seed=11),
    SynthSpec("scale40", n_pi=6, n_po=3, n_ff=5, n_gates=40, seed=11),
    SynthSpec("scale80", n_pi=8, n_po=4, n_ff=8, n_gates=80, seed=11),
]


def _run(spec: SynthSpec):
    circuit = synthesize(spec)
    faults = collapse_faults(circuit)
    gen = generate_test_sequence(circuit, faults, seed=3, max_len=400)
    start = time.perf_counter()
    result = select_weight_assignments(
        circuit, gen.sequence, faults, ProcedureConfig(l_g=256)
    )
    elapsed = time.perf_counter() - start
    return circuit, gen, result, elapsed


def test_complexity_scaling(benchmark, record_table):
    rows = []
    efforts = []
    for spec in SIZES:
        circuit, gen, result, elapsed = _run(spec)
        n_f = len(result.target_faults)
        rows.append(
            [
                spec.name,
                spec.n_gates,
                len(circuit.inputs),
                n_f,
                len(gen.sequence),
                result.stats.assignments_tried,
                result.stats.sample_skips,
                result.stats.full_simulations,
                f"{elapsed:.2f}",
            ]
        )
        efforts.append(result.stats.full_simulations)

        covered = set()
        for entry in result.omega:
            covered.update(entry.detected)
        assert covered == set(result.target_faults)
        # The screening shortcut avoids full simulations: full sims
        # never exceed screens.
        assert result.stats.full_simulations <= result.stats.sample_screens

    text = format_table(
        ["circuit", "gates", "N_PI", "N_F", "L",
         "tried", "screen skips", "full sims", "seconds"],
        rows,
        title="Section 4.2 complexity: simulation effort vs circuit size",
    )
    record_table("complexity_scaling", text)

    def kernel():
        return _run(SIZES[0])

    circuit, gen, result, _elapsed = benchmark(kernel)
    assert result.omega
