"""Load-generator benchmark for the campaign server.

An in-process server is driven the way CI drives it: a burst of
distinct-seed jobs submitted over real HTTP, polled to completion,
then the server's own latency histograms are read back from
``/metrics``.  The run fails when the p50 submit→complete latency or
the end-to-end throughput regresses past a (deliberately generous)
gate, and leaves ``benchmarks/results/serve_throughput.json`` as the
artifact CI uploads.

Not a paper artifact — an implementation benchmark for the serve
subsystem.
"""

from __future__ import annotations

import time

from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.serve.job import JobSpec
from repro.util.tables import format_table

N_JOBS = 12
#: Generous regression gates — CI machines are noisy; these only trip
#: on an order-of-magnitude regression, not scheduler jitter.
MAX_P50_LATENCY_S = 30.0
MIN_JOBS_PER_S = 0.4


def campaign_specs():
    # Distinct seeds: content-addressed dedup would otherwise collapse
    # the whole load into one job.
    return [
        JobSpec(
            circuit="s27",
            seed=1000 + i,
            tgen_max_len=256,
            compaction_sims=4,
            l_g=64,
            priority=i % 10,
            client=f"loadgen-{i % 3}",
        )
        for i in range(N_JOBS)
    ]


def test_serve_throughput(record_table, tmp_path):
    config = ServerConfig(
        state_dir=tmp_path / "state",
        port=0,
        rate_per_s=1000.0,
        burst=N_JOBS + 1,
    )
    t0 = time.perf_counter()
    with ServerThread(config) as url:
        client = ServeClient(url, timeout_s=30.0)
        keys = []
        for spec in campaign_specs():
            record = client.submit_with_backoff(spec, max_wait_s=30.0)
            keys.append(str(record["key"]))
        assert len(set(keys)) == N_JOBS

        records = client.wait_all(keys, timeout_s=240.0)
        wall = time.perf_counter() - t0
        assert {r["state"] for r in records.values()} == {"done"}

        metrics = client.metrics()
    latency = metrics["latency"]["submit_to_complete"]
    queue_wait = metrics["latency"]["queue_wait"]
    run_latency = metrics["latency"]["run"]
    jobs_per_s = N_JOBS / wall

    rows = [
        {"metric": "jobs", "value": N_JOBS},
        {"metric": "wall (s)", "value": round(wall, 3)},
        {"metric": "jobs/s", "value": round(jobs_per_s, 2)},
        {"metric": "p50 submit→complete (s)", "value": latency["p50_s"]},
        {"metric": "p99 submit→complete (s)", "value": latency["p99_s"]},
        {"metric": "p50 queue wait (s)", "value": queue_wait["p50_s"]},
        {"metric": "p50 run (s)", "value": run_latency["p50_s"]},
        {"metric": "completed", "value": metrics["counters"]["completed"]},
    ]
    text = format_table(
        ["metric", "value"],
        [[r["metric"], r["value"]] for r in rows],
        title=f"serve throughput ({N_JOBS} jobs over HTTP)",
    )
    record_table(
        "serve_throughput",
        text,
        rows=rows,
        extra={
            "gates": {
                "max_p50_latency_s": MAX_P50_LATENCY_S,
                "min_jobs_per_s": MIN_JOBS_PER_S,
            },
            "latency": metrics["latency"],
            "counters": metrics["counters"],
        },
    )

    assert metrics["counters"]["completed"] == N_JOBS
    assert latency["count"] == N_JOBS
    assert latency["p50_s"] is not None and latency["p50_s"] <= MAX_P50_LATENCY_S
    assert jobs_per_s >= MIN_JOBS_PER_S, (
        f"throughput regressed: {jobs_per_s:.2f} jobs/s over {wall:.1f}s"
    )
