"""E12: the deterministic test-generation substrate (STRATEGATE [24]
stand-in).

The paper consumes sequences from STRATEGATE/SEQCOM.  Our substitute
has two tiers: a simulation-based random walk (fast, covers the
random-testable bulk) and a PODEM + time-frame-expansion structural
engine that targets the leftovers.  This bench quantifies the tiers on
the genuine s27:

* pure ATPG alone reaches 32/32 (the structural engine is complete on
  s27's faults),
* a deliberately starved random walk (6 cycles) plus ATPG also reaches
  32/32 — the "hybrid" flow mode,
* on the synthetic stand-ins, the random leftovers are dominated by
  depth-8-proven-untestable faults (reported, not hidden).

The benchmark kernel is one PODEM run (8 frames) on s27.
"""

from __future__ import annotations

from repro.atpg import AtpgConfig, deterministic_atpg, hybrid_test_sequence, podem, unroll
from repro.circuit import load_circuit
from repro.sim import collapse_faults
from repro.sim.compile import compile_circuit
from repro.tgen import generate_test_sequence
from repro.util.tables import format_table


def test_atpg_substrate(benchmark, record_table):
    s27 = load_circuit("s27")
    faults = collapse_faults(s27)

    pure = deterministic_atpg(s27, faults)
    assert len(pure.detected) == 32
    assert not pure.aborted

    starved = generate_test_sequence(s27, faults, seed=3, max_len=6)
    hybrid = hybrid_test_sequence(s27, faults, seed=3, random_max_len=6)
    assert hybrid.coverage == 1.0

    rows = [
        ["random walk (2000 cyc)", "32/32",
         len(generate_test_sequence(s27, faults, seed=7, max_len=2000).sequence)],
        ["pure PODEM ATPG", f"{len(pure.detected)}/32", len(pure.sequence)],
        ["random walk (6 cyc)", f"{len(starved.detected)}/32",
         len(starved.sequence)],
        ["hybrid (6 cyc + ATPG)",
         f"{len(hybrid.detected)}/32", len(hybrid.sequence)],
    ]
    text = format_table(
        ["generator", "s27 faults detected", "sequence length"],
        rows,
        title="E12: deterministic test-generation substrate on s27",
    )

    # Leftover analysis on a synthetic stand-in: the faults the random
    # walk misses are mostly proven untestable at depth 8.
    g386 = load_circuit("g386")
    g_faults = collapse_faults(g386)
    gen = generate_test_sequence(g386, g_faults, seed=7, max_len=2000)
    comp = compile_circuit(g386)
    tally = {"testable": 0, "aborted": 0, "untestable@8": 0}
    sample = list(gen.undetected)[:30]
    for fault in sample:
        outcome = "untestable@8"
        for n_frames in (2, 4, 8):
            result = podem(unroll(comp, fault, n_frames), 150)
            if result.success:
                outcome = "testable"
                break
            if result.aborted:
                outcome = "aborted"
        tally[outcome] += 1
    leftover = format_table(
        ["outcome", "count"],
        [[k, v] for k, v in tally.items()],
        title=(
            f"g386 random-walk leftovers (sample of {len(sample)} of "
            f"{len(gen.undetected)}): PODEM verdicts"
        ),
    )
    record_table("atpg_substrate", text + "\n\n" + leftover)

    def kernel():
        return podem(unroll(compile_circuit(s27), faults[0], 8), 300)

    result = benchmark(kernel)
    assert result.success or not result.aborted
