"""E6: the paper's Tables 7-16 — observation point insertion.

For each circuit, sweeps the size of the limited assignment set Ω_lim
(greedy selection) and reports: sequences used, subsequences, longest
subsequence, fault efficiency, observation points required, and fault
efficiency with those points observed.

Shape claims checked against the paper:

* fault efficiency is non-decreasing in the number of sequences,
* the final row reaches 100% f.e. with 0 observation points,
* adding observation points never lowers fault efficiency,
* the observation-point count trends down as sequences are added
  (checked end-to-end: last row needs none).

The benchmark kernel times one OP(f) computation on s27.
"""

from __future__ import annotations

from repro.flows import flow_for, tradeoff_for
from repro.flows.experiments import active_suite
from repro.obs import compute_op_sets, format_tradeoff, greedy_select


def test_tables_7_16(benchmark, record_table):
    sections = []
    for name in active_suite():
        rows = tradeoff_for(name)
        assert rows, name

        fes = [row.fault_efficiency for row in rows]
        assert fes == sorted(fes), f"{name}: f.e. not monotone"
        assert rows[-1].fault_efficiency == 100.0
        assert rows[-1].n_observation_points == 0
        for row in rows:
            assert row.fault_efficiency_with_obs >= row.fault_efficiency

        sections.append(format_tradeoff(name, rows))

    record_table("tables7_16", "\n\n".join(sections))

    # Benchmark kernel: one OP(f) computation (line-recording fault
    # simulation) for the first greedy pick on s27.
    flow = flow_for("s27")
    picks = greedy_select(flow.circuit, flow.procedure)
    first = picks[0]
    undetected = [
        f
        for f in flow.procedure.target_faults
        if f not in set(first.new_faults)
    ]
    if not undetected:
        undetected = list(flow.procedure.target_faults)[:4]

    def kernel():
        return compute_op_sets(
            flow.circuit, [first.assignment], undetected, flow.procedure.l_g
        )

    op_sets = benchmark(kernel)
    assert set(op_sets) == set(undetected)
