"""Runtime-layer scaling: parallel speedup and warm-cache skip rate.

Runs the fault-simulation-heavy part of the flow (weight selection on a
multi-group circuit) serially and on a worker pool, asserts the results
are identical, and records the measured wall times and speedup to
``benchmarks/results/runtime_scaling.json``.  A second pass measures
the warm-cache rerun.

Not a paper artifact — an implementation benchmark for the runtime
subsystem.
"""

from __future__ import annotations

import time

from repro.circuit import load_circuit
from repro.core import ProcedureConfig, select_weight_assignments
from repro.runtime import RuntimeContext
from repro.sim import collapse_faults
from repro.tgen import generate_test_sequence
from repro.util.tables import format_table

CIRCUIT = "g386"
L_G = 256
JOBS = (1, 2, 4)


def test_runtime_scaling(record_table, tmp_path):
    circuit = load_circuit(CIRCUIT)
    faults = collapse_faults(circuit)
    generated = generate_test_sequence(circuit, faults, seed=1, max_len=400)
    cfg = ProcedureConfig(l_g=L_G)

    def run(jobs: int, cache_dir=None):
        t0 = time.perf_counter()
        with RuntimeContext(jobs=jobs, cache_dir=cache_dir) as rt:
            result = select_weight_assignments(
                circuit, generated.sequence, faults, cfg, runtime=rt
            )
            stats = rt.stats
        return time.perf_counter() - t0, result, stats

    timings = {}
    reference = None
    for jobs in JOBS:
        wall, result, _ = run(jobs)
        timings[jobs] = wall
        if reference is None:
            reference = result
        else:
            assert [e.assignment for e in result.omega] == [
                e.assignment for e in reference.omega
            ], f"jobs={jobs} diverged from serial"
            assert result.detection_time == reference.detection_time

    cache_dir = tmp_path / "cache"
    cold_wall, _, _ = run(1, cache_dir=cache_dir)
    warm_wall, warm_result, warm_stats = run(1, cache_dir=cache_dir)
    assert warm_result.detection_time == reference.detection_time
    assert warm_stats.full_sim_skip_rate >= 0.9

    rows = [
        {
            "jobs": jobs,
            "wall_s": round(wall, 3),
            "speedup": round(timings[1] / wall, 2) if wall else None,
        }
        for jobs, wall in timings.items()
    ]
    rows.append(
        {
            "jobs": "1 (warm cache)",
            "wall_s": round(warm_wall, 3),
            "speedup": round(cold_wall / warm_wall, 2) if warm_wall else None,
        }
    )

    text = format_table(
        ["jobs", "wall (s)", "speedup vs serial"],
        [[r["jobs"], r["wall_s"], r["speedup"]] for r in rows],
        title=f"Runtime scaling — weight selection on {CIRCUIT} (L_G={L_G})",
    )
    record_table(
        "runtime_scaling",
        text,
        rows=rows,
        extra={
            "circuit": CIRCUIT,
            "l_g": L_G,
            "warm_cache_skip_rate": round(warm_stats.full_sim_skip_rate, 3),
        },
    )
