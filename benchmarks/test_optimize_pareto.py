"""Pareto front of the weight-assignment search vs the greedy Ω.

For each seed circuit, the fixed-seed, fixed-budget NSGA-II search of
:mod:`repro.optimize` is seeded from the greedy baseline flow and its
front is compared against greedy Ω on (fault coverage, TPG area, test
length) — both same-budget framings: best coverage at no more than the
baseline's area, and smallest area at no less than the baseline's
coverage.

The run *gates* on the subsystem's core promise: the reported front
always contains a point that dominates or matches the greedy baseline
(the baseline seeds the evaluation archive, so anything else is a
determinism bug).  ``benchmarks/results/optimize_pareto.json`` is the
artifact CI uploads.

Not a paper table — the paper stops at the greedy construction; this
benchmark reports what the multi-objective search adds on top of it.
"""

from __future__ import annotations

from repro.flows.experiments import flow_for
from repro.optimize import (
    OptimizeConfig,
    front_comparison,
    optimize_payload,
    run_optimize,
)
from repro.util.tables import format_table

#: (circuit, L_G) — small enough to terminate in benchmark time, big
#: enough that the search has real coverage/area/length trade-offs.
CIRCUITS = (("s27", 128), ("g208", 128))
BUDGET = dict(seed=1, population=8, generations=2)


def test_optimize_pareto(record_table):
    rows = []
    payloads = {}
    for circuit, l_g in CIRCUITS:
        flow = flow_for(circuit, l_g=l_g)
        config = OptimizeConfig(l_g=l_g, **BUDGET)
        result = run_optimize(circuit, config, flow=flow)
        comparison = front_comparison(result)

        # The core guarantee, gated per circuit.
        assert comparison["dominates_or_matches_baseline"] is True, (
            f"{circuit}: no front point dominates or matches greedy Ω"
        )

        payloads[circuit] = optimize_payload(result)
        base = comparison["baseline"]
        best_cov = comparison["coverage_at_equal_area"]
        best_area = comparison["area_at_equal_coverage"]
        rows.append([
            circuit,
            len(result.front),
            result.evaluations,
            f"{base['detected']}/{result.n_target_faults}",
            f"{base['area']:.1f}",
            f"{best_cov['detected']}/{result.n_target_faults}",
            f"{best_cov['area']:.1f}",
            f"{best_area['area']:.1f}" if best_area else "-",
        ])

    text = format_table(
        [
            "circuit", "front", "evals", "greedy cov", "greedy area",
            "cov@<=area", "area", "area@>=cov",
        ],
        rows,
        title=(
            "optimize: Pareto front vs greedy Omega "
            f"(seed {BUDGET['seed']}, pop {BUDGET['population']}, "
            f"{BUDGET['generations']} generations)"
        ),
    )
    record_table(
        "optimize_pareto",
        text,
        rows=rows,
        extra={"circuits": payloads},
        circuits=[circuit for circuit, _ in CIRCUITS],
    )
