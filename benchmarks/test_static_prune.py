"""E20: static implication engine — prune rates and flow overhead.

For every suite circuit the static analysis proves a subset of faults
untestable, each with a machine-checkable certificate.  This benchmark
records (1) the prune rate over both fault universes and the
certificate-kind breakdown, and (2) the end-to-end flow wall-clock with
pruning off vs. on — the analysis pays for itself on the larger
circuits and must never blow up the flow.

Correctness gates: Table-6 rows are byte-identical with pruning on and
off, and every emitted certificate passes the independent checker.

The benchmark kernel is one full static analysis (value sets,
learning, per-fault proofs) on g208 over the uncollapsed universe.
"""

from __future__ import annotations

import dataclasses
import time

from repro.analysis.static import analyze, check_certificate
from repro.circuit import load_circuit
from repro.flows import run_full_flow
from repro.flows.experiments import active_suite, flow_config_for
from repro.sim import all_faults, collapse_faults
from repro.util.tables import format_table

# Pruning must roughly pay for itself: allow the analysis overhead
# plus scheduling noise, never a blow-up.
TIME_TOLERANCE = 1.6
TIME_SLACK_S = 10.0


def test_static_prune(benchmark, record_table):
    rows = []
    json_rows = []
    for name in active_suite():
        circuit = load_circuit(name)
        universe = all_faults(circuit)
        analysis = analyze(circuit, faults=universe)
        for cert in analysis.certificates.values():
            assert check_certificate(circuit, cert), (name, cert.to_dict())
        by_kind = analysis.payload["summary"]["by_kind"]

        collapsed = collapse_faults(circuit)
        collapsed_analysis = analyze(circuit, faults=collapsed)

        cfg = flow_config_for(name)
        t0 = time.perf_counter()
        off = run_full_flow(circuit, cfg)
        t_off = time.perf_counter() - t0
        t0 = time.perf_counter()
        on = run_full_flow(
            circuit, dataclasses.replace(cfg, static_prune=True)
        )
        t_on = time.perf_counter() - t0

        # Pruning must be invisible in every paper-facing number.
        assert on.table6 == off.table6, name
        assert on.sequence == off.sequence, name
        assert on.pruned is not None and off.pruned is None
        assert on.pruned.n_pruned == collapsed_analysis.n_proved, name
        assert t_on <= t_off * TIME_TOLERANCE + TIME_SLACK_S, (
            f"{name}: pruned flow {t_on:.2f}s vs {t_off:.2f}s unpruned"
        )

        kinds = ", ".join(f"{k}: {v}" for k, v in sorted(by_kind.items()))
        rows.append([
            name,
            len(universe),
            analysis.n_proved,
            f"{analysis.n_proved / len(universe):.1%}",
            len(collapsed),
            collapsed_analysis.n_proved,
            f"{t_off:.2f}",
            f"{t_on:.2f}",
            kinds or "-",
        ])
        json_rows.append({
            "circuit": name,
            "all_faults": len(universe),
            "proved_all": analysis.n_proved,
            "collapsed_faults": len(collapsed),
            "proved_collapsed": collapsed_analysis.n_proved,
            "flow_s_unpruned": round(t_off, 3),
            "flow_s_pruned": round(t_on, 3),
            "by_kind": dict(by_kind),
        })

    text = format_table(
        ["circuit", "faults", "proved", "rate", "collapsed",
         "proved", "t_off/s", "t_on/s", "by kind"],
        rows,
        title="E20: provable-redundancy prune rates (all-fault universe)",
    )
    record_table("static_prune", text, rows=json_rows)

    g208 = load_circuit("g208")
    g208_faults = all_faults(g208)

    def kernel():
        return analyze(g208, faults=g208_faults)

    result = benchmark(kernel)
    assert result.n_proved > 0
