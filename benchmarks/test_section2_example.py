"""E1-E4: the paper's running example (Tables 1-5, Section 2-4).

Regenerates, for s27 with the paper's own deterministic sequence:

* Table 1 — the test sequence and its detection times,
* Table 2 — the weighted sequence of assignment {01, 0, 100, 1},
* Table 3 — the shared FSM for three length-5 subsequences,
* Tables 4-5 — the weight set S and the candidate sets A_i at u = 9.

The benchmark kernel is the candidate-set construction (Table 5), the
paper's central per-iteration computation.
"""

from __future__ import annotations

from repro.circuit import load_circuit
from repro.core import Weight, WeightAssignment, WeightSet, candidate_sets
from repro.hw.fsm import build_weight_fsms
from repro.sim import collapse_faults, detection_times
from repro.tgen import TestSequence
from repro.util.tables import format_table

PAPER_T = TestSequence.from_strings(
    ["0111", "1001", "0111", "1001", "0100",
     "1011", "1001", "0000", "0000", "1011"]
)

TABLE4 = ["0", "1", "00", "10", "01", "11", "000", "100",
          "010", "110", "001", "101", "011", "111"]


def test_tables_1_through_5(benchmark, record_table):
    circuit = load_circuit("s27")
    faults = collapse_faults(circuit)

    # -- Table 1: sequence + detections -------------------------------
    det = detection_times(circuit, PAPER_T.patterns, faults)
    assert len(det) == len(faults) == 32
    per_time = {}
    for fault, u in det.items():
        per_time[u] = per_time.get(u, 0) + 1
    t1 = format_table(
        ["u"] + [f"i={i}" for i in range(4)] + ["faults detected"],
        [
            [u] + list(PAPER_T.at(u)) + [per_time.get(u, 0)]
            for u in range(len(PAPER_T))
        ],
        title="Table 1: the deterministic test sequence T for s27",
    )
    assert per_time.get(9) == 2  # the paper's f10 and f12

    # -- Table 2: weighted sequence ------------------------------------
    assignment = WeightAssignment.from_strings(["01", "0", "100", "1"])
    t_g = assignment.generate(12)
    expected = ["0011", "1001", "0001", "1011", "0001", "1001"] * 2
    assert list(t_g.to_strings()) == expected
    t2 = format_table(
        ["u"] + [f"i={i}" for i in range(4)],
        [[u] + list(t_g.at(u)) for u in range(len(t_g))],
        title="Table 2: weighted sequence T_G from assignment {01, 0, 100, 1}",
    )
    n_detected = len(detection_times(circuit, t_g.patterns, faults))
    assert n_detected == 9  # "detects f10 as well as eight additional faults"

    # -- Table 3: the shared FSM ---------------------------------------
    fsm = build_weight_fsms(
        [Weight.from_string(s) for s in ("00010", "01011", "11001")]
    )[0]
    t3 = format_table(
        ["PS", "NS", "z1", "z2", "z3"],
        [[ps, ns, *outs] for ps, ns, outs in fsm.transition_table()],
        title="Table 3: one FSM producing 00010, 01011 and 11001",
    )
    assert fsm.n_state_bits == 3

    # -- Tables 4-5: weight set and candidate sets at u = 9 -------------
    weights = WeightSet()
    for text in TABLE4:
        weights.add(Weight.from_string(text))
    t4 = format_table(
        ["j", "alpha_j"],
        [[j, str(w)] for j, w in enumerate(weights)],
        title="Table 4: the weight set S for s27",
    )

    def kernel():
        return candidate_sets(PAPER_T, 9, weights, 3)

    cands = benchmark(kernel)
    rows = []
    depth = max(len(a) for a in cands)
    for j in range(depth):
        row = [j]
        for a_i in cands:
            if j < len(a_i):
                w, n_m = a_i[j]
                row.append(f"{w} ({n_m})")
            else:
                row.append("")
        rows.append(row)
    t5 = format_table(
        ["j", "A_0", "A_1", "A_2", "A_3"],
        rows,
        title="Table 5: candidate sets A_i at u = 9 (weight (n_m))",
    )
    assert [str(a[0][0]) for a in cands] == ["01", "0", "100", "1"]
    assert [str(a[1][0]) for a in cands] == ["100", "00", "01", "100"]

    record_table(
        "section2_tables1_5", "\n\n".join([t1, t2, t3, t4, t5])
    )
