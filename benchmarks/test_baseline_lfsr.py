"""E10: baseline comparison — pure pseudo-random (LFSR) BIST and the
3-weight method of [10] versus the proposed weighted sequences.

The paper's introduction positions the method against [16]/[17]-style
free-running pseudo-random BIST (no storage, but no coverage
guarantee).  This bench gives every method the same total pattern
budget (|Ω_kept| x L_G cycles) and compares fault coverage:

* proposed: 100% of the target set, by construction,
* LFSR: typically well below (hard-to-reach states are never set up),
* 3-weight windows: in between (some determinism, no tail replay).

The benchmark kernel is the LFSR fault-simulation run on s27.
"""

from __future__ import annotations

from repro.baselines import lfsr_bist, three_weight_bist
from repro.baselines.weighted_random import weighted_random_bist
from repro.flows import flow_for
from repro.flows.experiments import active_suite
from repro.sim import collapse_faults
from repro.util.tables import format_table


def test_baselines_vs_proposed(benchmark, record_table):
    rows = []
    for name in active_suite():
        flow = flow_for(name)
        faults = list(flow.procedure.target_faults)
        budget = max(1, len(flow.reverse_order.kept)) * flow.procedure.l_g

        # Two LFSR budgets: the deterministic sequence's own length
        # (what T achieves with the same cycle count) and the full BIST
        # session length.
        lfsr_short = lfsr_bist(
            flow.circuit, faults, n_patterns=len(flow.sequence), seed=1
        )
        lfsr_full = lfsr_bist(flow.circuit, faults, n_patterns=budget, seed=1)
        threew = three_weight_bist(
            flow.circuit,
            flow.sequence,
            faults,
            window=8,
            n_per_assignment=max(1, budget // max(1, (len(flow.sequence) + 7) // 8)),
            seed=1,
        )
        wrandom = weighted_random_bist(
            flow.circuit, flow.sequence, faults,
            n_patterns=budget, n_distributions=4, seed=1,
        )
        rows.append(
            [
                name,
                len(faults),
                len(flow.sequence),
                budget,
                "100.0",
                f"{100 * lfsr_short.coverage:.1f}",
                f"{100 * lfsr_full.coverage:.1f}",
                f"{100 * threew.coverage:.1f}",
                f"{100 * wrandom.coverage:.1f}",
            ]
        )
        # T detects 100% of its own fault set in len(T) cycles; the
        # LFSR given the same cycles does not (no guarantee).
        assert lfsr_short.coverage <= 1.0
        assert threew.coverage <= 1.0

    text = format_table(
        ["circuit", "target faults", "len(T)", "session budget",
         "proposed %", "LFSR@len(T) %", "LFSR@budget %", "3-weight %",
         "weighted-random %"],
        rows,
        title="Baselines (coverage of T's fault set)",
    )
    record_table("baseline_comparison", text)

    # The guarantee gap must be visible somewhere: at the deterministic
    # sequence's own budget, the LFSR misses faults on some circuit.
    assert any(float(row[5]) < 100.0 for row in rows)

    # Benchmark kernel: LFSR BIST run on s27.
    flow = flow_for("s27")
    faults = collapse_faults(flow.circuit)

    def kernel():
        return lfsr_bist(flow.circuit, faults, n_patterns=500, seed=1)

    result = benchmark(kernel)
    assert result.n_faults == len(faults)
