"""E16 (extension): robustness of the Table-6 shape across seeds.

The paper reports one deterministic sequence per circuit.  Our
sequences come from a seeded generator, so the shape claims should be
checked for seed sensitivity: for every seed, coverage preservation
must hold exactly, and the structural invariants (max subsequence
length <= len(T), FSMs <= subsequences) must hold; the row values may
wobble — the table quantifies by how much.

The benchmark kernel is one full s27 flow.
"""

from __future__ import annotations

from repro.core import ProcedureConfig
from repro.flows import FlowConfig, run_full_flow
from repro.sim import FaultSimulator
from repro.util.tables import format_table

SEEDS = (1, 2, 3)
CIRCUITS = ("s27", "g208")


def _flow(name: str, seed: int):
    return run_full_flow(
        name,
        FlowConfig(
            seed=seed,
            tgen_max_len=2000,
            compaction_sims=60,
            procedure=ProcedureConfig(l_g=2000 if name == "s27" else 512),
        ),
    )


def test_seed_robustness(benchmark, record_table):
    rows = []
    for name in CIRCUITS:
        for seed in SEEDS:
            flow = _flow(name, seed)
            row = flow.table6

            # Invariants must hold for every seed.
            sim = FaultSimulator(flow.circuit)
            targets = list(flow.procedure.target_faults)
            covered = set()
            for assignment in flow.reverse_order.kept:
                t_g = assignment.generate(flow.procedure.l_g)
                covered.update(
                    sim.run(t_g.patterns, targets).detection_time
                )
            assert covered == set(targets), (name, seed)
            assert row.max_length <= row.given_len
            assert row.n_fsms <= row.n_subsequences

            rows.append(
                [
                    name,
                    seed,
                    row.given_len,
                    row.given_det,
                    row.n_sequences,
                    row.n_subsequences,
                    row.max_length,
                    row.n_fsms,
                ]
            )

    text = format_table(
        ["circuit", "seed", "len", "det", "seq", "subs", "max len", "FSMs"],
        rows,
        title=(
            "E16: Table-6 shape across test-generation seeds "
            "(coverage preservation asserted for every row)"
        ),
    )
    record_table("seed_robustness", text)

    def kernel():
        return _flow("s27", 1)

    flow = benchmark(kernel)
    assert flow.table6.given_det == 32
