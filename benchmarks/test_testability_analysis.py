"""E14 (extension): random-pattern testability analysis.

COP detection-probability estimates must *explain* the random-walk
generator's misses: the median estimated detection probability of the
faults the walk fails to detect must be lower than that of the faults
it detects.  SCOAP difficulty must correlate the same way (higher for
missed faults).

This quantifies the substitution caveat stated in EXPERIMENTS.md: our
deterministic sequences come from a random-biased generator, so their
target fault sets skew toward random-testable faults.

The benchmark kernel is one COP computation on g208.
"""

from __future__ import annotations

from repro.analysis import compute_cop, compute_scoap, detection_probability
from repro.circuit import load_circuit
from repro.sim import collapse_faults
from repro.tgen import generate_test_sequence
from repro.util.tables import format_table


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_testability_analysis(benchmark, record_table):
    rows = []
    for name in ("g208", "g344", "g386"):
        circuit = load_circuit(name)
        faults = collapse_faults(circuit)
        cop = compute_cop(circuit)
        scoap = compute_scoap(circuit)
        gen = generate_test_sequence(circuit, faults, seed=7, max_len=2000)
        if not gen.undetected:
            continue

        hit_dp = _median(detection_probability(cop, f) for f in gen.detected)
        miss_dp = _median(detection_probability(cop, f) for f in gen.undetected)
        hit_sc = _median(
            scoap.fault_difficulty(f.net, f.stuck) for f in gen.detected
        )
        miss_sc = _median(
            scoap.fault_difficulty(f.net, f.stuck) for f in gen.undetected
        )
        # The estimates must rank the misses as harder.
        assert miss_dp < hit_dp, name
        assert miss_sc >= hit_sc, name
        rows.append(
            [
                name,
                len(gen.detected),
                len(gen.undetected),
                f"{hit_dp:.2e}",
                f"{miss_dp:.2e}",
                hit_sc,
                miss_sc,
            ]
        )

    text = format_table(
        ["circuit", "detected", "missed", "COP median (det)",
         "COP median (miss)", "SCOAP median (det)", "SCOAP median (miss)"],
        rows,
        title=(
            "E14: COP/SCOAP estimates vs actual random-walk outcomes "
            "(missed faults are the predicted-hard tail)"
        ),
    )
    record_table("testability_analysis", text)

    circuit = load_circuit("g208")

    def kernel():
        return compute_cop(circuit)

    estimates = benchmark(kernel)
    assert 0.0 <= min(estimates.probability.values())