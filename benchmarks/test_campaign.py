"""E23: a 16-configuration factorial campaign, end-to-end through serve.

Builds the full factorial ``circuit × L_G × seed × static_prune`` grid
(2×2×2×2 = 16 points), drives every point through a real
:class:`ServerThread`, and lands everything in a sqlite warehouse.
The gate: every design point's Table-6 row, its phase timings, and a
regression-model prediction for each circuit must be queryable from
the store afterwards — the campaign subsystem's core promise that no
result is ever stranded in a flat file.

``benchmarks/results/campaign.json`` is the artifact CI uploads.
"""

from __future__ import annotations

from repro.campaign import (
    CampaignStore,
    fit_models,
    parse_grid,
    run_campaign,
    suggest,
)
from repro.serve import ServerConfig, ServerThread
from repro.util.tables import format_table

GRID = "circuit=s27,g208 l_g=64,128 seed=1,2 static_prune=on,off"
#: Small budgets keep all 16 real flows inside benchmark time.
BUDGET = dict(tgen_max_len=300, compaction_sims=4)


def test_campaign_factorial_through_serve(tmp_path, record_table):
    store = CampaignStore(tmp_path / "campaign.db")
    grid = parse_grid(GRID, name="e23")
    assert grid.size == 16

    config = ServerConfig(state_dir=tmp_path / "state", port=0)
    with ServerThread(config) as url:
        run = run_campaign(
            store, grid, server_url=url, timeout_s=600.0,
            spec_overrides=dict(BUDGET),
        )
    assert run.done == 16 and not run.failed, run.failed

    # Gate 1: every design point is a queryable Table-6 row with its
    # factors and coverage attached.
    rows = store.query_table6(campaign="e23")
    assert len(rows) == 16
    assert [row["point"] for row in rows] == list(range(16))
    for row in rows:
        assert row["circuit"] in ("s27", "g208")
        assert row["l_g"] in (64, 128)
        assert row["seed"] in (1, 2)
        assert row["coverage"] is not None and 0.0 < row["coverage"] <= 1.0

    # Gate 2: every point contributed phase timings.
    phases = {t["phase"] for t in store.query_timings()}
    assert {"procedure", "compaction"} <= phases

    # Gate 3: the regression models fit and predict for both circuits.
    models = fit_models(store)
    assert models["coverage"].n_observations == 16
    predictions = {}
    for circuit in ("s27", "g208"):
        advice = suggest(store, circuit, target_coverage=0.5, models=models)
        assert advice["recommendation"] is not None
        predictions[circuit] = advice["recommendation"]

    table_rows = [
        [
            row["point"], row["circuit"], row["l_g"], row["seed"],
            "y" if row["static_prune"] else "n",
            f"{row['coverage']:.3f}", row["max_length"],
        ]
        for row in rows
    ]
    text = format_table(
        ["pt", "circuit", "L_G", "seed", "prune", "coverage", "len"],
        table_rows,
        title="campaign: 16-point factorial through serve (E23)",
    )
    record_table(
        "campaign",
        text,
        rows=[dict(row) for row in rows],
        extra={
            "grid": GRID,
            "models": {k: m.to_dict() for k, m in models.items()},
            "suggestions": predictions,
            "summary": store.summary(),
        },
        circuits=["s27", "g208"],
    )
