"""Multi-worker serve scaling benchmark: 1 worker vs a fleet of 4.

The same campaign is run twice against an in-process server — once on
the single in-process scheduler, once with ``workers=4`` supervised
worker processes — and the speedup plus the fleet's p99
submit→complete latency are gated and written to
``benchmarks/results/serve_scaling.json``.

The ≥3× speedup gate only arms on machines with at least 4 CPUs
(CI runners qualify); on smaller boxes the benchmark still runs, still
records the artifact, and still enforces the latency SLO — four
workers time-slicing one core can't speed anything up, and failing on
that would gate on the hardware, not the code.

Not a paper artifact — an implementation benchmark for the serve
subsystem.
"""

from __future__ import annotations

import os
import time

from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.serve.job import JobSpec
from repro.util.tables import format_table

N_JOBS = 8
FLEET = 4
#: Arm the speedup gate only when the fleet can actually parallelise.
GATE_SPEEDUP = (os.cpu_count() or 1) >= FLEET
MIN_SPEEDUP = 3.0
#: Per-job p99 SLO for the fleet run — generous: it only trips on an
#: order-of-magnitude regression (a lease storm, a respawn loop), not
#: scheduler jitter.
MAX_FLEET_P99_S = 60.0


def campaign_specs():
    # Distinct seeds: content-addressed dedup would otherwise collapse
    # the whole load into one job.  The shape matches the e2e campaign
    # unit (s27, 512/16/128) — heavy enough that compute dominates the
    # supervision overhead, light enough to run twice in one benchmark.
    return [
        JobSpec(
            circuit="s27",
            seed=2000 + i,
            tgen_max_len=512,
            compaction_sims=16,
            l_g=128,
            client=f"scale-{i % 3}",
        )
        for i in range(N_JOBS)
    ]


def run_campaign(tmp_path, workers: int) -> dict:
    config = ServerConfig(
        state_dir=tmp_path / f"state-w{workers}",
        port=0,
        workers=workers,
        rate_per_s=1000.0,
        burst=N_JOBS + 1,
        enable_cache=False,  # both runs must actually compute
    )
    t0 = time.perf_counter()
    with ServerThread(config) as url:
        client = ServeClient(url, timeout_s=30.0)
        keys = [
            str(client.submit_with_backoff(spec, max_wait_s=30.0)["key"])
            for spec in campaign_specs()
        ]
        records = client.wait_all(keys, timeout_s=600.0)
        wall = time.perf_counter() - t0
        assert {r["state"] for r in records.values()} == {"done"}
        metrics = client.metrics()
    assert metrics["counters"]["completed"] == N_JOBS
    return {
        "workers": workers,
        "wall_s": round(wall, 3),
        "jobs_per_s": round(N_JOBS / wall, 3),
        "p50_s": metrics["latency"]["submit_to_complete"]["p50_s"],
        "p99_s": metrics["latency"]["submit_to_complete"]["p99_s"],
        "counters": metrics["counters"],
    }


def test_serve_scaling(record_table, tmp_path):
    single = run_campaign(tmp_path, workers=1)
    fleet = run_campaign(tmp_path, workers=FLEET)
    speedup = fleet["jobs_per_s"] / max(single["jobs_per_s"], 1e-9)

    rows = [
        {
            "workers": run["workers"],
            "wall (s)": run["wall_s"],
            "jobs/s": run["jobs_per_s"],
            "p50 (s)": run["p50_s"],
            "p99 (s)": run["p99_s"],
        }
        for run in (single, fleet)
    ]
    text = format_table(
        ["workers", "wall (s)", "jobs/s", "p50 (s)", "p99 (s)"],
        [[r[c] for c in rows[0]] for r in rows],
        title=(
            f"serve scaling ({N_JOBS} jobs, {os.cpu_count()} CPUs, "
            f"speedup {speedup:.2f}x, gate "
            f"{'armed' if GATE_SPEEDUP else 'off: <4 CPUs'})"
        ),
    )
    record_table(
        "serve_scaling",
        text,
        rows=rows,
        extra={
            "cpus": os.cpu_count(),
            "speedup": round(speedup, 3),
            "gates": {
                "min_speedup": MIN_SPEEDUP if GATE_SPEEDUP else None,
                "max_fleet_p99_s": MAX_FLEET_P99_S,
            },
            "single": single,
            "fleet": fleet,
        },
    )

    assert fleet["p99_s"] <= MAX_FLEET_P99_S, (
        f"fleet p99 {fleet['p99_s']}s blew the {MAX_FLEET_P99_S}s SLO"
    )
    # Supervision alone must never invert the scaling catastrophically,
    # even on one core (workers add overhead, not reordering).
    assert speedup >= 0.3, (
        f"fleet slower than {1 / 0.3:.0f}x the single worker: {speedup:.2f}x"
    )
    if GATE_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"{FLEET}-worker speedup regressed: {speedup:.2f}x < "
            f"{MIN_SPEEDUP}x on {os.cpu_count()} CPUs"
        )
