"""Shared benchmark infrastructure.

Each benchmark regenerates one of the paper's tables or figures.  The
rendered tables are (1) written to ``benchmarks/results/`` as both a
``.txt`` rendering and a machine-readable ``.json`` artifact and (2)
printed in the terminal summary, so ``pytest benchmarks/
--benchmark-only`` leaves both machine-readable artifacts and a
side-by-side comparison against the paper.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, List, Optional, Tuple

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_REPORTS: List[Tuple[str, str]] = []


@pytest.fixture()
def record_table():
    """Record a rendered experiment table.

    Usage: ``record_table("table6", text)``.  The text is written to
    ``benchmarks/results/<name>.txt`` and echoed in the terminal
    summary.  A companion ``benchmarks/results/<name>.json`` records
    the rows (``rows`` if given, else the text split into lines), the
    wall time since the fixture was set up, and any ``extra`` payload.
    """
    t0 = time.perf_counter()

    def _record(
        name: str,
        text: str,
        rows: Optional[Any] = None,
        extra: Optional[dict] = None,
    ) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        payload = {
            "name": name,
            "wall_time_s": round(time.perf_counter() - t0, 3),
            "rows": rows if rows is not None else text.splitlines(),
        }
        if extra:
            payload.update(extra)
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        )
        _REPORTS.append((name, text))

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper artifacts")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
