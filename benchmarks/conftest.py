"""Shared benchmark infrastructure.

Each benchmark regenerates one of the paper's tables or figures.  The
rendered tables are (1) written to ``benchmarks/results/`` and (2)
printed in the terminal summary, so ``pytest benchmarks/
--benchmark-only`` leaves both machine-readable artifacts and a
side-by-side comparison against the paper.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_REPORTS: List[Tuple[str, str]] = []


@pytest.fixture()
def record_table():
    """Record a rendered experiment table.

    Usage: ``record_table("table6", text)``.  The text is written to
    ``benchmarks/results/<name>.txt`` and echoed in the terminal
    summary.
    """

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        _REPORTS.append((name, text))

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper artifacts")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
