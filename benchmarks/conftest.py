"""Shared benchmark infrastructure.

Each benchmark regenerates one of the paper's tables or figures.  The
rendered tables are (1) written to ``benchmarks/results/`` as both a
``.txt`` rendering and a machine-readable ``.json`` artifact and (2)
printed in the terminal summary, so ``pytest benchmarks/
--benchmark-only`` leaves both machine-readable artifacts and a
side-by-side comparison against the paper.

JSON artifacts are wrapped in a versioned **envelope** (schema v2)::

    {
      "schema_version": 2,
      "host_cpus": 8,
      "git_describe": "cbd1396",
      "circuits": {"s27": {"n_pi": 4, ...}},
      "payload": {"name": ..., "rows": ..., "wall_time_s": ...}
    }

The inner ``payload`` keeps the exact pre-envelope shape, so every
reader — ``repro trace compare``, ``repro campaign ingest``, ad-hoc
scripts — accepts both enveloped and bare legacy artifacts.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

ARTIFACT_SCHEMA_VERSION = 2
"""Version of the benchmark-artifact envelope."""

_REPORTS: List[Tuple[str, str]] = []


def _git_describe() -> str:
    """The repo's ``git describe`` (best effort; '' off-repo)."""
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return proc.stdout.strip() if proc.returncode == 0 else ""


def _circuit_stats(names: Sequence[str]) -> Dict[str, Dict[str, int]]:
    from dataclasses import asdict

    from repro.circuit import circuit_stats, load_circuit

    out: Dict[str, Dict[str, int]] = {}
    for name in sorted(set(names)):
        stats = asdict(circuit_stats(load_circuit(name)))
        stats.pop("name", None)
        stats.pop("gate_mix", None)
        out[name] = stats
    return out


@pytest.fixture()
def record_table():
    """Record a rendered experiment table.

    Usage: ``record_table("table6", text)``.  The text is written to
    ``benchmarks/results/<name>.txt`` and echoed in the terminal
    summary.  A companion ``benchmarks/results/<name>.json`` records —
    inside the versioned envelope — the rows (``rows`` if given, else
    the text split into lines), the wall time since the fixture was
    set up, and any ``extra`` payload; ``circuits`` names library
    circuits whose structural stats belong in the envelope.
    """
    t0 = time.perf_counter()
    describe = _git_describe()

    def _record(
        name: str,
        text: str,
        rows: Optional[Any] = None,
        extra: Optional[dict] = None,
        circuits: Optional[Sequence[str]] = None,
    ) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        payload = {
            "name": name,
            "wall_time_s": round(time.perf_counter() - t0, 3),
            "rows": rows if rows is not None else text.splitlines(),
        }
        if extra:
            payload.update(extra)
        envelope: Dict[str, Any] = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "host_cpus": os.cpu_count() or 1,
            "git_describe": describe,
            "payload": payload,
        }
        if circuits:
            envelope["circuits"] = _circuit_stats(circuits)
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(envelope, indent=2, sort_keys=True, default=str)
            + "\n"
        )
        _REPORTS.append((name, text))

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper artifacts")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
