"""E9 / E11: ablations of the design choices Section 4.1 argues for,
plus the paper's future-work extension (Section 6).

* n_m sorting (E9a): candidate sets sorted by match count vs left in
  discovery order.  The paper argues sorting maximizes detections per
  assignment.
* full-length promotion (E9b): the rule moving the length-L_S tail
  reproducer to the front of each A_i.
* pseudo-random weight (E11): offering an LFSR-style weight as an
  extra candidate ("the use of pure-random sequences as part of the
  weight scheme ... the subject of future work").

Reported for each variant: number of assignments in Ω, distinct
subsequences, longest subsequence, and simulation effort.

The benchmark kernel is the default-configuration procedure on s27.
"""

from __future__ import annotations

from repro.core import ProcedureConfig, select_weight_assignments
from repro.flows import flow_for
from repro.sim import collapse_faults
from repro.util.tables import format_table

VARIANTS = {
    "paper defaults": ProcedureConfig(l_g=256),
    "no n_m sorting": ProcedureConfig(l_g=256, sort_by_matches=False),
    "no promotion": ProcedureConfig(l_g=256, promote=False),
    "with random weight": ProcedureConfig(l_g=256, allow_random_weight=True),
    "dense L_S schedule": ProcedureConfig(l_g=256, ls_schedule="dense"),
}


def test_ablations(benchmark, record_table):
    flow = flow_for("s27")
    circuit = flow.circuit
    sequence = flow.sequence
    faults = collapse_faults(circuit)

    rows = []
    results = {}
    for label, config in VARIANTS.items():
        result = select_weight_assignments(circuit, sequence, faults, config)
        results[label] = result
        covered = set()
        for entry in result.omega:
            covered.update(entry.detected)
        # Every variant keeps the coverage guarantee.
        assert covered == set(result.target_faults), label
        rows.append(
            [
                label,
                len(result.omega),
                result.n_subsequences,
                result.max_subsequence_length,
                result.stats.full_simulations,
                result.stats.sample_skips,
            ]
        )

    text = format_table(
        ["variant", "assignments", "subs", "max len",
         "full sims", "sample skips"],
        rows,
        title="Ablations on s27 (all variants keep 100% coverage of T's faults)",
    )
    record_table("ablations", text)

    # The dense schedule must agree with auto on the coverage guarantee
    # while being at least as thorough in lengths tried.
    assert results["dense L_S schedule"].stats.assignments_tried >= 1

    def kernel():
        return select_weight_assignments(
            circuit, sequence, faults, ProcedureConfig(l_g=256)
        )

    result = benchmark(kernel)
    assert result.omega
