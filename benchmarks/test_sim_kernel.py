"""E22: word-packed fault-simulation kernel — speedup over the oracle.

The vector backend packs all faults of a run into machine words and
evaluates the levelized netlist once per word instead of once per
fault group, with compiled straight-line stepping and event-driven
compaction.  This benchmark measures the single-process speedup on the
largest library circuit (g1488, full uncollapsed fault universe, a
50-cycle random binary sequence) and gates it at ≥10× — the headline
claim of the backend.

Correctness gate: the two backends return identical detection times
for every fault before any timing is recorded.
"""

from __future__ import annotations

import random
import time

from repro.circuit import load_circuit
from repro.sim import FaultSimulator, all_faults
from repro.util.tables import format_table

#: Required single-process speedup of the vector backend on g1488.
SPEEDUP_GATE = 10.0

CIRCUIT = "g1488"
CYCLES = 50
REPS = 3


def _best_of(reps, fn):
    best = None
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_sim_kernel(benchmark, record_table):
    circuit = load_circuit(CIRCUIT)
    faults = all_faults(circuit)
    rng = random.Random(1)
    stimulus = [
        [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(CYCLES)
    ]

    oracle = FaultSimulator(circuit, backend="python")
    vector = FaultSimulator(circuit, backend="vector")
    run = lambda sim: sim.run(stimulus, faults, stop_when_all_detected=False)

    t_python, r_python = _best_of(REPS, lambda: run(oracle))
    t_vector, r_vector = _best_of(REPS, lambda: run(vector))

    # Identical results first; speed claims mean nothing without them.
    assert r_python.detection_time == r_vector.detection_time
    assert r_python.undetected == r_vector.undetected

    speedup = t_python / t_vector
    json_rows = [{
        "circuit": CIRCUIT,
        "n_faults": len(faults),
        "cycles": CYCLES,
        "python_s": round(t_python, 4),
        "vector_s": round(t_vector, 4),
        "speedup": round(speedup, 2),
        "detected": len(r_vector.detection_time),
    }]
    text = format_table(
        ["circuit", "faults", "cycles", "python/s", "vector/s", "speedup"],
        [[CIRCUIT, len(faults), CYCLES, f"{t_python:.3f}",
          f"{t_vector:.3f}", f"{speedup:.1f}x"]],
        title="E22: word-packed fault-simulation kernel (single process)",
    )
    record_table("sim_kernel", text, rows=json_rows)

    assert speedup >= SPEEDUP_GATE, (
        f"vector backend {speedup:.1f}x over python; gate is "
        f"{SPEEDUP_GATE:.0f}x"
    )

    result = benchmark(lambda: run(vector))
    assert result.detection_time == r_python.detection_time
