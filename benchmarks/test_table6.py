"""E5: the paper's Table 6 — main experimental results.

For every circuit in the suite, runs the full pipeline (deterministic
test generation → compaction → weight selection → reverse-order
simulation) and prints the paper's columns: given sequence length and
fault count, number of weight assignments (seq), subsequences (subs),
longest subsequence (len), and the FSM bank size (num / out).

Shape claims checked against the paper:

* the fault coverage of Ω equals the coverage of T for every circuit
  (the paper's headline guarantee),
* the longest subsequence is much shorter than T (paper: e.g. 18 vs
  105 for s208, 3 vs 238 for s1196),
* the number of FSMs never exceeds the number of subsequences.

The benchmark kernel times the weight-selection procedure on s27.
Set ``REPRO_FULL_SUITE=1`` for the six larger stand-ins as well.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core import ProcedureConfig, select_weight_assignments
from repro.core.report import format_table6
from repro.flows import flow_for
from repro.flows.experiments import active_suite
from repro.sim import FaultSimulator
from repro.tgen import TestSequence

PAPER_T_S27 = TestSequence.from_strings(
    ["0111", "1001", "0111", "1001", "0100",
     "1011", "1001", "0000", "0000", "1011"]
)


def test_table6(benchmark, record_table):
    rows = []
    for name in active_suite():
        flow = flow_for(name)
        row = flow.table6

        # Coverage preservation: kept assignments re-detect every target.
        sim = FaultSimulator(flow.circuit)
        targets = list(flow.procedure.target_faults)
        covered = set()
        for assignment in flow.reverse_order.kept:
            t_g = assignment.generate(flow.procedure.l_g)
            covered.update(sim.run(t_g.patterns, targets).detection_time)
        assert covered == set(targets), name

        # Subsequences are much shorter than the deterministic sequence.
        assert row.max_length <= row.given_len
        # FSM sharing: one FSM per distinct length.
        assert row.n_fsms <= row.n_subsequences
        assert row.n_fsm_outputs <= row.n_subsequences
        rows.append(row)

    text = format_table6(rows)
    lg_note = "\n".join(
        f"  {row.circuit}: L_G = {flow_for(row.circuit).procedure.l_g}"
        for row in rows
    )
    record_table(
        "table6",
        text + "\n\nL_G used per circuit:\n" + lg_note,
        rows=[asdict(row) for row in rows],
        circuits=[row.circuit for row in rows],
    )

    # Benchmark kernel: the selection procedure itself on s27 with the
    # paper's own deterministic sequence.
    from repro.circuit import load_circuit
    from repro.sim import collapse_faults

    circuit = load_circuit("s27")
    faults = collapse_faults(circuit)

    def kernel():
        return select_weight_assignments(
            circuit, PAPER_T_S27, faults, ProcedureConfig(l_g=100)
        )

    result = benchmark(kernel)
    assert result.omega
