"""E18 (extension): delay-fault coverage of the weighted sequences.

The paper relates its subsequence weights to the 5-weight delay-fault
schemes of [11]/[15]: a weight ``01`` *is* the rising two-pattern
weight ``w01``.  Subsequence weights therefore apply launch/capture
pairs continuously — unlike free-running random patterns, whose
transitions are uncontrolled, and unlike a statically compacted stuck-at
sequence, which was never optimized for transitions.

This bench grades gross-delay transition faults (exact two-pass
simulation) under three stimuli of equal total length: the kept
weighted sequences, the deterministic sequence ``T`` repeated to the
same budget, and an LFSR stream.

The benchmark kernel is one transition fault-simulation run on s27.
"""

from __future__ import annotations

from repro.baselines.lfsr import lfsr_patterns
from repro.flows import flow_for
from repro.flows.experiments import active_suite
from repro.sim import TransitionFaultSimulator, all_transition_faults
from repro.util.tables import format_table


def test_transition_fault_coverage(benchmark, record_table):
    rows = []
    for name in active_suite():
        flow = flow_for(name)
        circuit = flow.circuit
        faults = all_transition_faults(circuit)
        sim = TransitionFaultSimulator(circuit)

        # Weighted sequences, back to back (bounded for runtime).
        l_g = min(flow.procedure.l_g, 256)
        weighted = []
        for assignment in flow.reverse_order.kept:
            weighted.extend(assignment.generate(l_g).patterns)
        budget = len(weighted)
        if budget == 0:
            continue

        t_repeated = []
        while len(t_repeated) < budget:
            t_repeated.extend(flow.sequence.patterns)
        t_repeated = t_repeated[:budget]

        lfsr = lfsr_patterns(len(circuit.inputs), budget, seed=1)

        cov_w = sim.run(weighted, faults).coverage
        cov_t = sim.run(t_repeated, faults).coverage
        cov_l = sim.run(lfsr, faults).coverage
        rows.append(
            [
                name,
                len(faults),
                budget,
                f"{100 * cov_w:.1f}",
                f"{100 * cov_t:.1f}",
                f"{100 * cov_l:.1f}",
            ]
        )

    text = format_table(
        ["circuit", "transition faults", "budget (cycles)",
         "weighted seqs %", "T repeated %", "LFSR %"],
        rows,
        title=(
            "E18: gross-delay transition fault coverage at equal budget "
            "(subsequence weights embed two-pattern tests, per [11]/[15])"
        ),
    )
    record_table("transition_faults", text)

    flow = flow_for("s27")
    faults = all_transition_faults(flow.circuit)
    stimulus = flow.reverse_order.kept[0].generate(128).patterns

    def kernel():
        return TransitionFaultSimulator(flow.circuit).run(stimulus, faults)

    result = benchmark(kernel)
    assert result.n_faults == len(faults)
