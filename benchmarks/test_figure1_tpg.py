"""E7: Figure 1 — the test sequence generator.

Synthesizes the Figure-1 TPG (cycle counter + assignment counter +
weight FSM bank + per-input selection logic) for each circuit's kept
weight assignments, verifies it cycle-exact against the software
weighted sequences, and reports its structure and gate cost next to
the ROM cost of storing the deterministic sequence (the stored-pattern
alternative of [18]/[19]).

The benchmark kernel is TPG synthesis for s27.
"""

from __future__ import annotations

from repro.flows import flow_for
from repro.flows.experiments import active_suite
from repro.hw import rom_bits_equivalent, synthesize_tpg, tpg_cost, verify_tpg
from repro.util.tables import format_table


def test_figure1_generator(benchmark, record_table):
    rows = []
    for name in active_suite():
        flow = flow_for(name)
        kept = list(flow.reverse_order.kept)
        assert kept, name
        # Verification of the full generator is cycle-count x gate-count;
        # keep the replay window bounded for the larger stand-ins by
        # verifying a TPG with a reduced L_G (structure is identical —
        # only the cycle counter width changes).
        l_g = min(flow.procedure.l_g, 64)
        design = synthesize_tpg(kept, l_g, flow.circuit.inputs)
        verdict = verify_tpg(design)
        assert verdict.ok, f"{name}: TPG replay mismatch {verdict.mismatches[:3]}"

        cost = tpg_cost(design)
        rom = rom_bits_equivalent(len(flow.sequence), len(flow.circuit.inputs))
        rows.append(
            [
                name,
                design.n_assignments,
                len(design.fsms),
                sum(f.n_outputs for f in design.fsms),
                cost.n_flops,
                cost.n_gates,
                cost.n_literals,
                f"{cost.gate_equivalents:.0f}",
                rom,
            ]
        )

    text = format_table(
        ["circuit", "assignments", "FSMs", "FSM outs", "flops",
         "gates", "literals", "gate-equiv", "ROM bits (stored T)"],
        rows,
        title="Figure 1: synthesized test sequence generators (replay-verified)",
    )
    record_table("figure1_tpg", text)

    # Benchmark kernel: synthesis for s27's kept assignments.
    flow = flow_for("s27")
    kept = list(flow.reverse_order.kept)

    def kernel():
        return synthesize_tpg(kept, 64, flow.circuit.inputs)

    design = benchmark(kernel)
    assert design.circuit.outputs
