"""E13 (extension): response compaction — the BIST loop the paper
presumes.

For every suite circuit: grade the kept weight assignments'
fault detection under *signature-based* observation (a MISR per
assignment window) and compare with the ideal per-cycle observation the
paper's fault simulation assumes.  Reports detected / aliased /
X-unknown / no-discrepancy counts, plus the full TPG→CUT→MISR closure
check on s27 (hardware signature == predicted signature).

The benchmark kernel is one hardware session simulation of the
composed s27 self-test circuit.
"""

from __future__ import annotations

from repro.flows import compose_bist, flow_for
from repro.flows.experiments import active_suite
from repro.hw import signature_coverage, synthesize_tpg
from repro.util.tables import format_table


def test_misr_response_compaction(benchmark, record_table):
    rows = []
    for name in active_suite():
        flow = flow_for(name)
        targets = list(flow.procedure.target_faults)
        stimuli = [
            assignment.generate(flow.procedure.l_g).patterns
            for assignment in flow.reverse_order.kept
        ]
        w_small = max(len(flow.circuit.outputs), 8)
        w_large = w_small + 8
        gradings = {
            width: signature_coverage(
                flow.circuit, stimuli, targets, misr_width=width
            )
            for width in (w_small, w_large)
        }
        for width, grading in gradings.items():
            assert (
                len(grading.detected)
                + len(grading.aliased)
                + len(grading.unknown)
                + len(grading.undetected)
                == len(targets)
            )
            # Signature detection is a subset of per-cycle detection:
            # the kept set covers 100% of targets per-cycle, so every
            # non-detected fault must be aliased/unknown, never
            # "no discrepancy".
            assert not grading.undetected, (name, width)
        # Aliasing here is structural, not random: (a) periodic weighted
        # stimuli cancel when the register's period divides the error
        # stream's repetition, and (b) error pairs on adjacent input
        # channels one cycle apart land on the same register coordinate
        # (width-independent).  Both mechanisms appear in the table; no
        # monotonicity in width is asserted — only that nothing is ever
        # silently lost as "no discrepancy" (checked above).
        g8, g16 = gradings[w_small], gradings[w_large]
        rows.append(
            [
                name,
                len(targets),
                len(g8.detected),
                len(g8.aliased),
                len(g16.detected),
                len(g16.aliased),
                len(g8.unknown),
                g8.masked_positions,
            ]
        )

    text = format_table(
        ["circuit", "targets", "det@small", "aliased@small",
         "det@wide", "aliased@wide", "X-unknown", "masked (cycle,PO)"],
        rows,
        title=(
            "E13: signature-based detection vs ideal per-cycle "
            "observation (MISR width ablation — periodic stimuli alias "
            "systematically in short registers)"
        ),
    )

    # Full closure on s27: hardware signature equals prediction.
    flow = flow_for("s27")
    tpg = synthesize_tpg(
        list(flow.reverse_order.kept), min(flow.procedure.l_g, 64),
        flow.circuit.inputs,
    )
    closure = compose_bist(flow.circuit, tpg)
    hw_sig, hw_x = closure.run_hardware()
    sw_sig, sw_x = closure.predict_signature()
    assert hw_x == 0 and sw_x == 0 and hw_sig == sw_sig
    text += (
        f"\n\ns27 TPG->CUT->MISR closure: hardware signature "
        f"{hw_sig:#06x} == predicted {sw_sig:#06x} "
        f"(settle {closure.settle_cycles} cycles, "
        f"{closure.circuit.num_gates(combinational_only=True)} gates total)"
    )
    record_table("misr_response", text)

    def kernel():
        return closure.run_hardware()

    sig = benchmark(kernel)
    assert sig == (hw_sig, 0)
