"""Tracing overhead and per-phase perf-regression gate.

Two checks:

* **Overhead** — the same flow runs with tracing off and on
  (best-of-N to suppress scheduler noise); tracing must cost less
  than 5% wall time (plus a small absolute allowance for very fast
  flows, where a millisecond of span bookkeeping would otherwise
  dominate the ratio).
* **Phase regression** — the traced run's per-phase wall times are
  written to ``benchmarks/results/trace_overhead.json`` (the
  ``phases`` table :func:`repro.trace.compare.load_phases` reads); if
  a previous artifact exists, the run is compared against it with
  :func:`compare_phases` and fails on any flagged regression — the
  same gate as ``repro trace compare``.

Not a paper artifact — an implementation benchmark for the trace
subsystem.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.core.procedure import ProcedureConfig
from repro.flows.full_flow import FlowConfig, run_full_flow
from repro.runtime import RuntimeContext
from repro.trace.compare import (
    compare_phases,
    load_phases,
    phase_durations,
    regressions,
)
from repro.util.tables import format_table

RESULTS_DIR = Path(__file__).parent / "results"
ARTIFACT = RESULTS_DIR / "trace_overhead.json"

CIRCUIT = "g208"
CFG = FlowConfig(
    seed=1,
    tgen_max_len=500,
    compaction_sims=30,
    procedure=ProcedureConfig(l_g=128),
)
REPEATS = 3
MAX_OVERHEAD = 0.05
ABS_ALLOWANCE_S = 0.02


def _timed_flow(trace: bool):
    best = float("inf")
    tracer = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        with RuntimeContext(trace=trace) as rt:
            run_full_flow(CIRCUIT, CFG, runtime=rt)
            wall = time.perf_counter() - t0
            if wall < best:
                best = wall
                tracer = rt.tracer
    return best, tracer


def test_trace_overhead_and_phase_regression(record_table):
    t_off, _ = _timed_flow(trace=False)
    t_on, tracer = _timed_flow(trace=True)

    overhead = (t_on - t_off) / t_off if t_off else 0.0
    assert t_on <= t_off * (1.0 + MAX_OVERHEAD) + ABS_ALLOWANCE_S, (
        f"tracing overhead {overhead:+.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(off={t_off:.3f}s on={t_on:.3f}s)"
    )

    root = tracer.finish()
    phases = phase_durations(root)

    # Gate against the previous artifact before overwriting it.
    deltas = []
    if ARTIFACT.exists():
        baseline = load_phases(ARTIFACT)
        deltas = compare_phases(baseline, phases, tolerance=1.0)
        regressed = regressions(deltas)
        assert not regressed, "phase regression vs previous artifact:\n" + (
            "\n".join(d.format() for d in regressed)
        )

    rows = [
        {"phase": name, "wall_s": round(phases[name], 3)}
        for name in sorted(phases)
    ]
    text = format_table(
        ["phase", "wall (s)"],
        [[r["phase"], r["wall_s"]] for r in rows],
        title=(
            f"Tracing overhead on {CIRCUIT}: off={t_off:.3f}s "
            f"on={t_on:.3f}s ({overhead:+.1%})"
        ),
    )
    record_table(
        "trace_overhead",
        text,
        rows=rows,
        extra={
            "circuit": CIRCUIT,
            "wall_off_s": round(t_off, 3),
            "wall_on_s": round(t_on, 3),
            "overhead": round(overhead, 4),
            "phases": {name: round(v, 4) for name, v in phases.items()},
            "compared_against_previous": bool(deltas),
        },
    )
