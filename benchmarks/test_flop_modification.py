"""E15 (related-work class): flip-flop-modifying DFT vs the proposed
method.

The paper's introduction distinguishes schemes that modify the circuit
flip-flops ([20] partial scan/BIST registers, [21] hold mode, [22]
partial reset) from schemes — like the proposed one — that only drive
the primary inputs, "avoiding the routing overhead for controlling the
flip-flops, especially when the number of flip-flops is large".

This bench quantifies that tradeoff on the suite: random testing with
hold-mode and partial-reset flip-flops (coverage of the *stem* fault
universe, so the fault list is valid on all circuit variants) against
plain LFSR BIST and the proposed weighted sequences, next to the extra
gates and control inputs each modification costs.

The benchmark kernel is a hold-mode BIST session on s27.
"""

from __future__ import annotations

from repro.baselines import (
    add_hold_mode,
    add_partial_reset,
    hold_mode_bist,
    lfsr_bist,
    modification_cost,
    partial_reset_bist,
)
from repro.circuit.gates import GateType
from repro.flows import flow_for
from repro.flows.experiments import active_suite
from repro.sim import Fault, FaultSimulator
from repro.util.tables import format_table


def _stem_faults(circuit):
    return [
        Fault(net, v)
        for net in circuit.gates
        if circuit.gate(net).gtype not in (GateType.CONST0, GateType.CONST1)
        for v in (0, 1)
    ]


def test_flop_modification_tradeoff(benchmark, record_table):
    rows = []
    for name in active_suite():
        flow = flow_for(name)
        circuit = flow.circuit
        faults = _stem_faults(circuit)
        budget = max(1, flow.table6.n_sequences) * flow.procedure.l_g

        # Proposed method: kept weighted sequences, same fault universe.
        sim = FaultSimulator(circuit)
        covered = set()
        for assignment in flow.reverse_order.kept:
            t_g = assignment.generate(flow.procedure.l_g)
            covered.update(sim.run(t_g.patterns, faults).detection_time)

        plain = lfsr_bist(circuit, faults, n_patterns=budget, seed=1)
        hold = hold_mode_bist(circuit, faults, n_patterns=budget, seed=1)
        preset = partial_reset_bist(circuit, faults, n_patterns=budget, seed=1)
        hold_cost = modification_cost(circuit, add_hold_mode(circuit))
        preset_cost = modification_cost(circuit, add_partial_reset(circuit))

        rows.append(
            [
                name,
                len(faults),
                f"{100 * len(covered) / len(faults):.1f}",
                f"{100 * plain.coverage:.1f}",
                f"{100 * hold.coverage:.1f} (+{hold_cost.extra_gates}g)",
                f"{100 * preset.coverage:.1f} (+{preset_cost.extra_gates}g)",
            ]
        )
        # Modifying the flip-flops must never *reduce* what plain random
        # testing achieves by much; partial reset in particular fixes
        # initialization.  (Loose sanity bound, not a paper claim.)
        assert preset.coverage >= plain.coverage * 0.8, name

    text = format_table(
        ["circuit", "stem faults", "proposed %", "LFSR %",
         "hold-mode % (cost)", "partial-reset % (cost)"],
        rows,
        title=(
            "E15: flip-flop-modifying DFT ([21]/[22]) vs the proposed "
            "input-only method, equal cycle budgets"
        ),
    )
    record_table("flop_modification", text)

    flow = flow_for("s27")
    faults = _stem_faults(flow.circuit)

    def kernel():
        return hold_mode_bist(flow.circuit, faults, n_patterns=300, seed=1)

    result = benchmark(kernel)
    assert result.n_faults == len(faults)
