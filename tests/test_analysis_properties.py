"""Property-based tests (hypothesis) for the analysis layer.

Two families:

* classic testability measures (SCOAP, COP) — permutation invariance
  over symmetric gates and range sanity;
* the static implication engine — the value-set fixpoint and the
  impossible-literal table are sound against the reference ternary
  simulator, propagation closures are fixpoints, and observability is
  monotone under added observation points.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import compute_cop, compute_scoap
from repro.analysis.static import (
    CAN0,
    CAN1,
    CANX,
    ImplicationEngine,
    frame_fixpoint,
    observable_nets,
)
from repro.circuit import Circuit
from repro.circuit.gates import Gate, GateType
from repro.circuit.synth import SynthSpec, synthesize
from repro.sim import LogicSimulator
from repro.sim.compile import compile_circuit
from repro.sim.values import V0, V1, VX
from repro.util.rng import DeterministicRng

_SYMMETRIC = {
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
}

seeds = st.integers(min_value=0, max_value=100_000)


def _random_circuit(seed):
    return synthesize(SynthSpec("prop", 4, 2, 2, 18, seed=seed))


def _permute_symmetric_fanins(circuit, seed):
    """A copy of ``circuit`` with symmetric gates' fanins shuffled."""
    rng = DeterministicRng(seed)
    gates = []
    for net, gate in circuit.gates.items():
        fanins = list(gate.fanins)
        if gate.gtype in _SYMMETRIC and len(fanins) > 1:
            rng.shuffle(fanins)
        gates.append(Gate(net, gate.gtype, tuple(fanins)))
    return Circuit(circuit.name, gates, circuit.outputs)


def _value_mask(value):
    return {V0: CAN0, V1: CAN1, VX: CANX}[value]


class TestTestabilityMeasures:
    @given(seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_scoap_invariant_under_fanin_permutation(self, seed, shuffle_seed):
        circuit = _random_circuit(seed)
        permuted = _permute_symmetric_fanins(circuit, shuffle_seed)
        a = compute_scoap(circuit)
        b = compute_scoap(permuted)
        assert a.cc0 == b.cc0
        assert a.cc1 == b.cc1
        assert a.co == b.co

    @given(seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_cop_invariant_under_fanin_permutation(self, seed, shuffle_seed):
        circuit = _random_circuit(seed)
        permuted = _permute_symmetric_fanins(circuit, shuffle_seed)
        a = compute_cop(circuit)
        b = compute_cop(permuted)
        for net in circuit.gates:
            assert abs(a.probability[net] - b.probability[net]) < 1e-12
            assert abs(a.observability[net] - b.observability[net]) < 1e-12

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_cop_values_are_probabilities(self, seed):
        estimates = compute_cop(_random_circuit(seed))
        for net, p in estimates.probability.items():
            assert 0.0 <= p <= 1.0
            assert 0.0 <= estimates.observability[net] <= 1.0


class TestValueSetSoundness:
    @given(seeds, seeds)
    @settings(max_examples=20, deadline=None)
    def test_simulated_values_inside_fixpoint(self, seed, stim_seed):
        circuit = _random_circuit(seed)
        union, _ = frame_fixpoint(circuit)
        comp = compile_circuit(circuit)
        rng = DeterministicRng(stim_seed)
        stimulus = [
            tuple(
                VX if rng.random() < 0.25 else rng.bit()
                for _ in circuit.inputs
            )
            for _ in range(12)
        ]
        trace = LogicSimulator(circuit, comp).run(stimulus, record_nets=True)
        for cycle in trace.nets:
            for name, value in zip(comp.names, cycle):
                assert union[name] & _value_mask(value), (
                    f"net {name} took {value} outside its value set"
                )

    @given(seeds, seeds)
    @settings(max_examples=20, deadline=None)
    def test_impossible_literals_never_simulated(self, seed, stim_seed):
        circuit = _random_circuit(seed)
        union, _ = frame_fixpoint(circuit)
        engine = ImplicationEngine(circuit, union)
        engine.learn()
        if not engine.impossible:
            return
        comp = compile_circuit(circuit)
        rng = DeterministicRng(stim_seed)
        stimulus = [
            tuple(rng.bit() for _ in circuit.inputs) for _ in range(16)
        ]
        trace = LogicSimulator(circuit, comp).run(stimulus, record_nets=True)
        index = {name: i for i, name in enumerate(comp.names)}
        binary = {0: V0, 1: V1}
        for net, value in engine.impossible:
            for cycle in trace.nets:
                assert cycle[index[net]] != binary[value], (
                    f"impossible literal {net}={value} was computed"
                )


class TestImplicationClosure:
    @given(seeds, st.integers(min_value=0, max_value=1), st.data())
    @settings(max_examples=20, deadline=None)
    def test_closure_is_fixpoint(self, seed, value, data):
        circuit = _random_circuit(seed)
        union, _ = frame_fixpoint(circuit)
        engine = ImplicationEngine(circuit, union)
        net = data.draw(st.sampled_from(sorted(circuit.gates)))
        closure = engine.propagate({net: value})
        if closure is None:
            return
        assert engine.propagate(dict(closure)) == closure

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_learned_exclusions_mirror_implications(self, seed):
        circuit = _random_circuit(seed)
        union, _ = frame_fixpoint(circuit)
        engine = ImplicationEngine(circuit, union)
        engine.learn()
        # Contrapositive bookkeeping: a ⟹ b recorded as trigger ¬b
        # excluding a, for every direct implication of the last round.
        for (net, value), targets in engine.implications.items():
            for m, w in targets:
                assert (net, value) in engine.learned.get((m, 1 - w), ())


class TestObservabilityMonotone:
    @given(seeds, st.data())
    @settings(max_examples=20, deadline=None)
    def test_extra_observation_point_only_grows(self, seed, data):
        circuit = _random_circuit(seed)
        before = observable_nets(circuit)
        tap = data.draw(st.sampled_from(sorted(circuit.gates)))
        gates = [g for g in circuit.gates.values()]
        gates.append(Gate("__obs", GateType.BUF, (tap,)))
        extended = Circuit(
            circuit.name, gates, tuple(circuit.outputs) + ("__obs",)
        )
        after = observable_nets(extended)
        assert before <= after
        assert tap in after
