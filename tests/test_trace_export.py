"""Tests for trace exporters, normalization, and phase comparison."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.runtime.metrics import RuntimeStats
from repro.trace import (
    TRACE_FORMAT,
    PhaseDelta,
    TraceEvent,
    Tracer,
    chrome_trace,
    compare_phases,
    export_trace,
    load_phases,
    load_trace,
    normalize_trace,
    normalized_json,
    phase_durations,
    read_events_jsonl,
    regressions,
    render_text,
    trace_payload,
    write_events_jsonl,
    write_phases,
)


@pytest.fixture()
def sample_trace():
    """A small trace exercising flow spans, task spans, both event tiers."""
    stats = RuntimeStats()
    tracer = Tracer(stats=stats)
    with tracer.span("full_flow", circuit="s27"):
        with tracer.span("procedure", l_g=100):
            tracer.event("omega", u=3, l_s=1, row=2, detected=5)
            stats.cache_misses += 1
            tracer.event("cache_miss", op="run", key="k0")
            tracer.add_task_span("fault_group", "t0", 0.02, faults=4)
        with tracer.span("reverse_order"):
            tracer.event("reverse", index=0, kept=True, detected=5)
    root = tracer.finish()
    return root, tracer.events


class TestJsonArtifact:
    def test_round_trip_through_file(self, sample_trace, tmp_path):
        root, events = sample_trace
        path = tmp_path / "trace.json"
        export_trace(root, events, path, "json")
        back_root, back_events = load_trace(path)
        assert normalized_json(back_root, back_events) == normalized_json(
            root, events
        )
        assert [e.to_dict() for e in back_events] == [
            e.to_dict() for e in events
        ]
        assert json.loads(path.read_text())["format"] == TRACE_FORMAT

    def test_payload_shape(self, sample_trace):
        root, events = sample_trace
        payload = trace_payload(root, events)
        assert set(payload) == {"format", "spans", "events"}
        assert payload["format"] == TRACE_FORMAT

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read trace"):
            load_trace(tmp_path / "nope.json")

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TraceError, match="not valid JSON"):
            load_trace(path)

    def test_load_rejects_wrong_format_version(self, sample_trace, tmp_path):
        root, events = sample_trace
        payload = trace_payload(root, events)
        payload["format"] = TRACE_FORMAT + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(TraceError, match="trace format"):
            load_trace(path)

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(TraceError, match="not a trace artifact"):
            load_trace(path)

    def test_export_unknown_format(self, sample_trace, tmp_path):
        root, events = sample_trace
        with pytest.raises(TraceError, match="unknown trace format"):
            export_trace(root, events, tmp_path / "t", "xml")

    def test_export_unwritable_path(self, sample_trace, tmp_path):
        root, events = sample_trace
        with pytest.raises(TraceError, match="cannot write trace"):
            export_trace(root, events, tmp_path / "no" / "dir" / "t.json")


class TestTextRender:
    def test_tree_markers_timings_counters_events(self, sample_trace):
        root, events = sample_trace
        text = render_text(root, events)
        lines = text.splitlines()
        assert lines[0].startswith("- trace")
        assert "  - full_flow (circuit=s27)" in text
        assert "    - procedure (l_g=100)" in text
        assert "    * fault_group" not in text.splitlines()[0]
        assert any(
            line.strip().startswith("* fault_group") for line in lines
        )
        assert "wall=" in lines[1] and "cpu=" in lines[1]
        assert "[cache_misses=+1]" in text
        assert lines[-1].startswith("events: 3 (")
        assert "cache_miss=1" in lines[-1]
        assert text.endswith("\n")

    def test_render_without_events_has_no_summary_line(self, sample_trace):
        root, _ = sample_trace
        assert "events:" not in render_text(root)


class TestChromeExport:
    """Validate the Chrome trace-event schema Perfetto expects."""

    def test_document_shape(self, sample_trace):
        root, events = sample_trace
        doc = chrome_trace(root, events)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_metadata_event(self, sample_trace):
        root, events = sample_trace
        first = chrome_trace(root, events)["traceEvents"][0]
        assert first == {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "process_name",
            "args": {"name": "repro"},
        }

    def test_complete_events_cover_every_span(self, sample_trace):
        root, events = sample_trace
        complete = [
            e
            for e in chrome_trace(root, events)["traceEvents"]
            if e["ph"] == "X"
        ]
        assert len(complete) == len(list(root.walk()))
        by_id = {e["args"]["id"]: e for e in complete}
        for span in root.walk():
            entry = by_id[span.span_id]
            assert entry["name"] == span.name
            assert entry["cat"] == span.category
            assert entry["pid"] == 1 and entry["tid"] == 1
            assert entry["ts"] == pytest.approx(span.t_start_s * 1e6, abs=1e-2)
            assert entry["dur"] == pytest.approx(
                span.duration_s * 1e6, abs=1e-2
            )
            assert entry["ts"] >= 0 and entry["dur"] >= 0

    def test_counter_deltas_ride_in_args(self, sample_trace):
        root, events = sample_trace
        complete = [
            e
            for e in chrome_trace(root, events)["traceEvents"]
            if e["ph"] == "X" and e["name"] == "procedure"
        ]
        assert complete[0]["args"]["+cache_misses"] == 1.0
        assert complete[0]["args"]["l_g"] == 100

    def test_instant_events(self, sample_trace):
        root, events = sample_trace
        instants = [
            e
            for e in chrome_trace(root, events)["traceEvents"]
            if e["ph"] == "i"
        ]
        assert len(instants) == len(events)
        kinds = {e["name"]: e for e in instants}
        assert kinds["omega"]["cat"] == "deterministic"
        assert kinds["cache_miss"]["cat"] == "runtime"
        for instant in instants:
            assert instant["s"] == "t"
            assert "span" in instant["args"]

    def test_chrome_file_is_json_serializable(self, sample_trace, tmp_path):
        root, events = sample_trace
        path = tmp_path / "trace.chrome.json"
        export_trace(root, events, path, "chrome")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["ph"] == "M"


class TestNormalization:
    def test_task_spans_and_runtime_events_dropped(self, sample_trace):
        root, events = sample_trace
        norm = normalize_trace(root, events)
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node["children"]:
                collect(child)

        collect(norm["spans"])
        assert "fault_group" not in names
        assert {"trace", "full_flow", "procedure", "reverse_order"} <= names
        kinds = [e["kind"] for e in norm["events"]]
        assert kinds == ["omega", "reverse"]
        assert [e["seq"] for e in norm["events"]] == [0, 1]

    def test_no_timings_in_normalized_output(self, sample_trace):
        root, events = sample_trace
        blob = normalized_json(root, events)
        for forbidden in ("t_s", "duration", "cpu", "wall", "counter"):
            assert forbidden not in blob

    def test_normalized_json_is_canonical(self, sample_trace):
        root, events = sample_trace
        a = normalized_json(root, events)
        b = normalized_json(root, events)
        assert a == b
        assert " " not in a.split('"note"')[0][:2]  # compact separators


class TestEventsJsonl:
    def test_round_trip(self, sample_trace, tmp_path):
        _, events = sample_trace
        path = tmp_path / "events.jsonl"
        count = write_events_jsonl(events, path)
        assert count == len(events)
        back = read_events_jsonl(path)
        assert [e.to_dict() for e in back] == [e.to_dict() for e in events]

    def test_read_rejects_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0}\nnot json\n')
        with pytest.raises(TraceError):
            read_events_jsonl(path)


class TestCompare:
    def test_phase_durations_aggregate_flow_spans_by_name(self, sample_trace):
        root, _ = sample_trace
        phases = phase_durations(root)
        assert set(phases) == {
            "trace",
            "full_flow",
            "procedure",
            "reverse_order",
        }
        assert all(v >= 0.0 for v in phases.values())

    def test_artifact_round_trip(self, tmp_path):
        path = tmp_path / "phases.json"
        write_phases({"procedure": 1.5, "compaction": 0.2}, path, jobs=4)
        assert load_phases(path) == {"procedure": 1.5, "compaction": 0.2}

    def test_load_phases_accepts_full_trace(self, sample_trace, tmp_path):
        root, events = sample_trace
        path = tmp_path / "trace.json"
        export_trace(root, events, path, "json")
        assert load_phases(path) == pytest.approx(phase_durations(root))

    def test_load_phases_missing_baseline(self, tmp_path):
        with pytest.raises(TraceError, match="baseline not found"):
            load_phases(tmp_path / "absent.json")

    def test_load_phases_rejects_malformed(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text('{"other": 1}')
        with pytest.raises(TraceError, match="no 'phases' table"):
            load_phases(path)

    def test_regression_needs_both_ratio_and_absolute_growth(self):
        deltas = compare_phases(
            {"big": 10.0, "tiny": 0.001, "steady": 5.0},
            {"big": 14.0, "tiny": 0.004, "steady": 5.1},
            tolerance=0.25,
            min_seconds=0.05,
        )
        by_name = {d.name: d for d in deltas}
        assert by_name["big"].regressed  # +40% and +4s
        assert not by_name["tiny"].regressed  # x4 but below min_seconds
        assert not by_name["steady"].regressed  # +2% within tolerance
        assert regressions(deltas) == [by_name["big"]]

    def test_new_and_vanished_phases(self):
        deltas = compare_phases({"old": 1.0}, {"new": 1.0})
        by_name = {d.name: d for d in deltas}
        assert by_name["new"].regressed
        assert by_name["new"].ratio == float("inf")
        assert not by_name["old"].regressed
        assert by_name["old"].current_s == 0.0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(TraceError, match="tolerance"):
            compare_phases({}, {}, tolerance=-0.1)

    def test_format_line(self):
        delta = PhaseDelta("procedure", 2.0, 3.0, True)
        line = delta.format()
        assert line.startswith("procedure")
        assert "2.000s" in line and "3.000s" in line
        assert "x 1.50" in line and line.endswith("REGRESSED")
