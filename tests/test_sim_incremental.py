"""Tests for the incremental (stepping) fault simulator."""

from __future__ import annotations

import pytest

from repro.sim import FaultSimulator, IncrementalFaultSimulator, collapse_faults
from repro.util.rng import DeterministicRng


@pytest.fixture()
def stimulus(s27):
    rng = DeterministicRng(11)
    return [rng.bits(len(s27.inputs)) for _ in range(30)]


class TestAgreementWithBatch:
    def test_step_detections_match_batch(self, s27, s27_faults, stimulus):
        batch = FaultSimulator(s27).run(stimulus, s27_faults)
        inc = IncrementalFaultSimulator(s27, s27_faults)
        stepped = {}
        for u, pattern in enumerate(stimulus):
            for fault in inc.step(pattern):
                stepped[fault] = u
        assert stepped == batch.detection_time

    def test_multi_group_agreement(self, g208, stimulus):
        faults = collapse_faults(g208)[:150]
        rng = DeterministicRng(4)
        stim = [rng.bits(len(g208.inputs)) for _ in range(40)]
        batch = FaultSimulator(g208).run(stim, faults)
        inc = IncrementalFaultSimulator(g208, faults)
        stepped = {}
        for u, pattern in enumerate(stim):
            for fault in inc.step(pattern):
                stepped[fault] = u
        assert stepped == batch.detection_time


class TestPeek:
    def test_peek_does_not_commit(self, s27, s27_faults, stimulus):
        inc = IncrementalFaultSimulator(s27, s27_faults)
        before = inc.n_remaining
        count = inc.peek(stimulus[0])
        assert inc.n_remaining == before
        # Committing the same pattern detects exactly what peek counted.
        assert len(inc.step(stimulus[0])) == count

    def test_peek_counts_match_step(self, s27, s27_faults, stimulus):
        inc = IncrementalFaultSimulator(s27, s27_faults)
        for pattern in stimulus[:10]:
            peeked = inc.peek(pattern)
            assert peeked == len(inc.step(pattern))


class TestRegroup:
    def test_regroup_preserves_behaviour(self, s27, s27_faults, stimulus):
        # Run two simulators in lockstep; regroup one of them mid-way.
        plain = IncrementalFaultSimulator(s27, s27_faults)
        packed = IncrementalFaultSimulator(s27, s27_faults)
        for u, pattern in enumerate(stimulus):
            a = set(plain.step(pattern))
            b = set(packed.step(pattern))
            assert a == b, f"divergence at time {u}"
            if u in (3, 7, 15):
                packed.regroup()

    def test_regroup_shrinks_remaining_list(self, g208):
        faults = collapse_faults(g208)
        inc = IncrementalFaultSimulator(g208, faults)
        rng = DeterministicRng(8)
        for _ in range(40):
            inc.step(rng.bits(len(g208.inputs)))
        remaining_before = sorted(inc.remaining_faults())
        inc.regroup()
        assert sorted(inc.remaining_faults()) == remaining_before

    def test_regroup_empty(self, s27):
        inc = IncrementalFaultSimulator(s27, [])
        inc.regroup()
        assert inc.n_remaining == 0


class TestResetState:
    def test_reset_forgets_initialization(self, s27, s27_faults):
        inc = IncrementalFaultSimulator(s27, s27_faults)
        rng = DeterministicRng(2)
        for _ in range(5):
            inc.step(rng.bits(4))
        inc.reset_state()
        # After a reset to all-X, an all-X input detects nothing.
        from repro.sim import VX

        assert inc.peek((VX, VX, VX, VX)) == 0

    def test_remaining_accounting(self, s27, s27_faults, stimulus):
        inc = IncrementalFaultSimulator(s27, s27_faults)
        total = 0
        for pattern in stimulus:
            total += len(inc.step(pattern))
        assert inc.n_remaining == len(s27_faults) - total
        assert len(inc.remaining_faults()) == inc.n_remaining
