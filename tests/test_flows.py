"""Tests for the end-to-end flows and experiment drivers."""

from __future__ import annotations

import pytest

from repro import FlowConfig, run_full_flow
from repro.core import ProcedureConfig
from repro.flows import clear_cache, flow_for, table6_rows, tradeoff_for
from repro.flows.experiments import flow_config_for
from repro.sim import FaultSimulator


@pytest.fixture(scope="module")
def s27_flow():
    return run_full_flow(
        "s27",
        FlowConfig(
            seed=1,
            tgen_max_len=500,
            compaction_sims=30,
            procedure=ProcedureConfig(l_g=100),
            synthesize_hardware=True,
        ),
    )


class TestFullFlow:
    def test_coverage_preserved_end_to_end(self, s27_flow):
        # The headline claim: the kept weight assignments detect exactly
        # the faults the deterministic sequence detects.
        flow = s27_flow
        sim = FaultSimulator(flow.circuit)
        targets = list(flow.procedure.target_faults)
        covered = set()
        for assignment in flow.reverse_order.kept:
            t_g = assignment.generate(flow.procedure.l_g)
            covered.update(sim.run(t_g.patterns, targets).detection_time)
        assert covered == set(targets)

    def test_table6_row_consistency(self, s27_flow):
        row = s27_flow.table6
        assert row.circuit == "s27"
        assert row.given_len == len(s27_flow.sequence)
        assert row.given_det == len(s27_flow.procedure.target_faults)
        assert row.n_fsms <= row.n_subsequences
        assert row.n_fsm_outputs <= row.n_subsequences

    def test_hardware_synthesized_and_verified(self, s27_flow):
        assert s27_flow.tpg is not None
        assert s27_flow.tpg_verified is True
        assert len(s27_flow.tpg.circuit.outputs) == 4

    def test_compaction_never_lengthens(self, s27_flow):
        assert len(s27_flow.sequence) <= len(s27_flow.generated.sequence)

    def test_timings_recorded(self, s27_flow):
        assert {"test_generation", "procedure", "reverse_order"} <= set(
            s27_flow.timings
        )

    def test_accepts_circuit_object(self, s27):
        flow = run_full_flow(
            s27,
            FlowConfig(tgen_max_len=300, compaction_sims=0,
                       procedure=ProcedureConfig(l_g=64)),
        )
        assert flow.compaction is None
        assert flow.table6.circuit == "s27"


class TestExperimentDrivers:
    def test_flow_cache(self):
        clear_cache()
        a = flow_for("s27")
        b = flow_for("s27")
        assert a is b

    def test_table6_rows_shape(self):
        rows = table6_rows(("s27",))
        assert len(rows) == 1
        assert rows[0].circuit == "s27"

    def test_tradeoff_rows(self):
        rows = tradeoff_for("s27")
        assert rows[-1].fault_efficiency == 100.0

    def test_config_lg_defaults(self):
        assert flow_config_for("s27").procedure.l_g == 2000
        assert flow_config_for("g208").procedure.l_g == 512
        assert flow_config_for("g208", l_g=64).procedure.l_g == 64
