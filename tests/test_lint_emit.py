"""Report rendering: text, JSON, and SARIF 2.1.0 (schema-validated)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    REGISTRY,
    FORMATTERS,
    format_json,
    format_sarif,
    format_text,
    lint_bench_path,
    lint_python_path,
    to_sarif_dict,
)
from repro.lint.core import LintReport

FIXTURES = Path(__file__).parent / "fixtures"

# A trimmed but structurally faithful subset of the official SARIF
# 2.1.0 schema (json.schemastore.org/sarif-2.1.0.json): the properties
# our emitter produces, with the same types, requirements and enums.
# Embedded because tests must run without network access.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {
                                        "type": "string", "format": "uri"
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {
                                                            "type": "string"
                                                        }
                                                    },
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0
                                },
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error"
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type":
                                                                "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                            "endColumn": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                            "logicalLocations": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "properties": {
                                                        "name": {
                                                            "type": "string"
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _fixture_report():
    return lint_bench_path(FIXTURES / "defects.bench").merge(
        lint_python_path(FIXTURES / "defect_module.py")
    )


class TestText:
    def test_listing_plus_summary(self):
        text = format_text(_fixture_report())
        lines = text.splitlines()
        assert len(lines) == 10
        assert lines[-1] == "9 findings (5 error, 4 warning, 0 note)"
        assert any("warning[C006]" in line for line in lines)

    def test_empty_report(self):
        assert format_text(LintReport()) == (
            "0 findings (0 error, 0 warning, 0 note)"
        )

    def test_suppressed_count_shown(self):
        report = LintReport(suppressed_count=2)
        assert format_text(report).endswith(", 2 suppressed")


class TestJson:
    def test_round_trips_and_counts(self):
        payload = json.loads(format_json(_fixture_report()))
        assert payload["tool"] == "repro-lint"
        assert len(payload["diagnostics"]) == 9
        assert payload["summary"] == {
            "errors": 5, "warnings": 4, "notes": 0, "suppressed": 0
        }

    def test_diagnostics_carry_rule_names(self):
        payload = json.loads(format_json(_fixture_report()))
        for entry in payload["diagnostics"]:
            assert entry["rule_name"] == REGISTRY[entry["rule_id"]].name

    def test_diagnostics_carry_column_range(self):
        payload = json.loads(format_json(
            lint_python_path(FIXTURES / "defect_module.py")
        ))
        for entry in payload["diagnostics"]:
            assert entry["column"] >= 1
            assert entry["end_column"] > entry["column"]


class TestSarif:
    def test_validates_against_schema_subset(self):
        jsonschema = pytest.importorskip("jsonschema")
        log = to_sarif_dict(_fixture_report())
        jsonschema.validate(
            log, SARIF_SUBSET_SCHEMA,
            format_checker=jsonschema.FormatChecker(),
        )

    def test_empty_report_also_validates(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(to_sarif_dict(LintReport()), SARIF_SUBSET_SCHEMA)

    def test_version_and_tool(self):
        log = to_sarif_dict(LintReport())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_all_rules_in_driver_metadata(self):
        # A clean run still documents every check that was performed.
        log = to_sarif_dict(LintReport())
        ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == list(REGISTRY)

    def test_results_reference_rules_by_index(self):
        log = to_sarif_dict(_fixture_report())
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        for result in log["runs"][0]["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_line_becomes_start_line(self):
        log = to_sarif_dict(lint_python_path(FIXTURES / "defect_module.py"))
        regions = [
            r["locations"][0]["physicalLocation"].get("region")
            for r in log["runs"][0]["results"]
        ]
        assert all(region and region["startLine"] >= 1 for region in regions)

    def test_parses_as_json_text(self):
        parsed = json.loads(format_sarif(_fixture_report()))
        assert parsed["version"] == "2.1.0"

    def test_column_range_present_and_half_open(self):
        # AST findings carry a column; endColumn must always accompany
        # startColumn (omitting it makes SARIF consumers default the
        # region to end-of-line) and point one past the region.
        log = to_sarif_dict(lint_python_path(FIXTURES / "defect_module.py"))
        regions = [
            r["locations"][0]["physicalLocation"]["region"]
            for r in log["runs"][0]["results"]
        ]
        assert regions
        for region in regions:
            assert region["startColumn"] >= 1
            assert region["endColumn"] > region["startColumn"]

    def test_missing_end_column_defaults_to_one_char_region(self):
        from repro.lint import make_diagnostic
        from repro.lint.core import REGISTRY as rules

        diag = make_diagnostic(
            rules["D101"], "msg", "a.py", line=3, column=7
        )
        log = to_sarif_dict(LintReport.from_iterable([diag]))
        region = (
            log["runs"][0]["results"][0]
            ["locations"][0]["physicalLocation"]["region"]
        )
        assert region == {"startLine": 3, "startColumn": 7, "endColumn": 8}

    def test_line_without_column_has_no_column_keys(self):
        from repro.lint import make_diagnostic
        from repro.lint.core import REGISTRY as rules

        diag = make_diagnostic(rules["C001"], "msg", "c.bench", line=2)
        log = to_sarif_dict(LintReport.from_iterable([diag]))
        region = (
            log["runs"][0]["results"][0]
            ["locations"][0]["physicalLocation"]["region"]
        )
        assert region == {"startLine": 2}


def test_formatter_registry():
    assert sorted(FORMATTERS) == ["json", "sarif", "text"]
    report = LintReport()
    for formatter in FORMATTERS.values():
        assert isinstance(formatter(report), str)
