"""Edge cases and cross-cutting behaviours not covered elsewhere:
error hierarchy, experiment drivers, flow modes, provenance metadata,
Verilog identifier escaping, and the hybrid flow path."""

from __future__ import annotations

import pytest

from repro import FlowConfig, run_full_flow
from repro.circuit import CircuitBuilder, write_verilog
from repro.core import ProcedureConfig, select_weight_assignments
from repro.errors import (
    BenchParseError,
    FaultModelError,
    HardwareError,
    NetlistError,
    ProcedureError,
    ReproError,
    SimulationError,
    WeightError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            NetlistError,
            BenchParseError,
            SimulationError,
            FaultModelError,
            WeightError,
            ProcedureError,
            HardwareError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_bench_parse_error_line_number(self):
        error = BenchParseError("bad", line_no=7)
        assert "line 7" in str(error)
        assert error.line_no == 7

    def test_bench_parse_error_no_line(self):
        assert BenchParseError("bad").line_no is None


class TestExperimentDrivers:
    def test_full_suite_env(self, monkeypatch):
        from repro.flows.experiments import FULL_SUITE, active_suite

        monkeypatch.setenv("REPRO_FULL_SUITE", "1")
        assert active_suite() == FULL_SUITE

    def test_default_suite(self, monkeypatch):
        from repro.flows.experiments import DEFAULT_SUITE, active_suite

        monkeypatch.delenv("REPRO_FULL_SUITE", raising=False)
        assert active_suite() == DEFAULT_SUITE

    def test_clear_cache(self):
        from repro.flows import clear_cache, flow_for

        first = flow_for("s27")
        clear_cache()
        second = flow_for("s27")
        assert first is not second
        # Determinism: same content even after a cache clear.
        assert first.table6 == second.table6


class TestFlowModes:
    def test_unknown_tgen_mode_rejected(self, s27):
        with pytest.raises(ReproError, match="tgen_mode"):
            run_full_flow(s27, FlowConfig(tgen_mode="quantum"))

    def test_hybrid_mode_runs(self, s27):
        flow = run_full_flow(
            s27,
            FlowConfig(
                tgen_mode="hybrid",
                tgen_max_len=6,  # starve the random phase on purpose
                compaction_sims=10,
                procedure=ProcedureConfig(l_g=64),
            ),
        )
        # The deterministic phase completes coverage on s27.
        assert flow.generated.coverage == 1.0
        assert flow.table6.given_det == 32


class TestProcedureProvenance:
    def test_omega_entries_carry_provenance(self, s27, s27_faults, paper_t):
        result = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=64)
        )
        for entry in result.omega:
            assert 0 <= entry.u < len(paper_t)
            assert 1 <= entry.l_s <= entry.u + 1
            assert entry.row >= -1  # -1 marks the guarantee fallback
            # The assignment's longest subsequence never exceeds l_s.
            assert entry.assignment.max_length <= entry.l_s

    def test_generation_rng_reproducible(self, s27, s27_faults, paper_t):
        cfg = ProcedureConfig(l_g=64, allow_random_weight=True, seed=9)
        result = select_weight_assignments(s27, paper_t, s27_faults, cfg)
        for index, entry in enumerate(result.omega):
            if not entry.assignment.has_random:
                continue
            a = entry.assignment.generate(result.l_g, result.generation_rng(index))
            b = entry.assignment.generate(result.l_g, result.generation_rng(index))
            assert a == b


class TestVerilogEscaping:
    def test_weird_net_names_escaped(self):
        b = CircuitBuilder("weird")
        b.input("a$b")      # legal verilog (with $), fine unescaped
        b.input("3net")     # starts with a digit: must be escaped
        b.and_("module", "a$b", "3net")  # keyword: must be escaped
        b.output("module")
        text = write_verilog(b.build())
        assert "\\3net " in text
        assert "\\module " in text

    def test_dash_in_circuit_name(self):
        b = CircuitBuilder("my-circ")
        b.input("a")
        b.buf("y", "a")
        b.output("y")
        text = write_verilog(b.build())
        assert "module my_circ" in text


class TestCliTradeoff:
    def test_tradeoff_command(self, capsys):
        from repro.cli import main

        assert main(["tradeoff", "s27"]) == 0
        out = capsys.readouterr().out
        assert "f.e." in out
        assert "100.0" in out
