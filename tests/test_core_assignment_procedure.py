"""Tests for weight assignments, the selection procedure, reverse-order
simulation, and reporting."""

from __future__ import annotations

import pytest

from repro.core import (
    ProcedureConfig,
    Weight,
    WeightAssignment,
    build_table6_row,
    reverse_order_simulation,
    select_weight_assignments,
)
from repro.core.procedure import _ls_lengths
from repro.core.report import format_table6
from repro.errors import ProcedureError, WeightError
from repro.sim import FaultSimulator
from repro.tgen import TestSequence
from repro.util.rng import DeterministicRng


class TestWeightAssignment:
    def test_generate_shapes(self):
        wa = WeightAssignment.from_strings(["01", "1"])
        t_g = wa.generate(5)
        assert len(t_g) == 5
        assert t_g.width == 2
        assert t_g.restrict(0) == (0, 1, 0, 1, 0)
        assert t_g.restrict(1) == (1, 1, 1, 1, 1)

    def test_generate_zero_length(self):
        wa = WeightAssignment.from_strings(["0"])
        assert len(wa.generate(0)) == 0

    def test_empty_raises(self):
        with pytest.raises(WeightError):
            WeightAssignment([])

    def test_random_weight_needs_rng(self):
        wa = WeightAssignment.from_strings(["R", "0"])
        assert wa.has_random
        with pytest.raises(WeightError):
            wa.generate(4)
        t_g = wa.generate(4, DeterministicRng(1))
        assert t_g.restrict(1) == (0, 0, 0, 0)

    def test_properties(self):
        wa = WeightAssignment.from_strings(["01", "100", "1"])
        assert wa.width == 3
        assert wa.max_length == 3
        assert not wa.has_random
        assert len(wa.deterministic_weights()) == 3

    def test_equality_hash(self):
        a = WeightAssignment.from_strings(["01", "1"])
        b = WeightAssignment.from_strings(["01", "1"])
        assert a == b and hash(a) == hash(b)
        assert a != WeightAssignment.from_strings(["1", "01"])

    def test_indexing(self):
        wa = WeightAssignment.from_strings(["01", "1"])
        assert wa[0] == Weight.from_string("01")
        assert len(wa) == 2
        assert "01" in str(wa)


class TestLsSchedule:
    def test_dense(self):
        assert _ls_lengths(4, "dense") == [1, 2, 3, 4, 5]

    def test_auto_ends_at_limit(self):
        for u in (0, 3, 9, 50, 300):
            lengths = _ls_lengths(u, "auto")
            assert lengths[-1] == u + 1
            assert lengths == sorted(set(lengths))

    def test_auto_starts_dense(self):
        assert _ls_lengths(9, "auto")[:4] == [1, 2, 3, 4]

    def test_unknown_raises(self):
        with pytest.raises(ProcedureError):
            _ls_lengths(3, "nope")


class TestProcedure:
    def test_covers_all_targets(self, s27, s27_faults, paper_t):
        result = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=100, ls_schedule="dense")
        )
        covered = set()
        for entry in result.omega:
            covered.update(entry.detected)
        assert covered == set(result.target_faults)
        assert len(result.target_faults) == 32

    def test_every_omega_entry_is_useful(self, s27, s27_faults, paper_t):
        result = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=100)
        )
        for entry in result.omega:
            assert entry.detected  # stored only when it detected new faults

    def test_detected_sets_disjoint(self, s27, s27_faults, paper_t):
        result = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=100)
        )
        seen = set()
        for entry in result.omega:
            assert not (set(entry.detected) & seen)
            seen.update(entry.detected)

    def test_l_g_raised_to_sequence_length(self, s27, s27_faults, paper_t):
        result = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=3)
        )
        assert result.l_g == len(paper_t)

    def test_deterministic(self, s27, s27_faults, paper_t):
        cfg = ProcedureConfig(l_g=100)
        a = select_weight_assignments(s27, paper_t, s27_faults, cfg)
        b = select_weight_assignments(s27, paper_t, s27_faults, cfg)
        assert a.assignments == b.assignments

    def test_empty_sequence_raises(self, s27, s27_faults):
        with pytest.raises(ProcedureError):
            select_weight_assignments(s27, TestSequence([]), s27_faults)

    def test_wrong_width_raises(self, s27, s27_faults):
        seq = TestSequence.from_strings(["01", "10"])
        with pytest.raises(ProcedureError, match="width"):
            select_weight_assignments(s27, seq, s27_faults)

    def test_stats_recorded(self, s27, s27_faults, paper_t):
        result = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=100)
        )
        assert result.stats.assignments_tried >= len(result.omega)
        assert result.stats.full_simulations >= len(result.omega)

    def test_ablation_no_sort(self, s27, s27_faults, paper_t):
        cfg = ProcedureConfig(l_g=100, sort_by_matches=False)
        result = select_weight_assignments(s27, paper_t, s27_faults, cfg)
        covered = set()
        for entry in result.omega:
            covered.update(entry.detected)
        assert covered == set(result.target_faults)

    def test_ablation_no_promotion(self, s27, s27_faults, paper_t):
        cfg = ProcedureConfig(l_g=100, promote=False)
        result = select_weight_assignments(s27, paper_t, s27_faults, cfg)
        covered = set()
        for entry in result.omega:
            covered.update(entry.detected)
        assert covered == set(result.target_faults)

    def test_random_weight_allowed(self, s27, s27_faults, paper_t):
        cfg = ProcedureConfig(l_g=100, allow_random_weight=True, seed=5)
        result = select_weight_assignments(s27, paper_t, s27_faults, cfg)
        covered = set()
        for entry in result.omega:
            covered.update(entry.detected)
        assert covered == set(result.target_faults)

    def test_row_cap_still_terminates(self, s27, s27_faults, paper_t):
        cfg = ProcedureConfig(l_g=100, max_rows_per_length=1)
        result = select_weight_assignments(s27, paper_t, s27_faults, cfg)
        covered = set()
        for entry in result.omega:
            covered.update(entry.detected)
        assert covered == set(result.target_faults)

    def test_subsequence_properties(self, s27, s27_faults, paper_t):
        result = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=100)
        )
        assert result.n_subsequences >= 1
        assert 1 <= result.max_subsequence_length <= len(paper_t)


class TestReverseOrder:
    def _procedure(self, s27, s27_faults, paper_t):
        return select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=100)
        )

    def test_kept_covers_targets(self, s27, s27_faults, paper_t):
        result = self._procedure(s27, s27_faults, paper_t)
        ros = reverse_order_simulation(s27, result)
        sim = FaultSimulator(s27)
        covered = set()
        for assignment in ros.kept:
            t_g = assignment.generate(result.l_g)
            covered.update(sim.run(t_g.patterns, list(result.target_faults)).detection_time)
        assert covered == set(result.target_faults)

    def test_kept_plus_dropped_is_omega(self, s27, s27_faults, paper_t):
        result = self._procedure(s27, s27_faults, paper_t)
        ros = reverse_order_simulation(s27, result)
        assert len(ros.kept) + len(ros.dropped) == len(result.omega)

    def test_kept_preserves_generation_order(self, s27, s27_faults, paper_t):
        result = self._procedure(s27, s27_faults, paper_t)
        ros = reverse_order_simulation(s27, result)
        order = [result.assignments.index(a) for a in ros.kept]
        assert order == sorted(order)

    def test_credits_partition_targets(self, s27, s27_faults, paper_t):
        result = self._procedure(s27, s27_faults, paper_t)
        ros = reverse_order_simulation(s27, result)
        credited = [f for faults in ros.detected_by for f in faults]
        assert sorted(credited) == sorted(result.target_faults)


class TestReport:
    def test_table6_row(self, s27, s27_faults, paper_t):
        result = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=100)
        )
        ros = reverse_order_simulation(s27, result)
        row = build_table6_row("s27", paper_t, result, ros)
        assert row.circuit == "s27"
        assert row.given_len == 10
        assert row.given_det == 32
        assert row.n_sequences == ros.n_kept
        assert row.n_fsms <= row.n_subsequences
        assert row.max_length <= row.given_len

    def test_format_table6(self, s27, s27_faults, paper_t):
        result = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=100)
        )
        ros = reverse_order_simulation(s27, result)
        row = build_table6_row("s27", paper_t, result, ros)
        text = format_table6([row])
        assert "s27" in text
        assert "circuit" in text
