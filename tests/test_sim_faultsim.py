"""Tests for the bit-parallel sequential fault simulator.

Includes the golden cross-check: single-fault simulation must agree
with brute-force simulation of an explicitly mutated circuit on the
reference logic simulator.
"""

from __future__ import annotations

import pytest

from repro.circuit import Circuit, CircuitBuilder
from repro.circuit.gates import Gate, GateType
from repro.errors import SimulationError
from repro.sim import (
    Fault,
    FaultSimulator,
    LogicSimulator,
    V0,
    V1,
    VX,
    all_faults,
    collapse_faults,
    detection_times,
)
from repro.util.rng import DeterministicRng


def _mutate(circuit: Circuit, fault: Fault) -> Circuit:
    """Build a faulty copy of ``circuit`` with ``fault`` hard-wired.

    Stem fault: the faulty constant replaces the net for all sinks and
    the POs.  Branch fault: only the one gate pin is rewired.
    """
    const_name = "__fault_const"
    const = Gate(const_name, GateType.CONST1 if fault.stuck else GateType.CONST0, ())
    gates = []
    for net, gate in circuit.gates.items():
        fanins = list(gate.fanins)
        for pin in range(len(fanins)):
            if fault.is_branch:
                if net == fault.gate and pin == fault.pin:
                    fanins[pin] = const_name
            elif fanins[pin] == fault.net:
                fanins[pin] = const_name
        gates.append(Gate(net, gate.gtype, tuple(fanins)))
    gates.append(const)
    outputs = [
        const_name if (not fault.is_branch and out == fault.net) else out
        for out in circuit.outputs
    ]
    return Circuit(circuit.name + "_faulty", gates, outputs)


def _detects_brute_force(circuit, fault, stimulus):
    """First detection time via explicit faulty-circuit simulation."""
    good = LogicSimulator(circuit).run(stimulus)
    bad = LogicSimulator(_mutate(circuit, fault)).run(stimulus)
    for u, (g_out, b_out) in enumerate(zip(good.outputs, bad.outputs)):
        for g, b in zip(g_out, b_out):
            if g in (V0, V1) and b in (V0, V1) and g != b:
                return u
    return None


class TestAgainstBruteForce:
    def test_s27_all_faults_match(self, s27, paper_t):
        faults = all_faults(s27)
        result = FaultSimulator(s27).run(paper_t.patterns, faults)
        for fault in faults:
            expected = _detects_brute_force(s27, fault, paper_t.patterns)
            actual = result.detection_time.get(fault)
            assert actual == expected, f"{fault} expected {expected} got {actual}"

    def test_random_circuit_random_stimulus(self):
        from repro.circuit.synth import SynthSpec, synthesize

        circuit = synthesize(SynthSpec("t", 4, 2, 3, 25, seed=77))
        rng = DeterministicRng(5)
        stimulus = [rng.bits(4) for _ in range(40)]
        faults = collapse_faults(circuit)
        result = FaultSimulator(circuit).run(stimulus, faults)
        for fault in faults[:40]:
            expected = _detects_brute_force(circuit, fault, stimulus)
            assert result.detection_time.get(fault) == expected


class TestResult:
    def test_coverage(self, s27, s27_faults, paper_t):
        result = FaultSimulator(s27).run(paper_t.patterns, s27_faults)
        assert result.coverage == 1.0
        assert result.undetected == ()
        assert result.n_faults == 32

    def test_detected_sorted_by_time(self, s27, s27_faults, paper_t):
        result = FaultSimulator(s27).run(paper_t.patterns, s27_faults)
        times = [result.detection_time[f] for f in result.detected]
        assert times == sorted(times)

    def test_empty_fault_list(self, s27, paper_t):
        result = FaultSimulator(s27).run(paper_t.patterns, [])
        assert result.coverage == 1.0
        assert result.n_faults == 0

    def test_empty_stimulus(self, s27, s27_faults):
        result = FaultSimulator(s27).run([], s27_faults)
        assert len(result.undetected) == 32

    def test_short_stimulus_partial_detection(self, s27, s27_faults, paper_t):
        full = FaultSimulator(s27).run(paper_t.patterns, s27_faults)
        short = FaultSimulator(s27).run(paper_t.patterns[:3], s27_faults)
        assert set(short.detection_time) == {
            f for f, u in full.detection_time.items() if u <= 2
        }


class TestGrouping:
    def test_more_than_63_faults(self, g208):
        # g208 has hundreds of faults -> multiple groups; detection
        # results must be identical to single-group runs.
        faults = collapse_faults(g208)[:100]
        rng = DeterministicRng(3)
        stimulus = [rng.bits(len(g208.inputs)) for _ in range(60)]
        whole = FaultSimulator(g208).run(stimulus, faults)
        piecewise = {}
        sim = FaultSimulator(g208)
        for fault in faults:
            piecewise.update(sim.run(stimulus, [fault]).detection_time)
        assert whole.detection_time == piecewise


class TestDetectsAny:
    def test_fires_on_detectable(self, s27, s27_faults, paper_t):
        assert FaultSimulator(s27).detects_any(paper_t.patterns, s27_faults)

    def test_silent_on_empty_stimulus(self, s27, s27_faults):
        assert not FaultSimulator(s27).detects_any([], s27_faults)

    def test_silent_on_all_x_inputs(self, s27, s27_faults):
        stimulus = [(VX, VX, VX, VX)] * 5
        assert not FaultSimulator(s27).detects_any(stimulus, s27_faults)


class TestRecordLines:
    def test_lines_superset_of_outputs(self, s27, s27_faults, paper_t):
        result = FaultSimulator(s27).run(
            paper_t.patterns, s27_faults, record_lines=True
        )
        # A detected fault must show a discrepancy on at least one line
        # (the PO it was detected at).
        for fault in result.detected:
            assert result.lines[fault], f"{fault} detected but no lines"

    def test_undetected_fault_lines_exclude_pos(self, settable_circuit):
        # A fault whose effect never reaches a PO as a binary
        # discrepancy must not list POs.
        faults = collapse_faults(settable_circuit)
        stimulus = [(V0, V0)] * 4
        result = FaultSimulator(settable_circuit).run(
            stimulus, faults, record_lines=True
        )
        for fault in result.undetected:
            for po in settable_circuit.outputs:
                assert po not in result.lines[fault]


class TestValidation:
    def test_wrong_pattern_width(self, s27, s27_faults):
        with pytest.raises(SimulationError):
            FaultSimulator(s27).run([(V0, V1)], s27_faults)

    def test_invalid_fault_rejected(self, s27):
        from repro.errors import FaultModelError

        with pytest.raises(FaultModelError):
            FaultSimulator(s27).run([], [Fault("nope", 0)])


class TestBranchFaults:
    def test_branch_fault_differs_from_stem(self, s27, paper_t):
        # G8 fans out to G15 and G16; its stem fault and each branch
        # fault are distinct faults with potentially different times.
        stem = Fault("G8", 1)
        br15 = Fault("G8", 1, gate="G15", pin=1)
        br16 = Fault("G8", 1, gate="G16", pin=1)
        result = FaultSimulator(s27).run(paper_t.patterns, [stem, br15, br16])
        # brute-force agreement (already covered above) plus: stem
        # detection implies at least one branch behaves identically or
        # earlier is not required — just check all simulated.
        assert result.n_faults == 3

    def test_dff_input_branch_fault(self):
        # Fault on the D-pin branch of a flip-flop.
        b = CircuitBuilder("c")
        b.input("a")
        b.buf("d", "a")
        b.dff("q", "d")
        b.and_("y", "d", "q")
        b.output("y")
        circuit = b.build()
        fault = Fault("d", 0, gate="q", pin=0)
        stimulus = [(V1,)] * 4
        result = FaultSimulator(circuit).run(stimulus, [fault])
        expected = _detects_brute_force(circuit, fault, stimulus)
        assert result.detection_time.get(fault) == expected


class TestDetectionTimesHelper:
    def test_matches_run(self, s27, s27_faults, paper_t):
        d1 = detection_times(s27, paper_t.patterns, s27_faults)
        d2 = FaultSimulator(s27).run(paper_t.patterns, s27_faults).detection_time
        assert d1 == d2
