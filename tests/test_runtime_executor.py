"""Determinism of the runtime layer's parallel execution.

The hard requirement on :mod:`repro.runtime` is that results are
bit-identical to the serial run for any worker count: fault-group
sharding, batched candidate screening and the full Section-4.2
procedure must all produce exactly what ``jobs=1`` produces.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.circuit import load_circuit
from repro.core import ProcedureConfig, select_weight_assignments
from repro.runtime import RuntimeContext, SerialExecutor, make_executor
from repro.sim import FaultSimulator, collapse_faults
from repro.tgen import generate_test_sequence


@pytest.fixture(scope="module")
def g386():
    return load_circuit("g386")


@pytest.fixture(scope="module")
def g386_setup(g386):
    faults = collapse_faults(g386)
    generated = generate_test_sequence(g386, faults, seed=1, max_len=200)
    return faults, generated.sequence


def test_make_executor_picks_implementation():
    ex = make_executor(1)
    assert isinstance(ex, SerialExecutor)
    assert ex.jobs == 1
    ex2 = make_executor(3)
    assert ex2.jobs == 3
    ex2.close()


def test_parallel_run_matches_serial(g386, g386_setup):
    faults, sequence = g386_setup
    assert len(faults) > 63, "need multiple fault groups for sharding"
    serial = FaultSimulator(g386).run(sequence.patterns, faults)
    with RuntimeContext(jobs=4) as rt:
        parallel = FaultSimulator(g386, runtime=rt).run(
            sequence.patterns, faults
        )
    assert parallel.detection_time == serial.detection_time
    assert parallel.undetected == serial.undetected
    assert parallel.n_faults == serial.n_faults


def test_parallel_run_matches_serial_with_line_recording(g386, g386_setup):
    faults, sequence = g386_setup
    sample = faults[:130]
    serial = FaultSimulator(g386).run(
        sequence.patterns, sample, record_lines=True
    )
    with RuntimeContext(jobs=2) as rt:
        parallel = FaultSimulator(g386, runtime=rt).run(
            sequence.patterns, sample, record_lines=True
        )
    assert parallel.detection_time == serial.detection_time
    assert parallel.lines == serial.lines


def test_detects_any_batch_matches_per_item(g386, g386_setup):
    faults, sequence = g386_setup
    sample = faults[:20]
    stimuli = [
        sequence.patterns,
        sequence.patterns[:3],
        tuple(reversed(sequence.patterns)),
    ]
    sim = FaultSimulator(g386)
    expected = [sim.detects_any(s, sample) for s in stimuli]
    with RuntimeContext(jobs=2) as rt:
        got = FaultSimulator(g386, runtime=rt).detects_any_batch(
            stimuli, sample
        )
    assert got == expected


@pytest.mark.parametrize("name,l_g", [("s27", 128), ("g208", 64)])
def test_procedure_identical_across_worker_counts(name, l_g):
    circuit = load_circuit(name)
    faults = collapse_faults(circuit)
    generated = generate_test_sequence(circuit, faults, seed=1, max_len=300)
    cfg = ProcedureConfig(l_g=l_g)

    serial = select_weight_assignments(
        circuit, generated.sequence, faults, cfg
    )
    with RuntimeContext(jobs=4) as rt:
        parallel = select_weight_assignments(
            circuit, generated.sequence, faults, cfg, runtime=rt
        )

    assert [e.assignment for e in parallel.omega] == [
        e.assignment for e in serial.omega
    ]
    assert [e.detected for e in parallel.omega] == [
        e.detected for e in serial.omega
    ]
    assert [(e.u, e.l_s, e.row) for e in parallel.omega] == [
        (e.u, e.l_s, e.row) for e in serial.omega
    ]
    assert parallel.detection_time == serial.detection_time
    assert asdict(parallel.stats) == asdict(serial.stats)


@pytest.mark.parametrize("name", ["s27", "g208"])
def test_flow_table6_identical_across_worker_counts(name):
    from repro.flows import flow_config_for
    from repro.flows.full_flow import run_full_flow

    cfg = flow_config_for(name, l_g=64 if name != "s27" else 128)
    serial = run_full_flow(name, cfg)
    with RuntimeContext(jobs=4) as rt:
        parallel = run_full_flow(name, cfg, runtime=rt)
    assert parallel.table6 == serial.table6
    assert parallel.procedure.detection_time == serial.procedure.detection_time
    assert parallel.reverse_order.kept == serial.reverse_order.kept
