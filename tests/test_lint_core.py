"""Tests for the shared diagnostics core (registry, report, suppressions)."""

from __future__ import annotations

import pytest

from repro.errors import LintError
from repro.lint import (
    Diagnostic,
    LintReport,
    REGISTRY,
    Rule,
    Severity,
    Suppressions,
    all_rules,
    get_rule,
    make_diagnostic,
    register,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("Warning") is Severity.WARNING
        assert Severity.parse("NOTE") is Severity.NOTE

    def test_parse_unknown(self):
        with pytest.raises(LintError, match="unknown severity"):
            Severity.parse("fatal")

    def test_str(self):
        assert str(Severity.ERROR) == "error"


class TestRegistry:
    def test_ids_are_stable_families(self):
        for rule in all_rules():
            assert rule.rule_id[0] in "CTD"
            assert rule.rule_id[1:].isdigit()

    def test_registry_keyed_by_id(self):
        for rule_id, rule in REGISTRY.items():
            assert rule.rule_id == rule_id

    def test_get_rule(self):
        assert get_rule("C001").name == "undriven-net"
        with pytest.raises(LintError, match="unknown rule ID"):
            get_rule("Z999")

    def test_duplicate_id_rejected(self):
        with pytest.raises(LintError, match="duplicate rule ID"):
            register(Rule("C001", "something-else", Severity.NOTE, "dup"))

    def test_duplicate_name_rejected(self):
        with pytest.raises(LintError, match="duplicate rule name"):
            register(Rule("C999", "undriven-net", Severity.NOTE, "dup"))


class TestDiagnostic:
    def test_format_with_line(self):
        d = Diagnostic("C006", Severity.WARNING, "net 'x' is dead",
                       "a.bench", location="x", line=7)
        assert d.format() == "a.bench:7: warning[C006] net 'x' is dead"

    def test_format_without_line(self):
        d = Diagnostic("T001", Severity.ERROR, "mixed widths", "tpg:s27")
        assert d.format() == "tpg:s27: error[T001] mixed widths"

    def test_make_diagnostic_carries_rule_severity(self):
        d = make_diagnostic(get_rule("C006"), "m", "a")
        assert d.severity is Severity.WARNING
        assert d.rule_id == "C006"


def _report(*specs):
    return LintReport.from_iterable(
        Diagnostic(rule_id, severity, "m", artifact)
        for rule_id, severity, artifact in specs
    )


class TestLintReport:
    def test_counts(self):
        r = _report(("C001", Severity.ERROR, "a"),
                    ("C006", Severity.WARNING, "a"),
                    ("T009", Severity.NOTE, "a"),
                    ("C001", Severity.ERROR, "b"))
        assert len(r) == 4
        assert r.error_count == 2
        assert r.warning_count == 1
        assert r.count(Severity.NOTE) == 1
        assert r.max_severity is Severity.ERROR

    def test_empty_report(self):
        r = LintReport()
        assert len(r) == 0
        assert r.max_severity is None
        assert r.at_least(Severity.NOTE) == ()

    def test_at_least(self):
        r = _report(("C001", Severity.ERROR, "a"),
                    ("C006", Severity.WARNING, "a"),
                    ("T009", Severity.NOTE, "a"))
        assert [d.rule_id for d in r.at_least(Severity.WARNING)] == [
            "C001", "C006"
        ]

    def test_merge_keeps_order_and_counts(self):
        a = _report(("C001", Severity.ERROR, "a"))
        b = LintReport(diagnostics=_report(
            ("C006", Severity.WARNING, "b")).diagnostics,
            suppressed_count=2)
        merged = a.merge(b)
        assert [d.rule_id for d in merged] == ["C001", "C006"]
        assert merged.suppressed_count == 2

    def test_by_rule_groups_in_first_seen_order(self):
        r = _report(("C006", Severity.WARNING, "a"),
                    ("C001", Severity.ERROR, "a"),
                    ("C006", Severity.WARNING, "b"))
        grouped = r.by_rule()
        assert list(grouped) == ["C006", "C001"]
        assert len(grouped["C006"]) == 2

    def test_apply_suppressions(self):
        r = _report(("D104", Severity.WARNING, "repro/runtime/cache.py"),
                    ("D101", Severity.ERROR, "repro/runtime/cache.py"),
                    ("D104", Severity.WARNING, "repro/flows/experiments.py"))
        filtered = r.apply_suppressions(
            Suppressions({"repro/runtime/*": ["D104"]})
        )
        assert [d.rule_id for d in filtered] == ["D101", "D104"]
        assert filtered.suppressed_count == 1

    def test_wildcard_rule_suppression(self):
        r = _report(("C001", Severity.ERROR, "legacy_x"),
                    ("C006", Severity.WARNING, "legacy_x"))
        filtered = r.apply_suppressions(Suppressions({"legacy_*": ["*"]}))
        assert len(filtered) == 0
        assert filtered.suppressed_count == 2

    def test_empty_suppressions_are_noop(self):
        r = _report(("C001", Severity.ERROR, "a"))
        assert r.apply_suppressions(Suppressions()) is r
