"""Deliberately nondeterministic module for the lint tests.

Each construct below violates exactly one D rule; the tests pin the
rule ID, line and message of every finding.  Never import this module.
"""

import os
import random
import time


def pick(options):
    for option in {1, 2, 3}:
        options.append(option)
    return options


def draw():
    return random.random()


def stamp():
    return time.time()


def env_mode():
    return os.getenv("REPRO_MODE")


def collect(acc=[]):
    return acc


def scan(root):
    return [name for name in os.listdir(root)]
