"""Admission control: token bucket, drain gate, bounded queue, shedding.

Everything here runs on an injected fake clock, so rate-limit timing
is exact and the tests never sleep.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.job import QUEUED, SHED, JobSpec
from repro.serve.queue import JobQueue


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def spec(seed=1, priority=4, client="alice"):
    return JobSpec(
        circuit="s27",
        seed=seed,
        tgen_max_len=64,
        compaction_sims=0,
        l_g=32,
        priority=priority,
        client=client,
    )


# -- token bucket ------------------------------------------------------------


def test_bucket_burst_then_exact_retry_after():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=clock)
    assert bucket.take() == 0.0
    assert bucket.take() == 0.0
    retry = bucket.take()
    assert retry == pytest.approx(0.5)  # one token at 2/s
    clock.advance(0.25)
    assert bucket.take() == pytest.approx(0.25)  # still half a token short
    clock.advance(0.5)
    assert bucket.take() == 0.0  # refilled


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=10.0, burst=3, clock=clock)
    clock.advance(1000.0)
    for _ in range(3):
        assert bucket.take() == 0.0
    assert bucket.take() > 0.0


def test_bucket_with_zero_rate_never_refills():
    bucket = TokenBucket(rate_per_s=0.0, burst=1, clock=FakeClock())
    assert bucket.take() == 0.0
    assert bucket.take() == float("inf")


# -- controller --------------------------------------------------------------


def make_controller(clock, capacity=8, rate=1000.0, burst=100):
    return AdmissionController(
        queue_capacity=capacity, rate_per_s=rate, burst=burst, clock=clock
    )


def test_capacity_must_be_positive():
    with pytest.raises(ServeError):
        AdmissionController(queue_capacity=0)


def test_drain_gate_refuses_everything(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    controller = make_controller(FakeClock())
    controller.start_draining()
    decision = controller.admit(spec(), queue)
    assert decision.status == 503 and not decision.admitted
    assert decision.retry_after_s > 0.0
    assert len(queue) == 0  # nothing reached the queue


def test_rate_limit_is_per_client(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    clock = FakeClock()
    controller = make_controller(clock, rate=1.0, burst=1)

    first = controller.admit(spec(seed=1, client="alice"), queue)
    assert first.status == 202
    limited = controller.admit(spec(seed=2, client="alice"), queue)
    assert limited.status == 429
    assert limited.retry_after_s == pytest.approx(1.0, abs=0.05)
    # Another client has its own bucket.
    other = controller.admit(spec(seed=3, client="bob"), queue)
    assert other.status == 202
    # alice recovers once a token accrues.
    clock.advance(1.0)
    again = controller.admit(spec(seed=4, client="alice"), queue)
    assert again.status == 202


def test_dedup_is_200_not_202(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    controller = make_controller(FakeClock())
    assert controller.admit(spec(seed=1), queue).status == 202
    decision = controller.admit(spec(seed=1, priority=9), queue)
    assert decision.status == 200 and decision.admitted
    assert len(queue) == 1


def test_full_queue_sheds_strictly_lower_priority(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    controller = make_controller(FakeClock(), capacity=1)
    low = controller.admit(spec(seed=1, priority=2), queue)
    assert low.status == 202

    urgent = controller.admit(spec(seed=2, priority=8), queue)
    assert urgent.status == 202
    assert urgent.shed is not None and urgent.shed.key == low.job.key
    assert queue.get(low.job.key).state == SHED
    assert queue.get(urgent.job.key).state == QUEUED


def test_full_queue_refuses_equal_or_lower_priority(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    controller = make_controller(FakeClock(), capacity=1)
    assert controller.admit(spec(seed=1, priority=5), queue).status == 202

    refused = controller.admit(spec(seed=2, priority=5), queue)
    assert refused.status == 503 and refused.shed is None
    assert refused.retry_after_s > 0.0
    assert queue.depth() == 1  # nothing displaced, nothing enqueued


def test_shed_victim_may_resubmit_when_room_returns(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    controller = make_controller(FakeClock(), capacity=1)
    low = controller.admit(spec(seed=1, priority=1), queue)
    controller.admit(spec(seed=2, priority=9), queue)  # sheds the low job
    # The high job starts running; the slot frees up.
    queue.claim_next()
    revived = controller.admit(spec(seed=1, priority=1), queue)
    assert revived.status == 202
    assert revived.job.key == low.job.key  # same computation, same key
    assert queue.get(low.job.key).state == QUEUED
