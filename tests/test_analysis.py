"""Tests for testability analysis (SCOAP, COP)."""

from __future__ import annotations

import pytest

from repro.analysis import compute_cop, compute_scoap, detection_probability
from repro.analysis.scoap import INFINITY
from repro.circuit import CircuitBuilder
from repro.sim import Fault


class TestScoapCombinational:
    def _chain(self, depth: int):
        b = CircuitBuilder("chain")
        b.input("a")
        b.input("b")
        prev = "a"
        for k in range(depth):
            name = f"g{k}"
            b.and_(name, prev, "b")
            prev = name
        b.output(prev)
        return b.build()

    def test_pi_controllability_is_one(self, s27):
        measures = compute_scoap(s27)
        for net in s27.inputs:
            assert measures.cc0[net] == 1
            assert measures.cc1[net] == 1

    def test_po_observability_is_zero(self, s27):
        measures = compute_scoap(s27)
        assert measures.co["G17"] == 0

    def test_and_gate_values(self):
        b = CircuitBuilder("and2")
        b.input("a")
        b.input("b")
        b.and_("y", "a", "b")
        b.output("y")
        measures = compute_scoap(b.build())
        assert measures.cc1["y"] == 3  # both inputs to 1: 1+1+1
        assert measures.cc0["y"] == 2  # one input to 0: 1+1
        assert measures.co["a"] == 2   # side input to 1 (1) + gate (1)

    def test_deep_chain_harder_to_control(self):
        shallow = compute_scoap(self._chain(2))
        deep = compute_scoap(self._chain(8))
        assert deep.cc1["g7"] > shallow.cc1["g1"]

    def test_not_gate_swaps(self):
        b = CircuitBuilder("inv")
        b.input("a")
        b.not_("y", "a")
        b.output("y")
        m = compute_scoap(b.build())
        assert m.cc0["y"] == m.cc1["a"] + 1
        assert m.cc1["y"] == m.cc0["a"] + 1

    def test_xor_controllability(self):
        b = CircuitBuilder("x")
        b.input("a")
        b.input("b")
        b.xor("y", "a", "b")
        b.output("y")
        m = compute_scoap(b.build())
        # y=1: one input 1, other 0 -> 1+1+1 = 3; y=0 same by symmetry.
        assert m.cc1["y"] == 3
        assert m.cc0["y"] == 3


class TestScoapSequential:
    def test_flop_adds_sequential_cost(self, s27):
        measures = compute_scoap(s27)
        for flop in s27.flops:
            d_net = s27.gate(flop).fanins[0]
            assert measures.cc0[flop] >= measures.cc0[d_net]
            assert measures.cc0[flop] < INFINITY

    def test_all_s27_nets_controllable_and_observable(self, s27):
        measures = compute_scoap(s27)
        for net in s27.gates:
            assert measures.cc0[net] < INFINITY, net
            assert measures.cc1[net] < INFINITY, net
            assert measures.co[net] < INFINITY, net

    def test_fault_difficulty_finite(self, s27, s27_faults):
        measures = compute_scoap(s27)
        for fault in s27_faults:
            assert measures.fault_difficulty(fault.net, fault.stuck) < INFINITY

    def test_uncontrollable_loop_saturates(self, toggle_circuit):
        # q = q XOR en with no initialization: controllability through
        # the loop never resolves, so values stay saturated.
        measures = compute_scoap(toggle_circuit, max_iterations=10)
        assert measures.cc0["q"] >= INFINITY or measures.cc0["q"] > 100


class TestCop:
    def test_probabilities_in_range(self, s27):
        estimates = compute_cop(s27)
        for net, p in estimates.probability.items():
            assert 0.0 <= p <= 1.0, net
        for net, o in estimates.observability.items():
            assert 0.0 <= o <= 1.0, net

    def test_input_probability_half(self, s27):
        estimates = compute_cop(s27)
        for net in s27.inputs:
            assert estimates.probability[net] == 0.5

    def test_and_probability(self):
        b = CircuitBuilder("and2")
        b.input("a")
        b.input("b")
        b.and_("y", "a", "b")
        b.output("y")
        estimates = compute_cop(b.build())
        assert estimates.probability["y"] == pytest.approx(0.25)

    def test_constants(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.const0("z")
        b.or_("y", "a", "z")
        b.output("y")
        estimates = compute_cop(b.build())
        assert estimates.probability["z"] == 0.0
        assert estimates.probability["y"] == pytest.approx(0.5)

    def test_po_observability_one(self, s27):
        estimates = compute_cop(s27)
        assert estimates.observability["G17"] == 1.0

    def test_deep_and_chain_low_probability(self):
        b = CircuitBuilder("deep")
        inputs = [b.input(f"a{k}") for k in range(6)]
        b.and_("y", *inputs)
        b.output("y")
        estimates = compute_cop(b.build())
        assert estimates.probability["y"] == pytest.approx(0.5**6)

    def test_detection_probability_bounds(self, s27, s27_faults):
        estimates = compute_cop(s27)
        for fault in s27_faults:
            dp = detection_probability(estimates, fault)
            assert 0.0 <= dp <= 1.0

    def test_hard_faults_have_low_estimates(self):
        # A fault behind a deep AND cone (activation needs all-1s) must
        # score below a fault right at a primary output.
        b = CircuitBuilder("deep")
        inputs = [b.input(f"a{k}") for k in range(8)]
        b.and_("m", *inputs)
        b.or_("y", "m", "a0")
        b.output("y")
        estimates = compute_cop(b.build())
        hard = detection_probability(estimates, Fault("m", 0))
        easy = detection_probability(estimates, Fault("y", 0))
        assert hard < easy
