"""Tests for the LFSR and 3-weight baselines."""

from __future__ import annotations

import pytest

from repro.baselines import (
    Lfsr,
    lfsr_bist,
    lfsr_patterns,
    three_weight_assignments,
    three_weight_bist,
)
from repro.baselines.lfsr import PRIMITIVE_TAPS, coverage_curve
from repro.baselines.threeweight import W0, W1, WHALF
from repro.errors import ReproError
from repro.tgen import TestSequence
from repro.util.rng import DeterministicRng


class TestLfsr:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8])
    def test_maximum_length_period(self, width):
        lfsr = Lfsr(width, seed=1)
        seen = {lfsr.state}
        for _ in range((1 << width) - 2):
            lfsr.step()
            assert lfsr.state not in seen, "period shorter than maximal"
            seen.add(lfsr.state)
        lfsr.step()
        assert lfsr.state == 1  # back to the seed

    def test_zero_seed_coerced(self):
        assert Lfsr(8, seed=0).state != 0

    def test_seed_reduced_mod_width(self):
        assert Lfsr(4, seed=0x17).state == 0x7

    def test_unknown_width_raises(self):
        with pytest.raises(ReproError):
            Lfsr(64)

    def test_explicit_taps(self):
        lfsr = Lfsr(3, seed=1, taps=(3, 2))
        assert lfsr.taps == (3, 2)

    def test_bad_tap_raises(self):
        with pytest.raises(ReproError):
            Lfsr(3, taps=(4,))

    def test_bits_deterministic(self):
        assert Lfsr(16, seed=5).bits(64) == Lfsr(16, seed=5).bits(64)

    def test_all_widths_have_valid_taps(self):
        for width, taps in PRIMITIVE_TAPS.items():
            assert max(taps) == width
            assert all(1 <= t <= width for t in taps)

    def test_period_property(self):
        assert Lfsr(8).period == 255


class TestLfsrBist:
    def test_patterns_shape(self):
        patterns = lfsr_patterns(5, 10, seed=3)
        assert len(patterns) == 10
        assert all(len(p) == 5 for p in patterns)

    def test_underperforms_deterministic_at_equal_budget(
        self, s27, s27_faults, paper_t
    ):
        # With the same pattern budget as the paper sequence (10 cycles)
        # the LFSR detects strictly fewer faults than the deterministic
        # sequence's 32/32 — the no-guarantee weakness the paper's
        # introduction attributes to [16]/[17]-style BIST.
        result = lfsr_bist(s27, s27_faults, n_patterns=10, seed=1)
        assert result.coverage < 1.0

    def test_coverage_grows_with_budget(self, s27, s27_faults):
        small = lfsr_bist(s27, s27_faults, n_patterns=5, seed=1)
        large = lfsr_bist(s27, s27_faults, n_patterns=200, seed=1)
        assert large.coverage >= small.coverage

    def test_coverage_curve_monotone(self, s27, s27_faults):
        result = lfsr_bist(s27, s27_faults, n_patterns=100, seed=1)
        curve = coverage_curve(result, n_points=10, length=100)
        covs = [c for _t, c in curve]
        assert covs == sorted(covs)
        assert curve[-1][1] == result.coverage

    def test_coverage_curve_empty(self, s27):
        result = lfsr_bist(s27, [], n_patterns=10)
        assert coverage_curve(result) == []


class TestThreeWeight:
    def test_assignment_computation(self):
        seq = TestSequence.from_strings(["00", "01", "01", "01"])
        assignments = three_weight_assignments(seq, window=2)
        assert len(assignments) == 2
        # Window 1: rows 00, 01 -> input0 all-0 -> W0; input1 mixed -> 0.5
        assert assignments[0].weights == (W0, WHALF)
        # Window 2: rows 01, 01 -> (W0, W1)
        assert assignments[1].weights == (W0, W1)

    def test_window_larger_than_sequence(self):
        seq = TestSequence.from_strings(["01"])
        assignments = three_weight_assignments(seq, window=10)
        assert len(assignments) == 1
        assert assignments[0].weights == (W0, W1)

    def test_bad_window_raises(self):
        seq = TestSequence.from_strings(["01"])
        with pytest.raises(ValueError):
            three_weight_assignments(seq, window=0)

    def test_sampling_respects_weights(self):
        seq = TestSequence.from_strings(["01", "00"])
        assignment = three_weight_assignments(seq, window=2)[0]
        rng = DeterministicRng(3)
        draws = [assignment.sample(rng) for _ in range(50)]
        assert all(d[0] == 0 for d in draws)  # weight 0 held at 0
        assert {d[1] for d in draws} == {0, 1}  # weight 0.5 varies

    def test_bist_end_to_end(self, s27, s27_faults, paper_t):
        result = three_weight_bist(
            s27, paper_t, s27_faults, window=4, n_per_assignment=64, seed=2
        )
        assert 0 < result.coverage <= 1.0

    def test_deterministic(self, s27, s27_faults, paper_t):
        a = three_weight_bist(s27, paper_t, s27_faults, window=4, n_per_assignment=32)
        b = three_weight_bist(s27, paper_t, s27_faults, window=4, n_per_assignment=32)
        assert a.detection_time == b.detection_time
