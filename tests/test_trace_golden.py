"""Golden-trace determinism: the normalized trace is a pure function of
the workload.

The same flow run serially, with ``--jobs 4``, against a warm cache,
and under chaos injection must produce byte-identical normalized span
trees and deterministic event sequences — execution strategy may only
show up in the parts normalization strips (timings, task spans,
runtime events).
"""

from __future__ import annotations

import pytest

from repro.core.procedure import ProcedureConfig
from repro.flows.full_flow import FlowConfig, run_full_flow
from repro.runtime import RuntimeContext
from repro.trace import normalized_json

CFG = FlowConfig(
    seed=1,
    tgen_max_len=500,
    compaction_sims=30,
    procedure=ProcedureConfig(l_g=100),
    synthesize_hardware=True,
)

CHAOS = "crash=0.3,seed=7"


def _traced_flow(circuit, **runtime_kwargs):
    with RuntimeContext(trace=True, **runtime_kwargs) as rt:
        result = run_full_flow(circuit, CFG, runtime=rt)
        root = rt.tracer.finish()
        return result, normalized_json(root, rt.tracer.events)


@pytest.fixture(scope="module")
def serial_golden(s27):
    return _traced_flow(s27)


def test_rerun_is_byte_identical(s27, serial_golden):
    _, golden = serial_golden
    _, again = _traced_flow(s27)
    assert again == golden


def test_parallel_matches_serial(s27, serial_golden):
    result0, golden = serial_golden
    result4, parallel = _traced_flow(s27, jobs=4)
    assert parallel == golden
    assert result4.table6 == result0.table6


def test_cold_then_warm_cache_match_serial(s27, serial_golden, tmp_path):
    _, golden = serial_golden
    cache = tmp_path / "cache"
    _, cold = _traced_flow(s27, cache_dir=cache)
    _, warm = _traced_flow(s27, cache_dir=cache)
    assert cold == golden
    assert warm == golden


def test_chaos_injection_matches_serial(s27, serial_golden):
    result0, golden = serial_golden
    result_chaos, chaotic = _traced_flow(s27, jobs=2, chaos=CHAOS)
    assert chaotic == golden
    assert result_chaos.table6 == result0.table6


def test_raw_traces_do_differ_before_normalization(s27, tmp_path):
    """Sanity: normalization is doing real work — raw traces from a
    cold-cache and warm-cache run differ (cache events, counters)."""
    from repro.trace import trace_payload

    cache = tmp_path / "cache"
    with RuntimeContext(trace=True, cache_dir=cache) as rt:
        run_full_flow(s27, CFG, runtime=rt)
        cold_events = [e.kind for e in rt.tracer.events]
        rt.tracer.finish()
    with RuntimeContext(trace=True, cache_dir=cache) as rt:
        run_full_flow(s27, CFG, runtime=rt)
        warm_events = [e.kind for e in rt.tracer.events]
        root = rt.tracer.finish()
    assert "cache_miss" in cold_events
    assert "cache_hit" in warm_events
    assert cold_events != warm_events
    # and the full payload carries the runtime detail normalization drops
    payload = trace_payload(root, rt.tracer.events)
    assert any(e["kind"] == "cache_hit" for e in payload["events"])


def test_span_tree_attributes_every_flow_phase(s27, serial_golden):
    """The normalized tree names each Section-4 phase exactly once."""
    import json

    _, golden = serial_golden
    tree = json.loads(golden)["spans"]

    counts = {}

    def walk(node):
        counts[node["name"]] = counts.get(node["name"], 0) + 1
        for child in node["children"]:
            walk(child)

    walk(tree)
    for phase in (
        "full_flow",
        "test_generation",
        "compaction",
        "static_compaction",
        "procedure",
        "initial_simulation",
        "reverse_order",
        "reverse_order_sim",
        "hardware",
    ):
        assert counts.get(phase) == 1, phase
    # the selection loop traces each target time u
    assert counts.get("target_time", 0) >= 1
    assert counts.get("mine_candidates", 0) >= 1
