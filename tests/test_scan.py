"""Tests for the scan-design substrate: insertion, session expansion,
and combinational scan ATPG."""

from __future__ import annotations

import pytest

from repro.errors import NetlistError, SimulationError
from repro.scan import (
    ScanTest,
    expand_scan_session,
    insert_scan,
    scan_atpg,
    scan_cost,
)
from repro.scan.atpg import scan_equivalent_model
from repro.scan.session import capture_cycle_indices
from repro.sim import LogicSimulator, V0, V1


class TestInsertion:
    def test_structure(self, s27):
        design = insert_scan(s27)
        assert design.chain == s27.flops
        assert design.circuit.inputs[-2:] == ("scan_in", "scan_en")
        assert design.circuit.outputs[-1] == "scan_out"

    def test_cost(self, s27):
        design = insert_scan(s27)
        cost = scan_cost(s27, design)
        assert cost.cells == 3
        assert cost.extra_gates == 3 * 3 + 1 + 1  # muxes + inverter + out buf
        assert cost.extra_ports == 3

    def test_functional_mode_unchanged(self, s27, paper_t):
        # With scan_en = 0, the scan circuit behaves like the original.
        design = insert_scan(s27)
        plain = LogicSimulator(s27).run(paper_t.patterns)
        scan_stim = [row + (V0, V0) for row in paper_t.patterns]
        scanned = LogicSimulator(design.circuit).run(scan_stim)
        for a, b in zip(plain.outputs, scanned.outputs):
            assert a == b[: len(a)]

    def test_shift_loads_state(self, s27):
        # Shift 1,0,1 into the chain, then inspect the state.
        design = insert_scan(s27)
        n = design.chain_length
        target = (1, 0, 1)
        stim = []
        for cycle in range(n):
            stim.append((V0, V0, V0, V0) + (target[n - 1 - cycle], V1))
        stim.append((V0, V0, V0, V0) + (V0, V0))
        trace = LogicSimulator(design.circuit).run(stim)
        # State at the last cycle (after n shifts) must equal target.
        assert trace.states[n] == target

    def test_shift_out_observes_state(self, s27):
        design = insert_scan(s27)
        n = design.chain_length
        # Load 1,1,1 then shift out while feeding zeros.
        stim = []
        for _ in range(n):
            stim.append((V0, V0, V0, V0) + (V1, V1))
        for _ in range(n):
            stim.append((V0, V0, V0, V0) + (V0, V1))
        trace = LogicSimulator(design.circuit).run(stim)
        scan_out_index = len(design.circuit.outputs) - 1
        observed = [trace.outputs[n + k][scan_out_index] for k in range(n)]
        assert observed == [V1] * n

    def test_no_flops_rejected(self, comb_circuit):
        with pytest.raises(NetlistError):
            insert_scan(comb_circuit)

    def test_name_collision_rejected(self, s27):
        with pytest.raises(NetlistError):
            insert_scan(s27, scan_in="G0")


class TestSession:
    def test_expansion_shape(self, s27):
        design = insert_scan(s27)
        tests = [ScanTest((1, 0, 1), (0, 1, 0, 1))]
        session = expand_scan_session(design, tests)
        # n shift + 1 capture + n flush.
        assert len(session) == 3 + 1 + 3
        assert session.width == 6

    def test_capture_indices(self, s27):
        design = insert_scan(s27)
        assert capture_cycle_indices(design, 3) == [3, 7, 11]

    def test_capture_applies_state_and_pattern(self, s27):
        design = insert_scan(s27)
        test = ScanTest((1, 1, 0), (1, 0, 1, 0))
        session = expand_scan_session(design, [test])
        trace = LogicSimulator(design.circuit).run(session.patterns)
        capture = capture_cycle_indices(design, 1)[0]
        assert trace.states[capture] == test.state

    def test_bad_vector_sizes(self, s27):
        design = insert_scan(s27)
        with pytest.raises(SimulationError):
            expand_scan_session(design, [ScanTest((1,), (0, 0, 0, 0))])
        with pytest.raises(SimulationError):
            expand_scan_session(design, [ScanTest((0, 0, 0), (1,))])


class TestScanEquivalentModel:
    def test_flops_become_inputs(self, s27):
        model, pseudo_po = scan_equivalent_model(s27)
        for flop in s27.flops:
            assert model.gate(flop).gtype.value == "INPUT"
        assert set(pseudo_po) == set(s27.flops)
        assert not model.flops

    def test_next_state_nets_observable(self, s27):
        model, pseudo_po = scan_equivalent_model(s27)
        for d_net in pseudo_po.values():
            assert model.is_output(d_net)


class TestScanAtpg:
    def test_s27_full_supported_coverage(self, s27):
        result = scan_atpg(s27)
        assert not result.aborted
        assert not result.untestable
        assert len(result.unsupported) == 2  # the DFF D-pin branch faults
        assert len(result.detected) == 30

    def test_session_confirms_combinational_claims(self, s27):
        result = scan_atpg(s27)
        assert set(result.detected) <= set(result.session_detected)

    def test_session_cycles_accounting(self, s27):
        result = scan_atpg(s27)
        n = result.design.chain_length
        expected = len(result.tests) * (n + 1) + n
        assert result.session_cycles == expected

    def test_untestable_faults_are_proofs(self):
        # The absorption redundancy from the ATPG tests, now sequential:
        # y = OR(a, AND(a, b)) feeding a flop.
        from repro.circuit import CircuitBuilder
        from repro.sim import Fault

        b = CircuitBuilder("red")
        b.input("a")
        b.input("b")
        b.and_("m", "a", "b")
        b.or_("y", "a", "m")
        b.dff("q", "y")
        b.not_("z", "q")
        b.output("z")
        circuit = b.build()
        result = scan_atpg(circuit, [Fault("m", 0)])
        assert result.untestable == (Fault("m", 0),)

    def test_coverage_property(self, s27):
        result = scan_atpg(s27)
        assert result.coverage == 1.0  # all supported faults detected
