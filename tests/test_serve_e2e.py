"""End-to-end acceptance test for the campaign server.

The scenario the serve subsystem exists for, run against real
processes:

1. boot ``repro serve`` as a subprocess on an ephemeral port;
2. submit eight mixed-priority jobs over HTTP;
3. SIGTERM the server in the middle of the campaign — it drains
   gracefully (finishes the in-flight job, journals the rest) and
   exits 0;
4. restart the server on the same state directory — every remaining
   job is requeued and completes;
5. every result is byte-identical to running the same flow directly
   via :func:`run_full_flow`;
6. a rate-limited client observes 429 with a ``Retry-After`` and,
   after backing off, loses none of its accepted jobs.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import RateLimited
from repro.flows.full_flow import run_full_flow
from repro.serve import ServeClient, flow_result_payload, render_result
from repro.serve.job import JobSpec

REPO = Path(__file__).resolve().parent.parent

#: Eight jobs, every priority band represented, seeds distinct so no
#: two jobs dedup onto each other.
CAMPAIGN = [
    JobSpec(
        circuit="s27",
        seed=seed,
        tgen_max_len=512,
        compaction_sims=16,
        l_g=128,
        priority=priority,
        client=client,
    )
    for seed, priority, client in [
        (1, 0, "alice"),
        (2, 9, "alice"),
        (3, 4, "bob"),
        (4, 7, "bob"),
        (5, 2, "carol"),
        (6, 5, "carol"),
        (7, 8, "alice"),
        (8, 1, "bob"),
    ]
]


def start_server(state_dir: Path, *extra: str) -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--state-dir",
            str(state_dir),
            "--port",
            "0",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # The ready line is printed (and flushed) once the port is bound:
    #   repro-serve: listening on http://127.0.0.1:NNNNN (state: ...)
    line = process.stdout.readline()
    assert "listening on http://" in line, f"unexpected boot line: {line!r}"
    url = line.split("listening on ")[1].split(" ")[0]
    return process, url


def stop_server(process) -> str:
    process.send_signal(signal.SIGTERM)
    out, _ = process.communicate(timeout=120)
    assert process.returncode == 0, f"server exited {process.returncode}:\n{out}"
    return out


def test_campaign_survives_sigterm_and_restart(tmp_path):
    state = tmp_path / "state"
    process, url = start_server(state)
    try:
        client = ServeClient(url)
        keys = []
        for spec in CAMPAIGN:
            record = client.submit(spec)
            assert record["created"] is True
            keys.append(record["key"])
        assert len(set(keys)) == len(CAMPAIGN)

        # Let the campaign get genuinely mid-flight: at least one job
        # done, at least one still waiting.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            health = client.healthz()
            done = health["jobs"].get("done", 0)
            if done >= 1 and health["queue_depth"] >= 1:
                break
            if done == len(CAMPAIGN):
                break  # machine too fast to catch mid-run; still valid
            time.sleep(0.02)

        out = stop_server(process)
        assert "drained cleanly" in out
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup only
            process.kill()

    # -- restart on the same state directory ----------------------------
    process, url = start_server(state)
    try:
        client = ServeClient(url)
        # No accepted job was dropped by the kill: all eight are known.
        assert {j["key"] for j in client.jobs()} == set(keys)

        records = client.wait_all(keys, timeout_s=300.0)
        assert {r["state"] for r in records.values()} == {"done"}

        # Byte-identity: each served result equals the same flow run
        # directly in this process, rendered canonically.
        for spec, key in zip(CAMPAIGN, keys):
            served = client.result_bytes(key)
            direct = run_full_flow(spec.circuit, spec.flow_config())
            assert served == render_result(flow_result_payload(direct)), (
                f"served result for seed {spec.seed} diverged"
            )

        metrics = client.metrics()
        assert metrics["counters"]["requeued"] >= 1  # the restart resumed work
    finally:
        stop_server(process) if process.poll() is None else None


def test_multiworker_campaign_survives_sigkill_and_restart(tmp_path):
    """The supervised fleet under the harshest exit: SIGKILL the whole
    server mid-campaign (no drain, no atexit — leases and shard
    journals are all that survive), restart on the same state dir, and
    every job still converges byte-identically."""
    state = tmp_path / "state"
    specs = CAMPAIGN[:4]
    process, url = start_server(
        state, "--workers", "2", "--lease-ttl", "10", "--heartbeat-timeout", "5"
    )
    try:
        client = ServeClient(url)
        keys = [client.submit(spec)["key"] for spec in specs]
        health = client.healthz()
        assert [w["name"] for w in health["workers"]] == ["w0", "w1"]

        # Catch the campaign genuinely mid-flight, then pull the plug.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            jobs = client.healthz()["jobs"]
            if jobs.get("done", 0) >= 1 and jobs.get("done", 0) < len(specs):
                break
            time.sleep(0.02)
        process.kill()  # SIGKILL: workers are orphaned, nothing drains
        process.communicate(timeout=60)
        assert process.returncode != 0
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup only
            process.kill()

    process, url = start_server(
        state, "--workers", "2", "--lease-ttl", "10", "--heartbeat-timeout", "5"
    )
    try:
        client = ServeClient(url)
        # The shard merge reconstructed every accepted job exactly once.
        listed = client.jobs()
        assert sorted(j["key"] for j in listed) == sorted(keys)

        records = client.wait_all(keys, timeout_s=300.0)
        assert {r["state"] for r in records.values()} == {"done"}
        for spec, key in zip(specs, keys):
            served = client.result_bytes(key)
            direct = run_full_flow(spec.circuit, spec.flow_config())
            assert served == render_result(flow_result_payload(direct)), (
                f"served result for seed {spec.seed} diverged after SIGKILL"
            )
        metrics = client.metrics()
        assert metrics["queue"]["active_leases"] == 0
    finally:
        out = stop_server(process) if process.poll() is None else ""
        assert "Traceback" not in out


def test_optimize_job_result_matches_direct_search(tmp_path):
    """A ``task="optimize"`` job's stored result is byte-identical to
    running :func:`repro.optimize.run_optimize` directly on the same
    spec — the same canonical-bytes promise flow jobs make."""
    from repro.optimize import run_optimize
    from repro.serve.results import optimize_result_payload

    spec = JobSpec(
        circuit="s27",
        task="optimize",
        seed=1,
        tgen_max_len=64,
        compaction_sims=0,
        l_g=32,
        population=4,
        generations=1,
    )
    process, url = start_server(tmp_path / "state")
    try:
        client = ServeClient(url)
        record = client.submit(spec)
        assert record["created"] is True
        key = record["key"]
        records = client.wait_all([key], timeout_s=120.0)
        assert records[key]["state"] == "done"
        served = client.result_bytes(key)
    finally:
        out = stop_server(process) if process.poll() is None else ""
        assert "Traceback" not in out

    direct = run_optimize(spec.circuit, spec.optimize_config())
    assert served == render_result(optimize_result_payload(direct))


def test_rate_limited_client_backs_off_and_loses_nothing(tmp_path):
    process, url = start_server(
        tmp_path / "state", "--rate", "2", "--burst", "2"
    )
    try:
        client = ServeClient(url, client_id="flood")
        specs = [
            JobSpec(
                circuit="s27",
                seed=100 + i,
                tgen_max_len=256,
                compaction_sims=4,
                l_g=64,
                client="flood",
            )
            for i in range(6)
        ]
        limited = 0
        accepted = []
        for spec in specs:
            try:
                accepted.append(client.submit(spec)["key"])
            except RateLimited as exc:
                limited += 1
                assert exc.status == 429
                assert exc.retry_after_s > 0.0
        assert limited >= 1, "burst of 6 at rate 2/s never hit the limiter"

        # The raw header is machine-readable on the wire, not just in
        # the JSON body.
        status, headers, _ = client._request(
            "POST", "/jobs", specs[-1].to_dict()
        )
        if status == 429:
            assert int(headers["retry-after"]) >= 1

        # Backing off per Retry-After, everything is eventually
        # accepted — and nothing accepted is ever dropped.
        keys = list(accepted)
        for spec in specs:
            record = client.submit_with_backoff(spec, max_wait_s=30.0)
            keys.append(record["key"])
        keys = sorted(set(keys))
        assert len(keys) == len(specs)

        records = client.wait_all(keys, timeout_s=120.0)
        assert {r["state"] for r in records.values()} == {"done"}
    finally:
        out = stop_server(process) if process.poll() is None else ""
        assert "Traceback" not in out
