"""Exact reproduction of the paper's running example (Sections 2-4).

These tests pin the implementation to the numbers printed in the paper:
Table 1 (the s27 test sequence), Table 2 (the weighted sequence), the
Section-2 match counts, the Section-3 mining example, Table 3 (the
three-weight FSM), and Tables 4-5 (the weight set and candidate sets).
"""

from __future__ import annotations

import pytest

from repro.core import Weight, WeightAssignment, mine_weight
from repro.core.candidates import candidate_sets
from repro.core.weight_set import WeightSet
from repro.hw.fsm import build_weight_fsms
from repro.sim import all_faults, collapse_faults, detection_times


class TestTable1:
    """The deterministic sequence of Table 1 detects all of s27."""

    def test_collapsed_fault_count_is_32(self, s27):
        # The paper enumerates the faults of s27 as f_0 .. f_31.
        assert len(collapse_faults(s27)) == 32

    def test_uncollapsed_fault_count_is_52(self, s27):
        assert len(all_faults(s27)) == 52

    def test_sequence_detects_all_faults(self, s27, s27_faults, paper_t):
        det = detection_times(s27, paper_t.patterns, s27_faults)
        assert len(det) == 32

    def test_two_faults_detected_at_time_9(self, s27, s27_faults, paper_t):
        # "Two faults are detected at time unit 9, f10 and f12."
        det = detection_times(s27, paper_t.patterns, s27_faults)
        assert sum(1 for u in det.values() if u == 9) == 2

    def test_last_detection_is_time_9(self, s27, s27_faults, paper_t):
        det = detection_times(s27, paper_t.patterns, s27_faults)
        assert max(det.values()) == 9

    def test_restrictions_match_paper(self, paper_t):
        # "T_0 = (0101011001), T_1 = (1010100000)"
        assert "".join(map(str, paper_t.restrict(0))) == "0101011001"
        assert "".join(map(str, paper_t.restrict(1))) == "1010100000"


class TestSection2MatchCounts:
    """The match counts n_m quoted throughout Section 2."""

    @pytest.mark.parametrize(
        "input_index, alpha, expected",
        [
            (0, "1", 5),     # α=1 matches T_0 at 5 time units
            (0, "01", 8),    # α=01 matches T_0 at 8 time units
            (0, "100", 7),   # α=100 matches T_0 at 7 time units
            (1, "0", 7),     # α=0 matches T_1 at 7 time units
            (1, "00", 7),
            (1, "000", 7),
            (2, "100", 6),   # α=100 matches T_2 at 6 time units
            (2, "01", 5),    # second-best for input 2
            (3, "1", 7),     # α=1 matches T_3 at 7 time units
            (3, "100", 7),   # second-best for input 3
        ],
    )
    def test_match_count(self, paper_t, input_index, alpha, expected):
        weight = Weight.from_string(alpha)
        assert weight.match_count(paper_t.restrict(input_index)) == expected

    @pytest.mark.parametrize(
        "input_index, alpha, u",
        [
            (0, "1", 9),
            (0, "01", 9),
            (0, "100", 9),
            (1, "0", 9),
            (2, "100", 9),
            (3, "1", 9),
        ],
    )
    def test_perfect_tail_matches_at_9(self, paper_t, input_index, alpha, u):
        weight = Weight.from_string(alpha)
        assert weight.matches_tail(paper_t.restrict(input_index), u)


class TestTable2:
    """The weighted sequence generated from weights {01, 0, 100, 1}."""

    EXPECTED = [
        "0011", "1001", "0001", "1011", "0001", "1001",
        "0011", "1001", "0001", "1011", "0001", "1001",
    ]

    def test_weighted_sequence_matches_table2(self):
        assignment = WeightAssignment.from_strings(["01", "0", "100", "1"])
        t_g = assignment.generate(12)
        assert list(t_g.to_strings()) == self.EXPECTED

    def test_weighted_sequence_detects_f10_plus_eight(
        self, s27, s27_faults, paper_t
    ):
        # "This sequence detects f10 as well as eight additional faults."
        assignment = WeightAssignment.from_strings(["01", "0", "100", "1"])
        t_g = assignment.generate(12)
        det = detection_times(s27, t_g.patterns, s27_faults)
        assert len(det) == 9


class TestSection3Mining:
    """The mining example of Section 3: u = 8, L_S = 4."""

    def test_input0_mines_0110(self, paper_t):
        assert mine_weight(paper_t.restrict(0), 8, 4) == Weight.from_string("0110")

    def test_input1_mines_0000(self, paper_t):
        assert mine_weight(paper_t.restrict(1), 8, 4) == Weight.from_string("0000")

    def test_input2_mines_0100(self, paper_t):
        assert mine_weight(paper_t.restrict(2), 8, 4) == Weight.from_string("0100")

    def test_input3_same_as_input0(self, paper_t):
        assert mine_weight(paper_t.restrict(3), 8, 4) == mine_weight(
            paper_t.restrict(0), 8, 4
        )

    def test_mined_weight_reproduces_tail(self, paper_t):
        # "Repeating α, we obtain (011001100...) which matches T_0
        # perfectly at time units 5 to 8."
        weight = mine_weight(paper_t.restrict(0), 8, 4)
        expansion = weight.expand(9)
        t_0 = paper_t.restrict(0)
        for u in range(5, 9):
            assert expansion[u] == t_0[u]


class TestTable3Fsm:
    """The FSM of Table 3 producing 00010, 01011 and 11001."""

    def test_single_fsm_with_three_outputs(self):
        weights = [Weight.from_string(s) for s in ("00010", "01011", "11001")]
        fsms = build_weight_fsms(weights)
        assert len(fsms) == 1
        assert fsms[0].length == 5
        assert fsms[0].n_outputs == 3

    def test_transition_table_matches_paper(self):
        weights = [Weight.from_string(s) for s in ("00010", "01011", "11001")]
        fsm = build_weight_fsms(weights)[0]
        # Table 3 rows (A..E -> 0..4): outputs z1, z2, z3 per state.
        paper_rows = {
            0: (0, 0, 1),
            1: (0, 1, 1),
            2: (0, 0, 0),
            3: (1, 1, 0),
            4: (0, 1, 1),
        }
        for state, next_state, outputs in fsm.transition_table():
            assert next_state == (state + 1) % 5
            assert outputs == paper_rows[state]

    def test_three_state_bits(self):
        weights = [Weight.from_string(s) for s in ("00010", "01011", "11001")]
        fsm = build_weight_fsms(weights)[0]
        # ceil(log2 5) = 3 state variables, 8 states, 5 reachable.
        assert fsm.n_state_bits == 3
        assert fsm.n_unreachable_states == 3


class TestTables4And5:
    """The weight set S of Table 4 and the candidate sets A_i of Table 5."""

    TABLE4 = [
        "0", "1", "00", "10", "01", "11", "000", "100",
        "010", "110", "001", "101", "011", "111",
    ]

    def _table4_set(self) -> WeightSet:
        weights = WeightSet()
        for text in self.TABLE4:
            weights.add(Weight.from_string(text))
        return weights

    def test_candidate_sets_at_u9(self, paper_t):
        # Table 5: A_0 = [01(8), 100(7), 1(5)], A_1 = [0(7), 00(7),
        # 000(7)], A_2 = [100(6), 01(5), 1(4)], A_3 = [1(7), 100(7),
        # 01(6)].
        cands = candidate_sets(paper_t, 9, self._table4_set(), 3)
        expected = [
            [("01", 8), ("100", 7), ("1", 5)],
            [("0", 7), ("00", 7), ("000", 7)],
            [("100", 6), ("01", 5), ("1", 4)],
            [("1", 7), ("100", 7), ("01", 6)],
        ]
        assert len(cands) == 4
        for a_i, exp in zip(cands, expected):
            got = [(str(w), n) for w, n in a_i]
            assert got == exp

    def test_row0_is_the_section2_assignment(self, paper_t):
        # "we select the weight assignment based on the subsequences
        # 01, 0, 100 and 1"
        cands = candidate_sets(paper_t, 9, self._table4_set(), 3)
        row0 = [str(a_i[0][0]) for a_i in cands]
        assert row0 == ["01", "0", "100", "1"]

    def test_row1_is_the_second_best_assignment(self, paper_t):
        # "the weight assignment based on the subsequences 100, 00, 01
        # and 100"
        cands = candidate_sets(paper_t, 9, self._table4_set(), 3)
        row1 = [str(a_i[1][0]) for a_i in cands]
        assert row1 == ["100", "00", "01", "100"]
