"""ShardedJournal: per-writer shards, deterministic merge, torn writes.

The multi-worker serve layer journals each owner's job transitions
into its own single-writer shard and merges them on restart.  These
tests pin the merge algebra down in isolation:

* per key, the highest ``version`` wins across shards; the shard name
  is a pure tie-break, so the merge is a function of the on-disk bytes
  alone (never of iteration order);
* a torn write (chaos ``journal_tear``) leaves the shard at its
  previous consistent state and is counted, not raised;
* ``clear`` removes every shard; ``record_many`` compacts a merged
  view into one journal atomically.
"""

from __future__ import annotations

import pytest

from repro.resilience.chaos import ChaosSpec
from repro.resilience.journal import CheckpointJournal, CheckpointWarning
from repro.resilience.shards import ShardedJournal


def test_record_routes_to_named_shard_files(tmp_path):
    shards = ShardedJournal(tmp_path)
    assert shards.record("w0", "a", {"version": 1, "x": "w0"})
    assert shards.record("w1", "b", {"version": 1, "x": "w1"})
    assert shards.shard_names() == ["w0", "w1"]
    assert (tmp_path / "shard-w0.json").exists()
    assert (tmp_path / "shard-w1.json").exists()


def test_merge_picks_highest_version_per_key(tmp_path):
    shards = ShardedJournal(tmp_path)
    shards.record("w0", "job", {"version": 1, "state": "running"})
    shards.record("w1", "job", {"version": 3, "state": "done"})
    shards.record("w2", "job", {"version": 2, "state": "queued"})
    merged = shards.merged()
    assert merged == {"job": {"version": 3, "state": "done"}}


def test_merge_tie_breaks_on_shard_name_deterministically(tmp_path):
    shards = ShardedJournal(tmp_path)
    shards.record("w0", "job", {"version": 5, "state": "from-w0"})
    shards.record("w1", "job", {"version": 5, "state": "from-w1"})
    # Equal versions: the lexicographically larger shard name wins —
    # an arbitrary but *stable* rule, a function of the bytes on disk.
    assert shards.merged()["job"]["state"] == "from-w1"
    # A fresh reader over the same directory agrees.
    assert ShardedJournal(tmp_path).merged()["job"]["state"] == "from-w1"


def test_merge_unions_disjoint_keys(tmp_path):
    shards = ShardedJournal(tmp_path)
    shards.record("w0", "a", {"version": 1})
    shards.record("w0", "b", {"version": 2})
    shards.record("w1", "c", {"version": 1})
    assert sorted(shards.merged()) == ["a", "b", "c"]


def test_missing_version_ranks_as_zero(tmp_path):
    shards = ShardedJournal(tmp_path)
    shards.record("w0", "job", {"state": "no-version"})
    shards.record("w1", "job", {"version": 1, "state": "stamped"})
    assert shards.merged()["job"]["state"] == "stamped"


def test_torn_write_is_counted_and_leaves_previous_state(tmp_path):
    # journal_tear=1.0 tears every shard write deterministically.
    shards = ShardedJournal(tmp_path, chaos=ChaosSpec(journal_tear=1.0))
    assert shards.record("w0", "job", {"version": 1}) is False
    assert shards.tears == 1
    assert shards.merged() == {}  # nothing ever became durable
    # Pre-existing consistent state survives later torn writes.
    clean = ShardedJournal(tmp_path)
    clean.record("w0", "job", {"version": 1, "state": "running"})
    assert shards.record("w0", "job", {"version": 2, "state": "done"}) is False
    assert shards.tears == 2
    assert ShardedJournal(tmp_path).merged()["job"]["state"] == "running"


def test_corrupt_shard_is_ignored_not_fatal(tmp_path):
    shards = ShardedJournal(tmp_path)
    shards.record("w0", "job", {"version": 1, "state": "running"})
    (tmp_path / "shard-w1.json").write_text("{not json", encoding="utf-8")
    with pytest.warns(CheckpointWarning):
        merged = shards.merged()
    assert merged == {"job": {"version": 1, "state": "running"}}


def test_clear_removes_all_shards(tmp_path):
    shards = ShardedJournal(tmp_path)
    shards.record("w0", "a", {"version": 1})
    shards.record("w1", "b", {"version": 1})
    assert shards.clear() == 2
    assert shards.shard_names() == []
    assert shards.merged() == {}


def test_record_many_compacts_merged_state_atomically(tmp_path):
    # The restart path: shards merge into the main journal in a single
    # atomic rewrite, then the shards vanish.
    shards = ShardedJournal(tmp_path / "shards")
    shards.record("w0", "a", {"version": 2, "state": "done"})
    shards.record("w1", "b", {"version": 1, "state": "queued"})
    main = CheckpointJournal(tmp_path / "journal.json")
    main.record("a", {"version": 1, "state": "running"})

    merged = shards.merged()
    main.record_many(merged)
    shards.clear()

    compacted = CheckpointJournal(tmp_path / "journal.json")
    assert compacted.get("a") == {"version": 2, "state": "done"}
    assert compacted.get("b") == {"version": 1, "state": "queued"}
    assert shards.shard_names() == []
