"""A RuntimeContext is reusable across flows in one process.

The serve scheduler keeps one warm context per execution budget and
runs many jobs through it; these are the regression tests for that
contract: two sequential ``run_full_flow`` calls under a single
context produce bit-identical results, and ``reset_stats`` separates
their accounting without rebuilding the worker pool.
"""

from __future__ import annotations

from repro.flows.full_flow import FlowConfig, run_full_flow
from repro.runtime import RuntimeContext
from repro.trace.span import Tracer

def small_cfg():
    from repro.core.procedure import ProcedureConfig

    return FlowConfig(
        seed=1,
        tgen_max_len=256,
        compaction_sims=8,
        procedure=ProcedureConfig(l_g=64),
    )


def summarize(flow):
    # The serve layer's canonical projection: everything a client
    # consumes, nothing machine-dependent — ideal for bit-comparison.
    from repro.serve.results import flow_result_payload

    return flow_result_payload(flow)


def test_two_sequential_flows_bit_identical_with_separated_stats():
    cfg = small_cfg()
    with RuntimeContext(jobs=2) as runtime:
        first = run_full_flow("s27", cfg, runtime=runtime)
        first_stats = runtime.stats.snapshot()
        assert first_stats["full_simulations"] > 0

        stats = runtime.reset_stats()
        assert stats is runtime.stats  # reset in place, not replaced
        assert runtime.stats.snapshot()["full_simulations"] == 0
        assert runtime.stats.jobs == runtime.executor.jobs

        second = run_full_flow("s27", cfg, runtime=runtime)
        second_stats = runtime.stats.snapshot()

    assert summarize(first) == summarize(second)
    # Same work, separately accounted: the second flow's counters are
    # its own, not a continuation of the first flow's.
    assert second_stats["full_simulations"] == first_stats["full_simulations"]

    # And both match a plain direct run — the context never changes
    # results, whether fresh or reused.
    direct = run_full_flow("s27", small_cfg())
    assert summarize(direct) == summarize(first)


def test_reset_stats_keeps_executor_cache_journal_wired(tmp_path):
    with RuntimeContext(jobs=1, cache_dir=tmp_path / "cache") as runtime:
        stats = runtime.stats
        assert runtime.executor.stats is stats
        assert runtime.cache.stats is stats
        assert runtime.journal.stats is stats
        run_full_flow("s27", small_cfg(), runtime=runtime)
        assert stats.cache_stores > 0

        runtime.reset_stats()
        # The same objects still feed the same (now zeroed) stats.
        assert runtime.executor.stats is stats
        assert runtime.cache.stats is stats
        assert runtime.journal.stats is stats

        run_full_flow("s27", small_cfg(), runtime=runtime)
        # Second run is served from cache: hits counted post-reset.
        assert stats.full_sim_hits > 0 or stats.cache_stores > 0


def test_attach_tracer_swaps_per_flow_traces():
    with RuntimeContext(jobs=1) as runtime:
        first_tracer = Tracer(stats=runtime.stats)
        runtime.attach_tracer(first_tracer)
        assert runtime.executor.tracer is first_tracer
        with first_tracer.span("job"):
            run_full_flow("s27", small_cfg(), runtime=runtime)
        first_root = first_tracer.finish()

        runtime.reset_stats()
        second_tracer = Tracer(stats=runtime.stats)
        runtime.attach_tracer(second_tracer)
        with second_tracer.span("job"):
            run_full_flow("s27", small_cfg(), runtime=runtime)
        second_root = second_tracer.finish()

        runtime.attach_tracer(None)
        assert runtime.tracer is None and runtime.executor.tracer is None

    # Each flow got its own complete trace.
    assert first_root.children and second_root.children
    assert first_root is not second_root
