"""Cache eviction under concurrent writers sharing one ``--cache-dir``.

Multiple server/CLI processes may point at the same cache root; any
entry one of them lists during LRU enforcement can vanish at any
moment because a sibling evicted or discarded it.  These tests pin the
tolerate-and-continue behaviour: a racing unlink must neither crash
the enforcement pass nor stop it from enforcing the cap.
"""

from __future__ import annotations

import threading

from repro.runtime.cache import ArtifactCache

#: Entries below are ~100 bytes each; a small cap forces eviction on
#: nearly every put, maximising collisions between the writers.
SMALL_CAP = 600


def entry(i: int) -> dict:
    return {"payload": "x" * 64, "index": i}


def cache_bytes(cache: ArtifactCache) -> int:
    return sum(p.stat().st_size for p in cache.root.glob("*.json"))


def test_enforce_cap_tolerates_entries_vanishing_midway(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=SMALL_CAP)
    for i in range(8):
        cache.put(f"key{i}", entry(i))
    # Simulate a sibling process deleting entries between the glob and
    # the stat/unlink of an enforcement pass: remove files behind the
    # cache's back, then trigger enforcement with one more put.
    for path in list(cache.root.glob("*.json"))[:3]:
        path.unlink()
    cache.put("straggler", entry(99))  # must not raise
    assert cache_bytes(cache) <= SMALL_CAP
    assert cache.get("straggler") is not None


def test_eviction_counter_ignores_already_missing_files(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=10**9)
    for i in range(4):
        cache.put(f"key{i}", entry(i))
    before = cache.stats.cache_evictions
    # Shrink the cap so everything must go, but delete some files
    # first — those evaporate without counting as evictions.
    for path in list(cache.root.glob("*.json"))[:2]:
        path.unlink()
    cache.max_bytes = 1
    cache.put("trigger", entry(0))
    evicted = cache.stats.cache_evictions - before
    assert 1 <= evicted <= 3  # never counts the files it didn't remove


def test_concurrent_writers_sharing_a_root_never_crash(tmp_path):
    """Four threads × two ArtifactCache instances hammer one root with
    a cap small enough that every put evicts; no exception may escape
    and the cap must hold once the dust settles."""
    caches = [
        ArtifactCache(tmp_path, max_bytes=SMALL_CAP) for _ in range(2)
    ]
    errors = []
    barrier = threading.Barrier(4)

    def writer(worker: int) -> None:
        cache = caches[worker % len(caches)]
        try:
            barrier.wait(timeout=10)
            for i in range(120):
                key = f"w{worker}-{i % 10}"
                cache.put(key, entry(i))
                cache.get(key)  # may race an eviction: None is fine
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(n,)) for n in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    assert all(not t.is_alive() for t in threads)

    # One final put enforces the cap over whatever survived the melee.
    caches[0].put("final", entry(0))
    assert cache_bytes(caches[0]) <= SMALL_CAP
