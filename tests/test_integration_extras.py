"""Cross-feature integration tests: LFSR-weight TPG inside the BIST
closure, transition faults on constant-bearing circuits, scan + Verilog
round trips, and the CLI's hybrid flow path."""

from __future__ import annotations

from repro.circuit import CircuitBuilder, parse_bench_text, write_bench
from repro.core import WeightAssignment
from repro.flows import compose_bist
from repro.hw import LfsrSpec, synthesize_tpg, verify_tpg
from repro.scan import insert_scan
from repro.sim import (
    LogicSimulator,
    TransitionFault,
    TransitionFaultSimulator,
    V0,
    V1,
    all_transition_faults,
)


class TestLfsrTpgInClosure:
    def test_closure_with_random_weights(self):
        # A CUT whose inputs are driven by an LFSR-weighted TPG: the
        # whole composition must still signature-match the prediction.
        b = CircuitBuilder("mini")
        b.input("a")
        b.input("b")
        b.and_("d", "a", "b")
        b.dff("q", "d")
        b.or_("y", "q", "a")
        b.output("y")
        cut = b.build()
        a1 = WeightAssignment.from_strings(["R", "1"])
        a2 = WeightAssignment.from_strings(["01", "R"])
        tpg = synthesize_tpg(
            [a1, a2], l_g=16, input_names=cut.inputs,
            lfsr=LfsrSpec(width=5, seed=1),
        )
        assert verify_tpg(tpg).ok
        closure = compose_bist(cut, tpg)
        hw_sig, hw_x = closure.run_hardware()
        sw_sig, sw_x = closure.predict_signature()
        assert hw_x == 0 and sw_x == 0
        assert hw_sig == sw_sig


class TestTransitionEdgeCases:
    def test_constants_excluded_from_universe(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.const1("one")
        b.and_("y", "a", "one")
        b.output("y")
        faults = all_transition_faults(b.build())
        assert all(f.net != "one" for f in faults)

    def test_fault_on_flop_output(self, s27, paper_t):
        # A slow flip-flop output: launch happens across the state
        # element; the two-pass simulation must handle it.
        sim = TransitionFaultSimulator(s27)
        result = sim.run(
            paper_t.patterns,
            [TransitionFault("G5", 1), TransitionFault("G5", 0)],
        )
        assert result.n_faults == 2  # runs without error; detection may vary

    def test_coverage_monotone_in_length(self, s27, paper_t):
        sim = TransitionFaultSimulator(s27)
        faults = all_transition_faults(s27)
        short = sim.run(paper_t.patterns[:4], faults)
        longer = sim.run(paper_t.patterns, faults)
        assert set(short.detection_time) <= set(longer.detection_time)


class TestScanInteroperability:
    def test_scan_circuit_bench_round_trip(self, s27):
        design = insert_scan(s27)
        text = write_bench(design.circuit)
        again = parse_bench_text(text, design.circuit.name)
        assert again.inputs == design.circuit.inputs
        assert again.outputs == design.circuit.outputs

    def test_scan_circuit_verilog_exports(self, s27):
        from repro.circuit import write_verilog

        design = insert_scan(s27)
        text = write_verilog(design.circuit)
        assert "scan_en" in text
        assert "scan_out" in text

    def test_scan_circuit_simulates_identically_after_round_trip(self, s27):
        design = insert_scan(s27)
        again = parse_bench_text(write_bench(design.circuit), "rt")
        stim = [(V1, V0, V1, V0, V1, V1)] * 6
        a = LogicSimulator(design.circuit).run(stim)
        b = LogicSimulator(again).run(stim)
        assert a.outputs == b.outputs


class TestCliHybrid:
    def test_flow_hybrid_flag(self, capsys):
        from repro.cli import main

        code = main(["flow", "s27", "--lg", "64", "--hybrid"])
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage 100.0%" in out
