"""Durable job-queue tests, including the Hypothesis property suite.

The serve layer's queue makes three promises the properties pin down:

* **Dispatch order** — under *any* interleaving of submissions and
  cancellations, draining the queue claims jobs in non-increasing
  priority, FIFO within one (priority, client) pair, and claims
  exactly the jobs that were queued (cancelled ones never run).
* **Journal round-trip** — rebuilding a queue from its journal
  restores identical state (``running`` jobs demoted to ``queued``,
  everything else byte-for-byte the same record).
* **Crash-safe submit** — for a crash at any point around the journal
  write, no *acknowledged* job is ever lost and no job is ever
  duplicated; resubmitting after restart converges to exactly one job
  per key.
"""

from __future__ import annotations

import tempfile
from collections import defaultdict
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.job import CANCELLED, DONE, QUEUED, RUNNING, TASKS, Job, JobSpec
from repro.serve.queue import JobQueue

#: Small parameter spaces keep the example count meaningful: seeds
#: collide (exercising dedup), clients and priorities interleave.
#: Every queue/journal promise is task-agnostic, so the whole suite is
#: parametric over the job types the server runs.
_SEEDS = st.integers(min_value=0, max_value=7)
_PRIORITIES = st.integers(min_value=0, max_value=3)
_CLIENTS = st.sampled_from(("alice", "bob", "carol"))

all_tasks = pytest.mark.parametrize("task", TASKS)


def make_spec(
    seed: int,
    priority: int = 0,
    client: str = "alice",
    task: str = "flow",
) -> JobSpec:
    return JobSpec(
        circuit="s27",
        task=task,
        seed=seed,
        tgen_max_len=64,
        compaction_sims=0,
        l_g=32,
        priority=priority,
        client=client,
    )


_submits = st.tuples(st.just("submit"), _SEEDS, _PRIORITIES, _CLIENTS)
_cancels = st.tuples(st.just("cancel"), _SEEDS)
_ops = st.lists(st.one_of(_submits, _cancels), max_size=30)


def _apply(queue: JobQueue, op, task: str) -> None:
    if op[0] == "submit":
        queue.submit(make_spec(op[1], op[2], op[3], task=task))
    else:
        queue.cancel(make_spec(op[1], task=task).key())


@all_tasks
@given(ops=_ops)
@settings(max_examples=40, deadline=None)
def test_claim_order_priority_then_fifo_under_interleavings(ops, task):
    with tempfile.TemporaryDirectory() as tmp:
        queue = JobQueue(Path(tmp) / "journal.json")
        for op in ops:
            _apply(queue, op, task)

        queued = {j.key for j in queue.jobs() if j.state == QUEUED}
        claimed = []
        while True:
            job = queue.claim_next()
            if job is None:
                break
            claimed.append(job)
            queue.finish(job.key, ok=True)

        # Exactly the queued jobs run — cancelled ones never do.
        assert {j.key for j in claimed} == queued
        assert len({j.key for j in claimed}) == len(claimed)

        priorities = [j.spec.priority for j in claimed]
        assert priorities == sorted(priorities, reverse=True)

        per_tier_client = defaultdict(list)
        for job in claimed:
            per_tier_client[(job.spec.priority, job.spec.client)].append(
                job.seq
            )
        for seqs in per_tier_client.values():
            assert seqs == sorted(seqs), "FIFO broken within a tier/client"


@all_tasks
@given(ops=_ops, claims=st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_journal_round_trip_restores_identical_state(ops, claims, task):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "journal.json"
        queue = JobQueue(path)
        for op in ops:
            _apply(queue, op, task)
        # Move some jobs into running/done so every state round-trips.
        for i in range(claims):
            job = queue.claim_next()
            if job is None:
                break
            if i % 2 == 0:  # leave every other claim in-flight
                queue.finish(job.key, ok=True, stats={"full_simulations": 3})

        before = {j.key: j.to_dict() for j in queue.jobs()}
        restored = JobQueue(path)
        after = {j.key: j.to_dict() for j in restored.jobs()}

        assert set(after) == set(before)
        for key, record in before.items():
            expected = dict(record)
            if expected["state"] == RUNNING:
                # Restart demotes in-flight work: one more transition,
                # so the record version advances and any lease is gone.
                expected["state"] = QUEUED
                expected["version"] = int(expected["version"]) + 1
                expected["owner"] = None
                expected["lease_token"] = None
            assert after[key] == expected
        # Sequence numbering continues where it stopped (no reuse).
        assert restored._next_seq == queue._next_seq


class _Crash(RuntimeError):
    """Simulated process death around the journal write."""


@all_tasks
@given(
    submits=st.lists(
        st.tuples(_SEEDS, _PRIORITIES, _CLIENTS),
        min_size=1,
        max_size=8,
        unique_by=lambda t: t[0],
    ),
    crash_at=st.integers(min_value=0, max_value=7),
    crash_after_write=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_no_job_lost_or_duplicated_across_crash_mid_submit(
    submits, crash_at, crash_after_write, task
):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "journal.json"
        queue = JobQueue(path)
        real_record = queue._journal.record
        calls = {"n": 0}

        def flaky_record(key, payload):
            n = calls["n"]
            calls["n"] += 1
            if n == crash_at:
                if crash_after_write:
                    real_record(key, payload)
                raise _Crash()
            real_record(key, payload)

        queue._journal.record = flaky_record

        acked = []
        crashed_spec = None
        pending = [make_spec(*t, task=task) for t in submits]
        for i, spec in enumerate(pending):
            try:
                queue.submit(spec)
                acked.append(spec.key())
            except _Crash:
                crashed_spec = spec
                pending = pending[i:]
                break
        else:
            pending = []

        # "Restart": rebuild from the journal alone.
        restored = JobQueue(path)
        keys = {j.key for j in restored.jobs()}

        expected = set(acked)
        if crashed_spec is not None and crash_after_write:
            # Crash after the atomic journal write: the job survives
            # even though the submitter never heard the ack.
            expected.add(crashed_spec.key())
        assert keys == expected
        seqs = [j.seq for j in restored.jobs()]
        assert len(set(seqs)) == len(seqs), "duplicated queue slots"

        # Resubmitting everything after restart converges to exactly
        # one job per key — never a duplicate, never a loss.
        for spec in pending:
            job, _created = restored.submit(spec)
            assert job.key == spec.key()
        final = [j.key for j in restored.jobs()]
        assert sorted(final) == sorted(set(acked) | {s.key() for s in pending})


# -- deterministic unit tests ------------------------------------------------


@all_tasks
def test_submit_dedups_by_content_key(tmp_path, task):
    queue = JobQueue(tmp_path / "journal.json")
    job, created = queue.submit(
        make_spec(1, priority=2, client="alice", task=task)
    )
    assert created and job.state == QUEUED
    # Same computation from another client at another priority: dedup.
    dup, created2 = queue.submit(
        make_spec(1, priority=9, client="bob", task=task)
    )
    assert not created2 and dup is job
    assert len(queue) == 1


def test_task_kinds_never_share_a_key(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    flow = make_spec(1, task="flow")
    optimize = make_spec(1, task="optimize")
    assert flow.key() != optimize.key()
    queue.submit(flow)
    _, created = queue.submit(optimize)
    assert created and len(queue) == 2


def test_flow_keys_ignore_the_search_budget():
    # The flow key basis predates the optimizer: budget knobs must not
    # disturb it (old journals and result stores keep resolving), while
    # an optimize job is re-keyed by its budget.
    import dataclasses

    flow = make_spec(1, task="flow")
    assert dataclasses.replace(flow, population=32).key() == flow.key()
    assert dataclasses.replace(flow, generations=9).key() == flow.key()
    optimize = make_spec(1, task="optimize")
    assert dataclasses.replace(optimize, population=32).key() != optimize.key()
    assert (
        dataclasses.replace(optimize, generations=9).key() != optimize.key()
    )


def test_cancelled_job_is_revived_by_resubmit(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    job, _ = queue.submit(make_spec(1))
    assert queue.cancel(job.key) is not None
    assert queue.get(job.key).state == CANCELLED
    revived, created = queue.submit(make_spec(1))
    assert created and revived.state == QUEUED
    assert revived.seq > job.seq or revived.seq != 0


def test_cancel_only_touches_queued_jobs(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    job, _ = queue.submit(make_spec(1))
    claimed = queue.claim_next()
    assert claimed.key == job.key and claimed.state == RUNNING
    assert queue.cancel(job.key) is None  # running: not cancellable
    queue.finish(job.key, ok=True)
    assert queue.cancel(job.key) is None  # terminal: not cancellable
    assert queue.get(job.key).state == DONE


def test_fair_share_across_clients_within_a_tier(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    a1, _ = queue.submit(make_spec(1, client="alice"))
    a2, _ = queue.submit(make_spec(2, client="alice"))
    a3, _ = queue.submit(make_spec(3, client="alice"))
    b1, _ = queue.submit(make_spec(4, client="bob"))

    order = []
    while True:
        job = queue.claim_next()
        if job is None:
            break
        order.append(job.key)
        queue.finish(job.key, ok=True)
    # alice goes first (FIFO), then bob — served longest ago — then
    # alice's backlog; one chatty client cannot starve another.
    assert order == [a1.key, b1.key, a2.key, a3.key]


def test_shed_lowest_evicts_youngest_of_bottom_tier(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    old_low, _ = queue.submit(make_spec(1, priority=0))
    young_low, _ = queue.submit(make_spec(2, priority=0))
    high, _ = queue.submit(make_spec(3, priority=5))

    victim = queue.shed_lowest(below_priority=3)
    assert victim.key == young_low.key  # youngest of the lowest tier
    assert queue.get(old_low.key).state == QUEUED
    assert queue.get(high.key).state == QUEUED
    # Nothing ranks below priority 0: no victim.
    assert queue.shed_lowest(below_priority=0) is None


@all_tasks
def test_restore_demotes_running_and_keeps_attempts(tmp_path, task):
    path = tmp_path / "journal.json"
    queue = JobQueue(path)
    job, _ = queue.submit(make_spec(1, task=task))
    queue.claim_next()
    restored = JobQueue(path)
    back = restored.get(job.key)
    assert back.state == QUEUED
    assert back.attempts == 1  # the interrupted attempt still counts


def test_foreign_journal_records_are_ignored(tmp_path):
    path = tmp_path / "journal.json"
    queue = JobQueue(path)
    job, _ = queue.submit(make_spec(1))
    queue._journal.record("not-a-job", {"kind": "checkpoint", "x": 1})
    restored = JobQueue(path)
    assert {j.key for j in restored.jobs()} == {job.key}


@all_tasks
def test_job_record_round_trips_through_dict(tmp_path, task):
    spec = make_spec(3, priority=2, client="bob", task=task)
    job = Job(spec=spec, seq=7, state=DONE, stats={"full_simulations": 9.0})
    assert Job.from_dict(job.to_dict()).to_dict() == job.to_dict()


# -- sharded multi-worker properties -----------------------------------------

#: Per supervision round: does w0 finish its claim, does w1 finish its
#: claim (False = that worker "crashes" holding the lease), and does
#: the whole server crash-and-rebuild afterwards.
_ROUNDS = st.lists(
    st.tuples(st.booleans(), st.booleans(), st.booleans()), max_size=6
)


@given(ops=_ops, rounds=_ROUNDS)
@settings(max_examples=40, deadline=None)
def test_sharded_claims_never_lose_or_duplicate_jobs(ops, rounds):
    """Two leased workers over journal shards, workers and the whole
    queue crashing at arbitrary points: after every rebuild the merged
    journals hold exactly one record per submitted key, finished work
    stays finished, and abandoned claims come back claimable."""
    from repro.serve.lease import shard_of

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "journal.json"
        shard_root = Path(tmp) / "shards"
        queue = JobQueue(path, shard_root=shard_root)
        for op in ops:
            _apply(queue, op, "flow")
        submitted = {j.key for j in queue.jobs()}
        finished = set()

        for w0_finishes, w1_finishes, server_crashes in rounds:
            for worker, shard, finishes in (
                ("w0", 0, w0_finishes),
                ("w1", 1, w1_finishes),
            ):
                claimed = queue.claim(
                    worker, ttl_s=30.0, shard=shard, total_shards=2
                )
                if claimed is None:
                    continue
                job, lease = claimed
                # Home-shard discipline: a non-stolen claim stays home.
                if not lease.stolen:
                    assert shard_of(job.key, 2) == shard
                if finishes:
                    assert (
                        queue.finish(job.key, ok=True, token=lease.token)
                        is not None
                    )
                    finished.add(job.key)
                # else: the worker dies holding the lease — nothing is
                # released; recovery happens at rebuild time.
            if server_crashes:
                # Rebuild purely from the on-disk journals (main +
                # shards): the shard merge must reconstruct the state.
                queue = JobQueue(path, shard_root=shard_root)

        restored = JobQueue(path, shard_root=shard_root)
        keys = [j.key for j in restored.jobs()]
        assert sorted(keys) == sorted(submitted), "job lost or invented"
        assert len(set(keys)) == len(keys), "job duplicated"
        seqs = [j.seq for j in restored.jobs()]
        assert len(set(seqs)) == len(seqs), "queue slot duplicated"
        for key in finished:
            assert restored.get(key).state == DONE, "finished work lost"
        # Everything not finished or cancelled is claimable again:
        # abandoned leases were demoted, with ownership cleared.
        for job in restored.jobs():
            if job.state not in (DONE, CANCELLED):
                assert job.state == QUEUED
                assert job.owner is None and job.lease_token is None

        # After compaction the main journal alone carries every record.
        assert restored.shards is not None
        assert restored.shards.shard_names() == []
        drained = []
        while True:
            claimed = restored.claim("w0", ttl_s=30.0)
            if claimed is None:
                break
            job, lease = claimed
            drained.append(job.key)
            restored.finish(job.key, ok=True, token=lease.token)
        assert sorted(drained) == sorted(
            j.key
            for j in JobQueue(path, shard_root=shard_root).jobs()
            if j.key not in finished and j.state == DONE
        )


@given(ops=_ops, claims=st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_shard_merge_round_trip_equals_unsharded_view(ops, claims):
    """A queue journaling through owner shards and one journaling only
    through the main journal agree record-for-record after restart —
    sharding changes durability mechanics, never semantics."""
    with tempfile.TemporaryDirectory() as tmp:
        sharded = JobQueue(
            Path(tmp) / "sharded.json", shard_root=Path(tmp) / "shards"
        )
        plain = JobQueue(Path(tmp) / "plain.json")
        for op in ops:
            _apply(sharded, op, "flow")
            _apply(plain, op, "flow")
        for i in range(claims):
            a = sharded.claim("w0", ttl_s=30.0)
            b = plain.claim("w0", ttl_s=30.0)
            assert (a is None) == (b is None)
            if a is None:
                break
            assert a[0].key == b[0].key
            if i % 2 == 0:
                sharded.finish(a[0].key, ok=True, token=a[1].token)
                plain.finish(b[0].key, ok=True, token=b[1].token)

        restored_sharded = JobQueue(
            Path(tmp) / "sharded.json", shard_root=Path(tmp) / "shards"
        )
        restored_plain = JobQueue(Path(tmp) / "plain.json")
        sharded_view = {
            j.key: j.to_dict() for j in restored_sharded.jobs()
        }
        plain_view = {j.key: j.to_dict() for j in restored_plain.jobs()}
        assert sharded_view == plain_view
