"""Supervisor tests: real forked workers, induced crashes and hangs.

These drive the :class:`~repro.serve.supervisor.Supervisor` directly —
no HTTP — against real worker processes running real (tiny) flows, and
pin the recovery contract:

* a multi-worker campaign completes with results byte-identical to
  running the flows directly;
* a SIGKILLed worker is detected, its leased job requeued exactly
  once, and the slot respawned (``worker_restarts`` advances);
* a hung worker (alive, heartbeats stale) gets the same treatment;
* a stale fencing token keeps late bytes out of the result store;
* drain (``stop``) demotes an unfinished claim exactly once.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.flows import run_full_flow
from repro.serve.job import DONE, QUEUED
from repro.serve.metrics import ServeMetrics
from repro.serve.queue import JobQueue
from repro.serve.results import ResultStore, flow_result_payload, render_result
from repro.serve.supervisor import Supervisor
from tests.test_serve_queue import make_spec

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="needs fork-based multiprocessing"
)


def make_parts(tmp_path, **queue_kwargs):
    queue = JobQueue(
        tmp_path / "journal.json",
        shard_root=tmp_path / "shards",
        **queue_kwargs,
    )
    return queue, ResultStore(tmp_path / "results"), ServeMetrics()


def wait_until(predicate, timeout_s=60.0, poll_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


def reference_bytes(spec) -> bytes:
    result = run_full_flow(spec.circuit, spec.flow_config())
    return render_result(flow_result_payload(result))


def test_campaign_completes_byte_identical_across_two_workers(tmp_path):
    queue, results, metrics = make_parts(tmp_path)
    specs = [make_spec(seed) for seed in range(1, 5)]
    for spec in specs:
        queue.submit(spec)
    supervisor = Supervisor(
        queue, results, metrics, workers=2, enable_cache=False
    )
    supervisor.start()
    try:
        assert wait_until(
            lambda: all(
                queue.get(s.key()) is not None
                and queue.get(s.key()).state == DONE
                for s in specs
            )
        ), "campaign did not converge"
    finally:
        assert supervisor.stop(timeout_s=10.0)
    for spec in specs:
        assert results.get_bytes(spec.key()) == reference_bytes(spec)
    assert metrics.counters["completed"] == len(specs)
    # Both workers reported liveness; snapshots carry the healthz shape.
    snaps = supervisor.worker_snapshots()
    assert [s["name"] for s in snaps] == ["w0", "w1"]
    for snap in snaps:
        assert {"name", "shard", "alive", "busy", "restarts"} <= set(snap)
    # Worker runtime stats flowed back to the supervisor's aggregate.
    assert supervisor.runtime_stats_snapshot().full_simulations > 0


def test_sigkilled_worker_is_respawned_and_job_recovered(tmp_path):
    queue, results, metrics = make_parts(tmp_path)
    specs = [make_spec(seed) for seed in range(1, 4)]
    for spec in specs:
        queue.submit(spec)
    supervisor = Supervisor(
        queue,
        results,
        metrics,
        workers=2,
        enable_cache=False,
        restart_backoff_s=0.05,
    )
    supervisor.start()
    try:
        # Murder one worker out from under the supervisor.
        assert wait_until(lambda: supervisor._handles[0].alive(), 10.0)
        os.kill(supervisor._handles[0].proc.pid, signal.SIGKILL)
        assert wait_until(
            lambda: metrics.counters["worker_restarts"] >= 1, 30.0
        ), "crash never detected"
        assert wait_until(
            lambda: all(queue.get(s.key()).state == DONE for s in specs)
        ), "campaign did not recover"
    finally:
        assert supervisor.stop(timeout_s=10.0)
    for spec in specs:
        assert results.get_bytes(spec.key()) == reference_bytes(spec)
    # The respawned slot shows its restart in the healthz snapshot.
    assert any(s["restarts"] >= 1 for s in supervisor.worker_snapshots())


def test_hung_worker_is_recycled(tmp_path):
    # worker_hang=1.0 pauses heartbeats inside the worker for hang_s;
    # with a much shorter heartbeat timeout the supervisor must declare
    # it hung, SIGKILL it, requeue the claim and still converge.
    queue, results, metrics = make_parts(tmp_path)
    spec = make_spec(1)
    queue.submit(spec)
    supervisor = Supervisor(
        queue,
        results,
        metrics,
        workers=2,
        enable_cache=False,
        chaos_text="worker_hang=1.0,hang_s=30.0,seed=1",
        heartbeat_timeout_s=1.0,
        restart_backoff_s=0.05,
        max_restarts=1000,
        lease_ttl_s=5.0,
    )
    supervisor.start()
    try:
        assert wait_until(
            lambda: metrics.counters["worker_restarts"] >= 1, 30.0
        ), "hang never detected"
    finally:
        supervisor.stop(timeout_s=5.0)
    # The job survived the hang: either requeued (exactly once per
    # recovery) or already re-dispatched; never lost.
    job = queue.get(spec.key())
    assert job is not None and job.state in (QUEUED, DONE)
    assert metrics.counters["requeued"] >= 1


def test_stale_result_never_touches_the_store(tmp_path):
    queue, results, metrics = make_parts(tmp_path)
    spec = make_spec(1)
    queue.submit(spec)
    supervisor = Supervisor(queue, results, metrics, workers=2)
    job, lease = queue.claim("w0", ttl_s=30.0)
    # The lease is reclaimed (crash recovery) while w0 still computes.
    assert queue.requeue(job.key, lease.token)
    handle = supervisor._handles[0]
    supervisor._handle_done(
        handle,
        {
            "op": "done",
            "key": job.key,
            "token": lease.token,
            "ok": True,
            "payload": {"schema": "bogus"},
            "trace": json.dumps({"bogus": True}),
            "stats": {},
            "snapshot": {},
        },
    )
    assert metrics.counters["stale_results_rejected"] == 1
    assert results.get_bytes(job.key) is None
    assert queue.get(job.key).state == QUEUED


def test_drain_demotes_unfinished_claim_exactly_once(tmp_path):
    # A worker wedged mid-job (chaos hang longer than any grace) forces
    # stop() down the kill-and-requeue path: the claim must come back
    # as QUEUED with exactly one demotion recorded.
    queue, results, metrics = make_parts(tmp_path)
    spec = make_spec(1)
    queue.submit(spec)
    supervisor = Supervisor(
        queue,
        results,
        metrics,
        workers=2,
        enable_cache=False,
        chaos_text="worker_hang=1.0,hang_s=120.0,seed=1",
        heartbeat_timeout_s=60.0,  # hang outlives the drain, not the sweep
        lease_ttl_s=60.0,
    )
    supervisor.start()
    try:
        assert wait_until(
            lambda: any(h.busy is not None for h in supervisor._handles),
            10.0,
        ), "job never dispatched"
    finally:
        assert supervisor.stop(timeout_s=1.0)
    job = queue.get(spec.key())
    assert job is not None and job.state == QUEUED
    assert job.owner is None and job.lease_token is None
    assert metrics.counters["requeued"] == 1
    assert len(queue.leases) == 0
    # Nothing half-finished leaked into the result store.
    assert results.get_bytes(spec.key()) is None


def test_flapping_worker_is_degraded_but_fleet_survives(tmp_path):
    # kill_claim=1.0 makes a worker SIGKILL itself on *every* claim:
    # the purest flap.  With max_restarts=2 the supervisor must degrade
    # slots rather than restart forever — but never below one worker.
    queue, results, metrics = make_parts(tmp_path)
    spec = make_spec(1)
    queue.submit(spec)
    supervisor = Supervisor(
        queue,
        results,
        metrics,
        workers=2,
        enable_cache=False,
        chaos_text="kill_claim=1.0,seed=1",
        restart_backoff_s=0.01,
        max_restarts=2,
        restart_window_s=300.0,
        lease_ttl_s=5.0,
    )
    supervisor.start()
    try:
        assert wait_until(
            lambda: metrics.counters["workers_degraded"] >= 1, 60.0
        ), "flapping slot never degraded"
    finally:
        supervisor.stop(timeout_s=2.0)
    assert len(supervisor._handles) >= 1  # never below one worker
    snaps = supervisor.worker_snapshots()
    assert any(snap.get("degraded") for snap in snaps)
    # The job was never lost — requeued each time, still claimable.
    job = queue.get(spec.key())
    assert job is not None and job.state in (QUEUED, DONE)
