"""Certificates vs. the oracle: no certified fault is ever detected.

This is the acceptance suite for provable-redundancy pruning:

* every certificate the analysis emits passes the independent
  :func:`check_certificate` re-derivation;
* the bit-parallel fault simulator — the oracle — never detects a
  certified fault, under the flow's own sequences and under random and
  weighted stimuli;
* pruning is invisible: `FaultSimResult` and full-flow outputs are
  byte-identical with pruning on and off, apart from the explicit
  proved-untestable report.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.static import analyze, check_certificate
from repro.flows import FlowConfig, run_full_flow
from repro.core import ProcedureConfig
from repro.sim import FaultSimulator, VX, all_faults, collapse_faults
from repro.sim.faults import FaultPruner, PruneReport, fault_name
from repro.util.rng import DeterministicRng

CIRCUITS = ("s27", "g208")


@pytest.fixture(scope="module", params=CIRCUITS)
def analyzed(request):
    from repro.circuit import load_circuit

    circuit = load_circuit(request.param)
    faults = all_faults(circuit)
    return circuit, faults, analyze(circuit, faults=faults)


def _stimuli(circuit, cycles=64):
    """A battery of stimulus regimes for the oracle cross-check."""
    n = len(circuit.inputs)
    rng = DeterministicRng(11)
    random = [rng.bits(n) for _ in range(cycles)]
    biased = [
        tuple(1 if rng.random() < 0.8 else 0 for _ in range(n))
        for _ in range(cycles)
    ]
    with_x = [
        tuple(VX if rng.random() < 0.2 else rng.bit() for _ in range(n))
        for _ in range(cycles)
    ]
    return {"random": random, "biased": biased, "with_x": with_x}


def _some_certificate(analyzed):
    _circuit, _faults, analysis = analyzed
    if not analysis.certificates:
        pytest.skip("circuit has no certified-untestable faults")
    return next(iter(analysis.certificates.values()))


class TestCertificatesCheck:
    def test_every_certificate_validates(self, analyzed):
        circuit, _faults, analysis = analyzed
        if circuit.name == "g208":
            # The paper benchmark is known to contain redundancy; an
            # empty table here would mean the prover regressed.
            assert analysis.certificates
        for cert in analysis.certificates.values():
            assert check_certificate(circuit, cert), cert.to_dict()

    def test_tampered_certificate_rejected(self, analyzed):
        circuit, _faults, _analysis = analyzed
        cert = _some_certificate(analyzed)
        flipped = dataclasses.replace(
            cert, fault=dataclasses.replace(cert.fault, stuck=1 - cert.fault.stuck)
        )
        assert not check_certificate(circuit, flipped)

    def test_wrong_circuit_rejected(self, analyzed):
        from repro.circuit import load_circuit

        circuit, _faults, _analysis = analyzed
        other = load_circuit("s27" if circuit.name != "s27" else "g208")
        cert = _some_certificate(analyzed)
        assert not check_certificate(other, cert)

    def test_round_trip_through_dict(self, analyzed):
        from repro.analysis.static import Certificate

        circuit, _faults, analysis = analyzed
        for cert in analysis.certificates.values():
            rebuilt = Certificate.from_dict(cert.to_dict())
            assert check_certificate(circuit, rebuilt)


class TestOracleNeverDetects:
    def test_random_and_weighted_stimuli(self, analyzed):
        circuit, faults, analysis = analyzed
        certified = [
            f for f in faults if fault_name(f) in analysis.certificates
        ]
        sim = FaultSimulator(circuit)
        for regime, stimulus in _stimuli(circuit).items():
            result = sim.run(stimulus, certified)
            assert result.detection_time == {}, (
                f"{circuit.name}/{regime}: certified fault detected"
            )

    def test_flow_sequence(self, analyzed):
        circuit, faults, analysis = analyzed
        certified = [
            f for f in faults if fault_name(f) in analysis.certificates
        ]
        flow = run_full_flow(
            circuit,
            FlowConfig(seed=2, tgen_max_len=300, compaction_sims=0,
                       procedure=ProcedureConfig(l_g=64)),
        )
        result = FaultSimulator(circuit).run(flow.sequence, certified)
        assert result.detection_time == {}


class TestPrunerEquivalence:
    def test_fault_sim_result_identical(self, analyzed):
        circuit, faults, analysis = analyzed
        stimulus = _stimuli(circuit)["random"]
        plain = FaultSimulator(circuit).run(stimulus, faults)
        pruner = FaultPruner(circuit, analysis=analysis)
        pruned = FaultSimulator(circuit, pruner=pruner).run(stimulus, faults)
        assert pruned.detection_time == plain.detection_time
        assert pruned.undetected == plain.undetected
        assert pruned.n_faults == plain.n_faults
        assert pruned.coverage == plain.coverage

    def test_detects_any_identical(self, analyzed):
        circuit, faults, analysis = analyzed
        stimulus = _stimuli(circuit)["random"][:16]
        pruner = FaultPruner(circuit, analysis=analysis)
        a = FaultSimulator(circuit).detects_any(stimulus, faults)
        b = FaultSimulator(circuit, pruner=pruner).detects_any(
            stimulus, faults
        )
        assert a == b

    def test_all_pruned_screen_is_false(self, analyzed):
        circuit, faults, analysis = analyzed
        certified = [
            f for f in faults if fault_name(f) in analysis.certificates
        ]
        if not certified:
            pytest.skip("no certified faults on this circuit")
        pruner = FaultPruner(circuit, analysis=analysis)
        sim = FaultSimulator(circuit, pruner=pruner)
        stimulus = _stimuli(circuit)["random"][:8]
        assert sim.detects_any(stimulus, certified) is False

    def test_record_lines_disables_pruning(self, analyzed):
        circuit, faults, analysis = analyzed
        pruner = FaultPruner(circuit, analysis=analysis)
        stimulus = _stimuli(circuit)["random"][:8]
        plain = FaultSimulator(circuit).run(
            stimulus, faults, record_lines=True
        )
        pruned = FaultSimulator(circuit, pruner=pruner).run(
            stimulus, faults, record_lines=True
        )
        assert pruned.lines == plain.lines
        assert pruned.detection_time == plain.detection_time

    def test_prune_report_shape(self, analyzed):
        circuit, faults, analysis = analyzed
        pruner = FaultPruner(circuit, analysis=analysis)
        report = pruner.report(faults)
        assert isinstance(report, PruneReport)
        assert report.n_faults == len(faults)
        assert report.n_pruned == len(analysis.certificates)
        assert report.n_kept + report.n_pruned == report.n_faults
        payload = report.to_payload()
        assert payload["n_faults"] == len(faults)
        assert len(payload["faults"]) == report.n_pruned
        kept, pruned = pruner.split(faults)
        assert len(kept) == report.n_kept
        assert list(kept) + list(pruned) != []  # order-preserving split
        assert [f for f in faults if f in set(kept)] == list(kept)


class TestFlowByteIdentity:
    @pytest.fixture(scope="class")
    def pair(self):
        cfg = dict(seed=3, tgen_max_len=300, compaction_sims=0,
                   procedure=ProcedureConfig(l_g=64))
        off = run_full_flow("g208", FlowConfig(static_prune=False, **cfg))
        on = run_full_flow("g208", FlowConfig(static_prune=True, **cfg))
        return off, on

    def test_identical_results(self, pair):
        off, on = pair
        assert on.table6 == off.table6
        assert on.sequence == off.sequence
        assert on.procedure.omega == off.procedure.omega
        assert [a.weights for a in on.reverse_order.kept] == [
            a.weights for a in off.reverse_order.kept
        ]

    def test_prune_report_only_on(self, pair):
        off, on = pair
        assert off.pruned is None
        assert on.pruned is not None
        assert on.pruned.n_pruned > 0
        # Collapsed-universe faults only; every entry carries a kind.
        universe = {
            fault_name(f) for f in collapse_faults(off.circuit)
        }
        for name, kind in on.pruned.pruned:
            assert name in universe
            assert kind

    def test_serve_payload_gains_untestable_section(self, pair):
        from repro.serve.results import flow_result_payload

        off, on = pair
        p_off = flow_result_payload(off)
        p_on = flow_result_payload(on)
        assert "proved_untestable" not in p_off
        section = p_on.pop("proved_untestable")
        assert section["n_pruned"] == on.pruned.n_pruned
        assert p_on == p_off
