"""Tests for weight FSM construction, TPG synthesis, verification and
the cost model."""

from __future__ import annotations

import pytest

from repro.core import Weight, WeightAssignment
from repro.errors import HardwareError
from repro.hw import (
    build_weight_fsms,
    fsm_summary,
    rom_bits_equivalent,
    synthesize_tpg,
    tpg_cost,
    verify_tpg,
)
from repro.hw.fsm import WeightFsm, find_output, merge_equivalent
from repro.sim import LogicSimulator, V0, V1


def _w(text: str) -> Weight:
    return Weight.from_string(text)


class TestMergeEquivalent:
    def test_merges_repetitions(self):
        mapping = merge_equivalent([_w("01"), _w("0101"), _w("10")])
        assert mapping[_w("0101")] == _w("01")
        assert mapping[_w("01")] == _w("01")
        assert mapping[_w("10")] == _w("10")


class TestBuildFsms:
    def test_one_fsm_per_length(self):
        fsms = build_weight_fsms([_w("0"), _w("1"), _w("01"), _w("100")])
        assert [f.length for f in fsms] == [1, 2, 3]

    def test_equivalent_weights_share_output(self):
        fsms = build_weight_fsms([_w("01"), _w("0101")])
        assert len(fsms) == 1
        assert fsms[0].length == 2
        assert fsms[0].n_outputs == 1

    def test_summary_counts(self):
        summary = fsm_summary([_w("0"), _w("00"), _w("01"), _w("100"), _w("110")])
        # canonical: 0, 0 (dup), 01, 100, 110 -> lengths {1, 2, 3}
        assert summary.n_fsms == 3
        assert summary.n_outputs == 4

    def test_state_bits(self):
        assert WeightFsm(1, (_w("0"),)).n_state_bits == 0
        assert WeightFsm(2, (_w("01"),)).n_state_bits == 1
        assert WeightFsm(5, (_w("00010"),)).n_state_bits == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(HardwareError):
            WeightFsm(3, (_w("01"),))

    def test_find_output(self):
        fsms = build_weight_fsms([_w("01"), _w("100")])
        fsm_i, out_i = find_output(fsms, _w("0101"))  # via canonical form
        assert fsms[fsm_i].outputs[out_i] == _w("01")
        with pytest.raises(HardwareError):
            find_output(fsms, _w("111000"))

    def test_output_at(self):
        fsm = build_weight_fsms([_w("0110")])[0]
        assert [fsm.output_at(0, s) for s in range(4)] == [0, 1, 1, 0]


class TestTpgSynthesis:
    def test_replay_single_assignment(self):
        wa = WeightAssignment.from_strings(["01", "0", "100", "1"])
        design = synthesize_tpg([wa], l_g=12)
        assert verify_tpg(design).ok

    def test_replay_multiple_assignments(self):
        a1 = WeightAssignment.from_strings(["01", "0", "100", "1"])
        a2 = WeightAssignment.from_strings(["100", "00", "01", "100"])
        a3 = WeightAssignment.from_strings(["1", "1", "1", "0110"])
        design = synthesize_tpg([a1, a2, a3], l_g=10)
        assert design.n_assignments == 3
        assert design.total_cycles == 30
        assert verify_tpg(design).ok

    def test_replay_non_power_of_two_lg(self):
        # l_g = 7 exercises the cycle-counter wrap logic.
        a1 = WeightAssignment.from_strings(["011", "10"])
        a2 = WeightAssignment.from_strings(["1", "0"])
        design = synthesize_tpg([a1, a2], l_g=7)
        assert verify_tpg(design).ok

    def test_replay_lg_one(self):
        a1 = WeightAssignment.from_strings(["1", "0"])
        a2 = WeightAssignment.from_strings(["0", "1"])
        design = synthesize_tpg([a1, a2], l_g=1)
        assert verify_tpg(design).ok

    def test_replay_three_assignments_wrap(self):
        # Non-power-of-two assignment count exercises the selector wrap;
        # simulate past the wrap and check assignment 0 repeats.
        a1 = WeightAssignment.from_strings(["01"])
        a2 = WeightAssignment.from_strings(["1"])
        a3 = WeightAssignment.from_strings(["100"])
        design = synthesize_tpg([a1, a2, a3], l_g=6)
        total = design.total_cycles
        stimulus = [(V1,)] + [(V0,)] * (total + 6)
        trace = LogicSimulator(design.circuit).run(stimulus)
        wrapped = [trace.outputs[1 + total + t][0] for t in range(6)]
        expected = [a1.generate(6)[t][0] for t in range(6)]
        assert wrapped == expected

    def test_custom_port_names(self, s27):
        wa = WeightAssignment.from_strings(["01", "0", "100", "1"])
        design = synthesize_tpg([wa], l_g=8, input_names=s27.inputs)
        assert design.output_ports == ("out_G0", "out_G1", "out_G2", "out_G3")

    def test_rejects_empty(self):
        with pytest.raises(HardwareError):
            synthesize_tpg([], l_g=4)

    def test_rejects_mixed_widths(self):
        with pytest.raises(HardwareError, match="mixed"):
            synthesize_tpg(
                [WeightAssignment.from_strings(["0"]),
                 WeightAssignment.from_strings(["0", "1"])],
                l_g=4,
            )

    def test_rejects_random_weights(self):
        with pytest.raises(HardwareError, match="random"):
            synthesize_tpg([WeightAssignment.from_strings(["R", "0"])], l_g=4)

    def test_rejects_bad_lg(self):
        with pytest.raises(HardwareError):
            synthesize_tpg([WeightAssignment.from_strings(["0"])], l_g=0)

    def test_rejects_wrong_name_count(self):
        with pytest.raises(HardwareError):
            synthesize_tpg(
                [WeightAssignment.from_strings(["0", "1"])],
                l_g=4,
                input_names=["a"],
            )


class TestVerifyReportsMismatches:
    def test_mismatch_detection(self):
        # Tamper with a correct design by verifying it against altered
        # expectations: rebuild a design whose assignment differs.
        wa = WeightAssignment.from_strings(["01"])
        design = synthesize_tpg([wa], l_g=6)
        tampered = type(design)(
            circuit=design.circuit,
            assignments=(WeightAssignment.from_strings(["10"]),),
            l_g=design.l_g,
            fsms=design.fsms,
            output_ports=design.output_ports,
        )
        verdict = verify_tpg(tampered)
        assert not verdict.ok
        assert verdict.mismatches
        first = verdict.mismatches[0]
        assert first.expected != first.actual


class TestCost:
    def test_cost_counts(self):
        a1 = WeightAssignment.from_strings(["01", "0", "100", "1"])
        a2 = WeightAssignment.from_strings(["100", "00", "01", "100"])
        design = synthesize_tpg([a1, a2], l_g=12)
        cost = tpg_cost(design)
        assert cost.n_flops >= 4  # cycle counter bits + fsm states
        assert cost.n_gates > 0
        assert cost.n_literals >= cost.n_gates  # every gate has >= 1 pin
        assert cost.gate_equivalents > 0
        assert sum(cost.gate_mix.values()) == cost.n_gates

    def test_rom_equivalent(self):
        assert rom_bits_equivalent(105, 10) == 1050
