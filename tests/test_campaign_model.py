"""Regression models over the warehouse: exact OLS, LOCO, suggest."""

from __future__ import annotations

import math

import pytest

from repro.campaign import CampaignStore, fit_models, suggest, tpg_area_estimate
from repro.campaign.model import FEATURE_NAMES, _fit_one
from repro.errors import CampaignError


def synthetic_row(circuit, n_gates, n_ff, n_pi, l_g, tgen_max_len, coverage):
    return {
        "circuit": circuit,
        "n_gates": n_gates,
        "n_ff": n_ff,
        "n_pi": n_pi,
        "l_g": l_g,
        "tgen_max_len": tgen_max_len,
        "coverage": coverage,
        "n_fsm_outputs": 2,
        "max_length": 5,
        "n_subsequences": 3,
        "n_fsms": 1,
    }


def linear_cov(n_gates, l_g):
    return 0.1 + 0.05 * math.log2(n_gates) + 0.02 * math.log2(l_g)


def test_ols_recovers_exact_linear_relation():
    rows = []
    for i, (gates, l_g) in enumerate(
        [(10, 64), (20, 64), (40, 128), (80, 256), (160, 512), (320, 1024)]
    ):
        rows.append(
            synthetic_row(
                f"c{i}", gates, 4 + i, 3 + i, l_g, 500 * (i + 1),
                linear_cov(gates, l_g),
            )
        )
    model = _fit_one(rows, "coverage")
    coeff = dict(zip(model.features, model.coefficients))
    assert coeff["intercept"] == pytest.approx(0.1, abs=1e-6)
    assert coeff["log2_n_gates"] == pytest.approx(0.05, abs=1e-6)
    assert coeff["log2_l_g"] == pytest.approx(0.02, abs=1e-6)
    assert model.r2 == pytest.approx(1.0, abs=1e-9)
    # Predictions reproduce the generating function.
    pred = model.predict(
        {"n_gates": 100, "n_ff": 5, "n_pi": 4, "l_g": 256, "tgen_max_len": 1000}
    )
    assert pred == pytest.approx(linear_cov(100, 256), abs=1e-6)


def test_constant_columns_are_dropped_not_fatal():
    # Every row shares tgen_max_len → that column is constant.
    rows = [
        synthetic_row(f"c{i}", 10 * (i + 1), 4, 3 + i, 64 * (i + 1), 2000,
                      0.5 + 0.01 * i)
        for i in range(6)
    ]
    model = _fit_one(rows, "coverage")
    coeff = dict(zip(model.features, model.coefficients))
    assert coeff["tgen_max_len" in model.features and "tgen_max_len" or
                 "log2_tgen_max_len"] == 0.0
    assert model.n_observations == 6


def test_loco_residuals_need_two_circuits():
    rows = [
        synthetic_row("s27", 10, 3, 4, 64 * (i + 1), 500 * (i + 1), 0.9)
        for i in range(6)
    ]
    model = _fit_one(rows, "coverage")
    assert not model.loco_residuals
    rows += [
        synthetic_row("g208", 100, 8, 10, 64 * (i + 1), 500 * (i + 1), 0.8)
        for i in range(6)
    ]
    model = _fit_one(rows, "coverage")
    assert model.loco_residuals is not None
    assert set(model.loco_residuals) == {"s27", "g208"}
    for value in model.loco_residuals.values():
        assert value >= 0.0


def test_under_determined_fit_raises():
    # Two observations but four varying columns: refuse to pretend.
    rows = [
        synthetic_row("s27", 10, 3, 4, 64, 500, 0.5),
        synthetic_row("g208", 100, 8, 4, 128, 1000, 0.8),
    ]
    with pytest.raises(CampaignError, match="under-determined"):
        _fit_one(rows, "coverage")
    with pytest.raises(CampaignError):
        _fit_one([], "coverage")


def test_single_constant_row_fits_intercept_only():
    model = _fit_one(
        [synthetic_row("s27", 10, 3, 4, 64, 500, 0.5)], "coverage"
    )
    assert model.predict({"n_gates": 99, "n_ff": 9, "n_pi": 9,
                          "l_g": 2048, "tgen_max_len": 8000}
                         ) == pytest.approx(0.5)


def test_feature_names_are_stable():
    assert FEATURE_NAMES[0] == "intercept"
    assert "log2_l_g" in FEATURE_NAMES
    assert "log2_tgen_max_len" in FEATURE_NAMES


def test_tpg_area_estimate_matches_hardware_cost_model():
    row = {
        "n_fsm_outputs": 4,
        "n_pi": 4,
        "max_length": 7,
        "n_subsequences": 3,
        "n_fsms": 2,
    }
    # literals = 4*4 + 2*4 = 24 → 12 gates; flops = ceil(log2(8)) +
    # ceil(log2(4)) + 2 = 3 + 2 + 2 = 7 → 42.
    assert tpg_area_estimate(row) == pytest.approx(12 + 42)


def fitted_store(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    for circuit, det in (("s27", 32), ("g208", 80)):
        for i, l_g in enumerate((64, 128, 256)):
            store.ingest_flow_payload(
                {
                    "circuit": circuit,
                    "table6": {
                        "circuit": circuit,
                        "given_len": 10,
                        "given_det": det - i,
                        "n_sequences": 2,
                        "n_subsequences": 3,
                        "max_length": 5,
                        "n_fsms": 1,
                        "n_fsm_outputs": 2,
                    },
                },
                config={"l_g": l_g, "tgen_max_len": 500 * (i + 1)},
            )
    return store


def test_fit_models_from_store_and_suggest(tmp_path):
    store = fitted_store(tmp_path)
    models = fit_models(store)
    assert set(models) == {"coverage", "tpg_gate_equivalents"}
    assert models["coverage"].n_observations == 6

    result = suggest(store, "s27", target_coverage=0.5)
    assert result["circuit"] == "s27"
    assert result["recommendation"] is not None
    assert result["candidates"]
    rec = result["recommendation"]
    assert rec["l_g"] in (64, 128, 256, 512, 1024, 2048)

    # An impossible target falls back to the best-coverage candidate.
    hard = suggest(store, "s27", target_coverage=1.0)
    assert hard["recommendation"] is not None

    with pytest.raises(CampaignError):
        suggest(store, "s27", target_coverage=0.0)
    with pytest.raises(CampaignError):
        suggest(store, "not-a-circuit")


def test_fit_models_empty_store_raises(tmp_path):
    store = CampaignStore(tmp_path / "empty.db")
    with pytest.raises(CampaignError):
        fit_models(store)


def test_model_to_dict_is_rounded_and_stable():
    rows = [
        synthetic_row(f"c{i}", 10 * (i + 1), 4 + i, 3, 64 * (i + 1),
                      500 * (i + 1), 0.5 + 0.01 * i)
        for i in range(6)
    ]
    model = _fit_one(rows, "coverage")
    payload = model.to_dict()
    assert payload["target"] == "coverage"
    assert payload == _fit_one(rows, "coverage").to_dict()
