"""Tests for the test-generation substrate: TestSequence, the
simulation-based generator, and static compaction."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import FaultSimulator, VX, collapse_faults
from repro.tgen import TestSequence, compact_sequence, generate_test_sequence


class TestTestSequence:
    def test_from_strings_and_notation(self, paper_t):
        assert paper_t.at(0) == (0, 1, 1, 1)
        assert paper_t.value(9, 0) == 1
        assert paper_t.width == 4
        assert len(paper_t) == 10

    def test_restrict(self, paper_t):
        assert paper_t.restrict(2) == (1, 0, 1, 0, 0, 1, 0, 0, 0, 1)

    def test_x_values(self):
        seq = TestSequence.from_strings(["0x1", "X10"])
        assert seq.value(0, 1) == VX
        assert seq.value(1, 0) == VX

    def test_ragged_raises(self):
        with pytest.raises(SimulationError, match="ragged"):
            TestSequence([(0, 1), (0,)])

    def test_bad_value_raises(self):
        with pytest.raises(SimulationError):
            TestSequence([(0, 5)])

    def test_append_concat_prefix(self, paper_t):
        longer = paper_t.append((1, 1, 1, 1))
        assert len(longer) == 11
        assert len(paper_t) == 10  # immutable
        both = paper_t.concat(paper_t)
        assert len(both) == 20
        assert both.prefix(10) == paper_t

    def test_drop_time_unit(self, paper_t):
        dropped = paper_t.drop_time_unit(0)
        assert len(dropped) == 9
        assert dropped.at(0) == paper_t.at(1)

    def test_round_trip_strings(self, paper_t):
        assert TestSequence.from_strings(paper_t.to_strings()) == paper_t

    def test_equality_and_hash(self, paper_t):
        clone = TestSequence.from_strings(paper_t.to_strings())
        assert clone == paper_t
        assert hash(clone) == hash(paper_t)

    def test_iteration_and_indexing(self, paper_t):
        assert list(paper_t)[3] == paper_t[3]

    def test_empty(self):
        seq = TestSequence.empty(4)
        assert len(seq) == 0
        assert seq.width == 0


class TestGenerator:
    def test_s27_full_coverage(self, s27, s27_faults):
        gen = generate_test_sequence(s27, s27_faults, seed=7, max_len=500)
        assert gen.coverage == 1.0
        assert gen.undetected == ()

    def test_detected_set_is_what_sequence_detects(self, s27, s27_faults):
        gen = generate_test_sequence(s27, s27_faults, seed=7, max_len=500)
        resim = FaultSimulator(s27).run(gen.sequence.patterns, s27_faults)
        assert set(resim.detection_time) == set(gen.detected)

    def test_deterministic_in_seed(self, s27, s27_faults):
        a = generate_test_sequence(s27, s27_faults, seed=3, max_len=200)
        b = generate_test_sequence(s27, s27_faults, seed=3, max_len=200)
        assert a.sequence == b.sequence

    def test_seed_changes_sequence(self, s27, s27_faults):
        a = generate_test_sequence(s27, s27_faults, seed=3, max_len=200)
        b = generate_test_sequence(s27, s27_faults, seed=4, max_len=200)
        assert a.sequence != b.sequence

    def test_max_len_respected(self, g208):
        faults = collapse_faults(g208)
        gen = generate_test_sequence(g208, faults, seed=1, max_len=50)
        assert len(gen.sequence) <= 50

    def test_default_fault_list(self, s27):
        gen = generate_test_sequence(s27, seed=7, max_len=500)
        assert len(gen.detected) + len(gen.undetected) == 32


class TestCompaction:
    def test_preserves_detection(self, s27, s27_faults):
        gen = generate_test_sequence(s27, s27_faults, seed=7, max_len=500)
        comp = compact_sequence(s27, gen.sequence, gen.detected)
        resim = FaultSimulator(s27).run(comp.sequence.patterns, list(gen.detected))
        assert not resim.undetected

    def test_never_longer(self, s27, s27_faults):
        gen = generate_test_sequence(s27, s27_faults, seed=7, max_len=500)
        comp = compact_sequence(s27, gen.sequence, gen.detected)
        assert comp.compacted_length <= comp.original_length
        assert comp.reduction >= 0.0

    def test_budget_respected(self, s27, s27_faults):
        gen = generate_test_sequence(s27, s27_faults, seed=7, max_len=500)
        comp = compact_sequence(s27, gen.sequence, gen.detected, max_simulations=5)
        assert comp.n_simulations <= 5

    def test_rejects_non_covering_sequence(self, s27, s27_faults, paper_t):
        with pytest.raises(ValueError, match="does not detect"):
            compact_sequence(s27, paper_t.prefix(2), s27_faults)

    def test_empty_targets_noop(self, s27, paper_t):
        comp = compact_sequence(s27, paper_t, [])
        assert comp.sequence == paper_t
        assert comp.n_simulations == 0

    def test_paper_sequence_already_tight(self, s27, s27_faults, paper_t):
        # The Table-1 sequence detects faults at u=9, so truncation
        # cannot shorten it; omission may or may not help, but the
        # result must still detect everything.
        comp = compact_sequence(s27, paper_t, s27_faults)
        resim = FaultSimulator(s27).run(comp.sequence.patterns, s27_faults)
        assert not resim.undetected
