"""Tests for the weight set S and the candidate sets A_i."""

from __future__ import annotations

import pytest

from repro.core import Weight, WeightSet, candidate_sets, promote_full_length
from repro.core.candidates import assignment_row, max_rows
from repro.tgen import TestSequence


class TestWeightSet:
    def test_insertion_order_preserved(self):
        s = WeightSet()
        for text in ("1", "0", "01"):
            s.add(Weight.from_string(text))
        assert [str(w) for w in s] == ["1", "0", "01"]
        assert s[1] == Weight.from_string("0")

    def test_duplicates_ignored(self):
        s = WeightSet()
        assert s.add(Weight.from_string("01"))
        assert not s.add(Weight.from_string("01"))
        assert len(s) == 1

    def test_repetition_equivalent_kept_separately(self):
        # The paper keeps 0 and 00 both in S (Section 2).
        s = WeightSet()
        s.add(Weight.from_string("0"))
        s.add(Weight.from_string("00"))
        assert len(s) == 2

    def test_extend_from(self, paper_t):
        s = WeightSet()
        added = s.extend_from(paper_t, 9, 1)
        # Tails at u=9: inputs give 1, 0, 1, 1 -> two distinct weights.
        assert {str(w) for w in added} == {"1", "0"}
        added2 = s.extend_from(paper_t, 9, 2)
        assert all(w.length == 2 for w in added2)

    def test_of_length_and_up_to(self):
        s = WeightSet()
        for text in ("0", "01", "011"):
            s.add(Weight.from_string(text))
        assert [str(w) for w in s.of_length(2)] == ["01"]
        assert [str(w) for w in s.up_to_length(2)] == ["0", "01"]
        assert s.max_length == 3

    def test_contains(self):
        s = WeightSet()
        s.add(Weight.from_string("0"))
        assert Weight.from_string("0") in s
        assert Weight.from_string("1") not in s


class TestCandidateSets:
    def _sequence(self):
        return TestSequence.from_strings(["01", "10", "01", "10"])

    def test_only_tail_matchers_included(self):
        seq = self._sequence()
        s = WeightSet()
        for text in ("0", "1", "01", "10"):
            s.add(Weight.from_string(text))
        cands = candidate_sets(seq, 3, s, 2)
        # T_0 = 0101; tail at u=3 is 1: candidates are 1 and 10
        # (10 expands to 1010... value at u=3 ... wait 10 -> 1,0,1,0; at
        # u=3 it is 0 != 1).  Check membership strictly by expansion.
        t_0 = seq.restrict(0)
        for w, _n in cands[0]:
            assert w.matches_tail(t_0, 3)

    def test_sorted_by_matches(self, paper_t):
        s = WeightSet()
        for text in ("0", "1", "00", "10", "01", "11"):
            s.add(Weight.from_string(text))
        cands = candidate_sets(paper_t, 9, s, 2)
        for a_i in cands:
            counts = [n for _w, n in a_i]
            assert counts == sorted(counts, reverse=True)

    def test_unsorted_keeps_insertion_order(self, paper_t):
        s = WeightSet()
        for text in ("0", "1", "00", "10", "01", "11"):
            s.add(Weight.from_string(text))
        cands = candidate_sets(paper_t, 9, s, 2, sort_by_matches=False)
        order = [str(w) for w, _n in cands[0]]
        in_s = [str(w) for w in s if Weight.from_string(str(w)).matches_tail(paper_t.restrict(0), 9)]
        assert order == in_s

    def test_max_length_filter(self, paper_t):
        s = WeightSet()
        s.add(Weight.from_string("1"))
        s.add(Weight.from_string("101"))
        cands = candidate_sets(paper_t, 9, s, 1)
        for a_i in cands:
            for w, _n in a_i:
                assert w.length <= 1


class TestPromotion:
    def test_no_op_when_full_row_exists(self, paper_t):
        s = WeightSet()
        s.extend_from(paper_t, 9, 2)
        cands = candidate_sets(paper_t, 9, s, 2)
        promoted = promote_full_length(cands, 2)
        # Every A_i contains only the mined length-2 weight -> row 0 is
        # already all-full-length -> unchanged.
        assert promoted == cands

    def test_promotes_to_front(self, paper_t):
        s = WeightSet()
        s.extend_from(paper_t, 9, 1)
        s.extend_from(paper_t, 9, 3)
        cands = candidate_sets(paper_t, 9, s, 3)
        promoted = promote_full_length(cands, 3)
        for a_i in promoted:
            assert a_i[0][0].length == 3

    def test_empty_candidates_passthrough(self):
        assert promote_full_length([], 2) == []


class TestAssignmentRows:
    def test_row_reuses_last_when_short(self):
        w0, w1 = Weight.from_string("0"), Weight.from_string("1")
        cands = [[(w0, 5)], [(w0, 5), (w1, 3)]]
        assert assignment_row(cands, 0) == [w0, w0]
        assert assignment_row(cands, 1) == [w0, w1]
        assert assignment_row(cands, 7) == [w0, w1]

    def test_empty_set_raises(self):
        with pytest.raises(ValueError):
            assignment_row([[], [(Weight.from_string("0"), 1)]], 0)

    def test_max_rows(self):
        w = Weight.from_string("0")
        assert max_rows([[(w, 1)], [(w, 1), (w, 1)]]) == 2
        assert max_rows([]) == 0
