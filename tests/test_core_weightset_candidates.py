"""Tests for the weight set S and the candidate sets A_i."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Weight, WeightSet, candidate_sets, promote_full_length
from repro.core.candidates import assignment_row, max_rows
from repro.tgen import TestSequence


class TestWeightSet:
    def test_insertion_order_preserved(self):
        s = WeightSet()
        for text in ("1", "0", "01"):
            s.add(Weight.from_string(text))
        assert [str(w) for w in s] == ["1", "0", "01"]
        assert s[1] == Weight.from_string("0")

    def test_duplicates_ignored(self):
        s = WeightSet()
        assert s.add(Weight.from_string("01"))
        assert not s.add(Weight.from_string("01"))
        assert len(s) == 1

    def test_repetition_equivalent_kept_separately(self):
        # The paper keeps 0 and 00 both in S (Section 2).
        s = WeightSet()
        s.add(Weight.from_string("0"))
        s.add(Weight.from_string("00"))
        assert len(s) == 2

    def test_extend_from(self, paper_t):
        s = WeightSet()
        added = s.extend_from(paper_t, 9, 1)
        # Tails at u=9: inputs give 1, 0, 1, 1 -> two distinct weights.
        assert {str(w) for w in added} == {"1", "0"}
        added2 = s.extend_from(paper_t, 9, 2)
        assert all(w.length == 2 for w in added2)

    def test_of_length_and_up_to(self):
        s = WeightSet()
        for text in ("0", "01", "011"):
            s.add(Weight.from_string(text))
        assert [str(w) for w in s.of_length(2)] == ["01"]
        assert [str(w) for w in s.up_to_length(2)] == ["0", "01"]
        assert s.max_length == 3

    def test_contains(self):
        s = WeightSet()
        s.add(Weight.from_string("0"))
        assert Weight.from_string("0") in s
        assert Weight.from_string("1") not in s


class TestCandidateSets:
    def _sequence(self):
        return TestSequence.from_strings(["01", "10", "01", "10"])

    def test_only_tail_matchers_included(self):
        seq = self._sequence()
        s = WeightSet()
        for text in ("0", "1", "01", "10"):
            s.add(Weight.from_string(text))
        cands = candidate_sets(seq, 3, s, 2)
        # T_0 = 0101; tail at u=3 is 1: candidates are 1 and 10
        # (10 expands to 1010... value at u=3 ... wait 10 -> 1,0,1,0; at
        # u=3 it is 0 != 1).  Check membership strictly by expansion.
        t_0 = seq.restrict(0)
        for w, _n in cands[0]:
            assert w.matches_tail(t_0, 3)

    def test_sorted_by_matches(self, paper_t):
        s = WeightSet()
        for text in ("0", "1", "00", "10", "01", "11"):
            s.add(Weight.from_string(text))
        cands = candidate_sets(paper_t, 9, s, 2)
        for a_i in cands:
            counts = [n for _w, n in a_i]
            assert counts == sorted(counts, reverse=True)

    def test_unsorted_keeps_insertion_order(self, paper_t):
        s = WeightSet()
        for text in ("0", "1", "00", "10", "01", "11"):
            s.add(Weight.from_string(text))
        cands = candidate_sets(paper_t, 9, s, 2, sort_by_matches=False)
        order = [str(w) for w, _n in cands[0]]
        in_s = [str(w) for w in s if Weight.from_string(str(w)).matches_tail(paper_t.restrict(0), 9)]
        assert order == in_s

    def test_max_length_filter(self, paper_t):
        s = WeightSet()
        s.add(Weight.from_string("1"))
        s.add(Weight.from_string("101"))
        cands = candidate_sets(paper_t, 9, s, 1)
        for a_i in cands:
            for w, _n in a_i:
                assert w.length <= 1


class TestPromotion:
    def test_no_op_when_full_row_exists(self, paper_t):
        s = WeightSet()
        s.extend_from(paper_t, 9, 2)
        cands = candidate_sets(paper_t, 9, s, 2)
        promoted = promote_full_length(cands, 2)
        # Every A_i contains only the mined length-2 weight -> row 0 is
        # already all-full-length -> unchanged.
        assert promoted == cands

    def test_promotes_to_front(self, paper_t):
        s = WeightSet()
        s.extend_from(paper_t, 9, 1)
        s.extend_from(paper_t, 9, 3)
        cands = candidate_sets(paper_t, 9, s, 3)
        promoted = promote_full_length(cands, 3)
        for a_i in promoted:
            assert a_i[0][0].length == 3

    def test_empty_candidates_passthrough(self):
        assert promote_full_length([], 2) == []


#: Module-level strategies (fixed structure, no runtime randomness):
#: small binary alphabets keep collisions — the interesting case —
#: frequent.
_WEIGHT_STRINGS = st.lists(
    st.text(alphabet="01", min_size=1, max_size=4), min_size=1, max_size=12
)


@st.composite
def _sequences(draw):
    width = draw(st.integers(min_value=1, max_value=4))
    depth = draw(st.integers(min_value=2, max_value=8))
    rows = [
        "".join(draw(st.sampled_from("01")) for _ in range(width))
        for _ in range(depth)
    ]
    return TestSequence.from_strings(rows)


class TestWeightSetProperties:
    @given(strings=_WEIGHT_STRINGS)
    @settings(max_examples=60, deadline=None)
    def test_duplicate_free_and_first_appearance_ordered(self, strings):
        s = WeightSet()
        for text in strings:
            s.add(Weight.from_string(text))
        listed = list(s)
        # No duplicates, ever.
        assert len(set(listed)) == len(listed) == len(s)
        # Iteration order is exactly first-appearance order.
        expected = []
        for text in strings:
            w = Weight.from_string(text)
            if w not in expected:
                expected.append(w)
        assert listed == expected
        # Re-adding anything already present is always a no-op.
        assert not any(s.add(w) for w in expected)
        assert list(s) == expected

    @given(seq=_sequences(), length=st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_extend_from_is_deterministic(self, seq, length):
        u = len(seq) - 1
        length = min(length, u + 1)  # mining needs that much history
        a, b = WeightSet(), WeightSet()
        assert a.extend_from(seq, u, length) == b.extend_from(seq, u, length)
        assert list(a) == list(b)


class TestCandidateSetProperties:
    @given(seq=_sequences(), strings=_WEIGHT_STRINGS)
    @settings(max_examples=60, deadline=None)
    def test_sorted_order_invariant_under_s_insertion_order(
        self, seq, strings
    ):
        # The sort key (-n_m, length, bits) is a total order on distinct
        # weights, so the sorted A_i never depend on the order S grew in.
        u = len(seq) - 1
        forward, backward = WeightSet(), WeightSet()
        for text in strings:
            forward.add(Weight.from_string(text))
        for text in reversed(strings):
            backward.add(Weight.from_string(text))
        assert candidate_sets(seq, u, forward, 3) == candidate_sets(
            seq, u, backward, 3
        )

    @given(
        seq=_sequences(),
        strings=_WEIGHT_STRINGS,
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivariant_under_input_permutation(self, seq, strings, data):
        # Renaming/permuting the primary inputs permutes the A_i the
        # same way — no candidate computation leaks across inputs.
        u = len(seq) - 1
        perm = data.draw(st.permutations(range(seq.width)))
        permuted = TestSequence.from_strings(
            [
                "".join(row[perm[i]] for i in range(seq.width))
                for row in seq.to_strings()
            ]
        )
        s = WeightSet()
        for text in strings:
            s.add(Weight.from_string(text))
        original = candidate_sets(seq, u, s, 3)
        renamed = candidate_sets(permuted, u, s, 3)
        assert renamed == [original[perm[i]] for i in range(seq.width)]

    @given(seq=_sequences(), strings=_WEIGHT_STRINGS)
    @settings(max_examples=60, deadline=None)
    def test_membership_is_exactly_the_tail_matchers(self, seq, strings):
        u = len(seq) - 1
        s = WeightSet()
        for text in strings:
            s.add(Weight.from_string(text))
        cands = candidate_sets(seq, u, s, 3)
        pool = s.up_to_length(3)
        for i, a_i in enumerate(cands):
            t_i = seq.restrict(i)
            members = [w for w, _n in a_i]
            # Duplicate-free, correct counts, and complete.
            assert len(set(members)) == len(members)
            assert all(n == w.match_count(t_i) for w, n in a_i)
            assert set(members) == {
                w for w in pool if w.matches_tail(t_i, u)
            }


class TestAssignmentRows:
    def test_row_reuses_last_when_short(self):
        w0, w1 = Weight.from_string("0"), Weight.from_string("1")
        cands = [[(w0, 5)], [(w0, 5), (w1, 3)]]
        assert assignment_row(cands, 0) == [w0, w0]
        assert assignment_row(cands, 1) == [w0, w1]
        assert assignment_row(cands, 7) == [w0, w1]

    def test_empty_set_raises(self):
        with pytest.raises(ValueError):
            assignment_row([[], [(Weight.from_string("0"), 1)]], 0)

    def test_max_rows(self):
        w = Weight.from_string("0")
        assert max_rows([[(w, 1)], [(w, 1), (w, 1)]]) == 2
        assert max_rows([]) == 0
