"""The campaign warehouse: schema, idempotent ingest, projections."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.campaign import CampaignStore, payload_fingerprint
from repro.errors import CampaignError
from repro.trace.export import export_trace
from repro.trace.span import Tracer


def flow_payload(circuit="s27", given_det=30, **table6):
    row = {
        "circuit": circuit,
        "given_len": 10,
        "given_det": given_det,
        "n_sequences": 2,
        "n_subsequences": 3,
        "max_length": 5,
        "n_fsms": 1,
        "n_fsm_outputs": 2,
    }
    row.update(table6)
    return {"circuit": circuit, "table6": row}


def job_record(key="k1", version=1, state="done", **stats):
    return {
        "kind": "job",
        "key": key,
        "spec": {"circuit": "s27", "task": "flow"},
        "seq": 0,
        "state": state,
        "error": None,
        "attempts": 1,
        "stats": dict(stats),
        "owner": None,
        "version": version,
        "lease_token": None,
    }


def test_ingest_flow_payload_is_idempotent(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    first = store.ingest_flow_payload(flow_payload(), config={"l_g": 64})
    again = store.ingest_flow_payload(flow_payload(), config={"l_g": 64})
    assert first.runs_new == 1 and first.table6_rows == 1
    assert again.runs_new == 0 and again.runs_dup == 1
    assert again.table6_rows == 0
    assert store.summary()["table6_rows"] == 1


def test_same_payload_different_config_is_a_different_run(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    store.ingest_flow_payload(flow_payload(), config={"l_g": 64})
    store.ingest_flow_payload(flow_payload(), config={"l_g": 128})
    rows = store.query_table6()
    assert len(rows) == 2
    assert sorted(row["l_g"] for row in rows) == [64, 128]


def test_coverage_joined_from_library_circuit_stats(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    store.ingest_flow_payload(flow_payload(given_det=16))
    (row,) = store.query_table6()
    # s27 has 32 collapsed faults; ensure_circuit learned that.
    assert row["n_faults"] == 32
    assert row["coverage"] == pytest.approx(0.5)
    (circuit,) = store.query_circuits()
    assert circuit["name"] == "s27" and circuit["n_pi"] == 4


def test_unknown_circuit_coverage_is_null_not_fatal(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    store.ingest_flow_payload(flow_payload(circuit="not-in-library"))
    (row,) = store.query_table6()
    assert row["coverage"] is None


def test_malformed_flow_payload_raises(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    with pytest.raises(CampaignError):
        store.ingest_flow_payload({"circuit": "s27"})
    with pytest.raises(CampaignError):
        store.ingest_flow_payload(
            {"circuit": "s27", "table6": {"given_len": "many"}}
        )


def test_job_record_upsert_freshest_version_wins(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    store.ingest_job_record(job_record(version=3, state="done"))
    store.ingest_job_record(job_record(version=1, state="running"))
    (job,) = store.query_jobs()
    assert job["version"] == 3 and job["state"] == "done"
    store.ingest_job_record(job_record(version=5, state="failed"))
    (job,) = store.query_jobs()
    assert job["version"] == 5 and job["state"] == "failed"


def test_job_phase_stats_become_timings(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    record = job_record(**{"phase:procedure": 1.25, "full_simulations": 9})
    store.ingest_job_record(record)
    rows = store.query_timings(phase="procedure")
    assert len(rows) == 1 and rows[0]["seconds"] == pytest.approx(1.25)
    # Non-phase stats never leak into the timings table.
    assert not store.query_timings(phase="full_simulations")


def test_journal_ingest_flow_and_job_entries(tmp_path):
    journal = {
        "format": 1,
        "entries": {
            "flow:s27:abc123": {
                "kind": "flow",
                "table6": flow_payload()["table6"],
                "timings": {"procedure": 0.5},
            },
            "job-entry": job_record(key="k9"),
            "mystery": {"kind": "other"},
        },
    }
    path = tmp_path / "journal.json"
    path.write_text(json.dumps(journal))
    store = CampaignStore(tmp_path / "c.db")
    report = store.ingest_path(path)
    assert report.table6_rows == 1
    assert report.jobs == 1
    assert len(report.skipped) == 1
    (row,) = store.query_table6()
    assert row["config_fp"] == "abc123"
    # Re-ingesting the same journal is a no-op.
    again = store.ingest_path(path)
    assert again.runs_new == 0 and again.jobs == 0


def test_optimize_payload_projects_front_points(tmp_path):
    payload = {
        "kind": "optimize-front",
        "circuit": "s27",
        "front": [
            {"coverage": 0.9, "area": 50.0, "length": 128, "detected": 29},
            {"coverage": 1.0, "area": 80.0, "length": 256, "detected": 32},
        ],
    }
    store = CampaignStore(tmp_path / "c.db")
    report = store.ingest_optimize_payload(payload)
    assert report.front_points == 2
    points = store.query_fronts(circuit="s27")
    assert [p["idx"] for p in points] == [0, 1]
    assert points[1]["area"] == pytest.approx(80.0)


def test_trace_ingest_projects_phase_durations(tmp_path):
    tracer = Tracer()
    with tracer.span("full_flow"):
        with tracer.span("procedure"):
            pass
    root = tracer.finish()
    path = tmp_path / "trace.json"
    export_trace(root, tracer.events, path)
    store = CampaignStore(tmp_path / "c.db")
    report = store.ingest_path(path)
    assert report.runs_new == 1
    phases = {row["phase"] for row in store.query_timings()}
    assert "procedure" in phases


def test_benchmark_ingest_legacy_and_enveloped(tmp_path):
    legacy = {"name": "old_bench", "rows": ["a"], "wall_time_s": 1.5}
    enveloped = {
        "schema_version": 2,
        "host_cpus": 8,
        "git_describe": "abc1234",
        "circuits": {"s27": {"n_pi": 4, "n_po": 1, "n_ff": 3,
                             "n_gates": 10, "n_nets": 17, "depth": 4}},
        "payload": {
            "name": "new_bench",
            "rows": [],
            "wall_time_s": 2.0,
            "phases": {"procedure": 0.75},
        },
    }
    store = CampaignStore(tmp_path / "c.db")
    store.ingest_benchmark(legacy)
    store.ingest_benchmark(enveloped)
    rows = store.query_benchmarks()
    assert [row["name"] for row in rows] == ["new_bench", "old_bench"]
    by_name = {row["name"]: row for row in rows}
    assert by_name["old_bench"]["schema_version"] == 0
    assert by_name["new_bench"]["schema_version"] == 2
    assert by_name["new_bench"]["host_cpus"] == 8
    assert by_name["new_bench"]["git_describe"] == "abc1234"
    assert store.query_timings(phase="procedure")
    assert any(c["name"] == "s27" for c in store.query_circuits())


def test_benchmark_table6_rows_projected(tmp_path):
    artifact = {
        "schema_version": 2,
        "host_cpus": 1,
        "git_describe": "",
        "payload": {
            "name": "table6",
            "rows": [flow_payload()["table6"]],
            "wall_time_s": 0.1,
        },
    }
    store = CampaignStore(tmp_path / "c.db")
    report = store.ingest_benchmark(artifact)
    assert report.table6_rows == 1
    (row,) = store.query_table6()
    assert row["circuit"] == "s27" and row["l_g"] is None


def test_ingest_path_dispatch_and_unknown_shape(tmp_path):
    known = tmp_path / "flow.json"
    known.write_text(json.dumps(flow_payload()))
    weird = tmp_path / "weird.json"
    weird.write_text(json.dumps({"zzz": 1}))
    store = CampaignStore(tmp_path / "c.db")
    report = store.ingest_path(tmp_path)
    assert report.table6_rows == 1
    assert report.skipped == [str(weird)]


def test_sql_is_select_only(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    store.ingest_flow_payload(flow_payload())
    rows = store.sql("SELECT circuit FROM table6_rows")
    assert rows == [{"circuit": "s27"}]
    with pytest.raises(CampaignError):
        store.sql("DELETE FROM table6_rows")
    with pytest.raises(CampaignError):
        store.sql("SELECT * FROM no_such_table")


def test_newer_schema_version_rejected(tmp_path):
    path = tmp_path / "future.db"
    conn = sqlite3.connect(str(path))
    conn.execute("PRAGMA user_version = 99")
    conn.commit()
    conn.close()
    with pytest.raises(CampaignError, match="schema v99"):
        CampaignStore(path)


def test_campaign_point_binding_and_query(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    store.ingest_flow_payload(flow_payload())
    fingerprint = payload_fingerprint(
        {"kind": "flow", "payload": flow_payload()}
    )
    store.record_campaign_point(
        "exp1", 0, {"l_g": 64}, job_key="j1", fingerprint=fingerprint
    )
    (point,) = store.query_campaigns("exp1")
    assert point["factors"] == {"l_g": 64}
    rows = store.query_table6(campaign="exp1")
    assert len(rows) == 1 and rows[0]["point"] == 0
    with pytest.raises(CampaignError):
        store.record_campaign_point("", 0, {})


def test_dump_is_ingest_order_independent(tmp_path):
    payloads = [flow_payload(given_det=d) for d in (10, 20, 30)]
    store_a = CampaignStore(tmp_path / "a.db")
    store_b = CampaignStore(tmp_path / "b.db")
    for payload in payloads:
        store_a.ingest_flow_payload(payload)
    for payload in reversed(payloads):
        store_b.ingest_flow_payload(payload)
    assert store_a.dump() == store_b.dump()
