"""Tests for the fault model and equivalence collapsing."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.errors import FaultModelError
from repro.sim import Fault, all_faults, collapse_faults, fault_name
from repro.sim.collapse import collapse_ratio, equivalence_classes
from repro.sim.faults import validate_fault


class TestFault:
    def test_stem_fault(self):
        f = Fault("G8", 0)
        assert not f.is_branch
        assert fault_name(f) == "G8/0"

    def test_branch_fault(self):
        f = Fault("G8", 1, gate="G15", pin=1)
        assert f.is_branch
        assert fault_name(f) == "G8->G15.1/1"

    def test_bad_stuck_value_raises(self):
        with pytest.raises(FaultModelError):
            Fault("a", 2)

    def test_half_branch_raises(self):
        with pytest.raises(FaultModelError):
            Fault("a", 0, gate="g")

    def test_ordering_total(self):
        faults = [Fault("b", 1), Fault("a", 0, gate="g", pin=0), Fault("a", 0)]
        ordered = sorted(faults)
        assert ordered[0] == Fault("a", 0)  # stem before branch of same net

    def test_validate_against_circuit(self, s27):
        validate_fault(s27, Fault("G8", 0))
        validate_fault(s27, Fault("G8", 0, gate="G15", pin=1))
        with pytest.raises(FaultModelError):
            validate_fault(s27, Fault("nope", 0))
        with pytest.raises(FaultModelError):
            validate_fault(s27, Fault("G8", 0, gate="G15", pin=0))  # wrong pin


class TestUniverse:
    def test_s27_counts(self, s27):
        universe = all_faults(s27)
        stems = [f for f in universe if not f.is_branch]
        branches = [f for f in universe if f.is_branch]
        assert len(stems) == 34   # 17 nets x 2
        assert len(branches) == 18
        assert len(universe) == 52

    def test_branches_only_on_fanout_stems(self, s27):
        for fault in all_faults(s27):
            if fault.is_branch:
                assert s27.fanout_count(fault.net) > 1

    def test_constants_excluded(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.const1("one")
        b.and_("y", "a", "one")
        b.output("y")
        universe = all_faults(b.build())
        assert not any(f.net == "one" and not f.is_branch for f in universe)

    def test_universe_sorted_and_unique(self, s27):
        universe = all_faults(s27)
        assert universe == sorted(universe)
        assert len(set(universe)) == len(universe)


class TestCollapse:
    def test_s27_collapses_to_32(self, s27):
        assert len(collapse_faults(s27)) == 32

    def test_classes_partition_universe(self, s27):
        classes = equivalence_classes(s27)
        members = [f for cls in classes for f in cls]
        assert sorted(members) == all_faults(s27)

    def test_representatives_are_class_minima(self, s27):
        classes = equivalence_classes(s27)
        reps = set(collapse_faults(s27))
        for cls in classes:
            assert min(cls) in reps

    def test_inverter_chain_collapses(self):
        # a -> NOT -> NOT -> y: 6 stem faults collapse to 2 classes.
        b = CircuitBuilder("chain")
        b.input("a")
        b.not_("m", "a")
        b.not_("y", "m")
        b.output("y")
        assert len(collapse_faults(b.build())) == 2

    def test_and_gate_collapse(self):
        # y = AND(a, b): {a/0, b/0, y/0} is one class -> 4 classes total
        # out of 6 faults.
        b = CircuitBuilder("and2")
        b.input("a")
        b.input("b")
        b.and_("y", "a", "b")
        b.output("y")
        assert len(collapse_faults(b.build())) == 4

    def test_xor_does_not_collapse(self):
        b = CircuitBuilder("xor2")
        b.input("a")
        b.input("b")
        b.xor("y", "a", "b")
        b.output("y")
        assert len(collapse_faults(b.build())) == 6

    def test_no_collapse_across_flops(self):
        # d -> DFF -> q: the D-side and Q-side faults stay distinct.
        b = CircuitBuilder("ff")
        b.input("d0")
        b.buf("d", "d0")
        b.dff("q", "d")
        b.output("q")
        collapsed = collapse_faults(b.build())
        # d0/d collapse through the BUF; q stays separate: 4 classes.
        assert len(collapsed) == 4

    def test_collapse_ratio(self, s27):
        assert collapse_ratio(s27) == pytest.approx(32 / 52)

    def test_deterministic(self, s27):
        assert collapse_faults(s27) == collapse_faults(s27)
