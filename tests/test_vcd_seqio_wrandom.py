"""Tests for VCD export, sequence file I/O, and the weighted-random
baseline."""

from __future__ import annotations

import pytest

from repro.baselines.weighted_random import (
    InputWeights,
    weighted_random_bist,
    weights_from_sequence,
    windowed_weights,
)
from repro.errors import SimulationError
from repro.sim import LogicSimulator, V0, V1
from repro.sim.vcd import write_vcd, write_vcd_file
from repro.tgen import TestSequence
from repro.tgen.io import (
    dumps_sequence,
    load_sequence,
    loads_sequence,
    save_sequence,
)
from repro.util.rng import DeterministicRng


class TestVcd:
    def test_header_and_changes(self, s27, paper_t):
        trace = LogicSimulator(s27).run(paper_t.patterns, record_nets=True)
        text = write_vcd(s27, trace)
        assert "$timescale 1 ns $end" in text
        assert "$scope module s27 $end" in text
        assert "$enddefinitions $end" in text
        # every net declared
        for net in s27.nets:
            assert f" {net} $end" in text
        # first timestep dumps all values
        assert "#0" in text

    def test_net_subset(self, s27, paper_t):
        trace = LogicSimulator(s27).run(paper_t.patterns, record_nets=True)
        text = write_vcd(s27, trace, nets=["G17", "G11"])
        assert "G17 $end" in text
        assert "G8 $end" not in text

    def test_requires_recorded_nets(self, s27, paper_t):
        trace = LogicSimulator(s27).run(paper_t.patterns)
        with pytest.raises(SimulationError, match="record_nets"):
            write_vcd(s27, trace)

    def test_unknown_net_rejected(self, s27, paper_t):
        trace = LogicSimulator(s27).run(paper_t.patterns, record_nets=True)
        with pytest.raises(SimulationError):
            write_vcd(s27, trace, nets=["nope"])

    def test_change_compression(self, comb_circuit):
        # A constant stimulus should dump values once, not per cycle.
        stim = [(V1, V0, V0)] * 5
        trace = LogicSimulator(comb_circuit).run(stim, record_nets=True)
        text = write_vcd(comb_circuit, trace)
        # After #0, no further change entries for these nets.
        after = text.split("#0", 1)[1]
        assert "#5" in after
        body = after.split("\n")
        change_lines = [
            l for l in body if l and not l.startswith("#") and not l.startswith("$")
        ]
        assert len(change_lines) == len(comb_circuit.nets)

    def test_file_output(self, s27, paper_t, tmp_path):
        trace = LogicSimulator(s27).run(paper_t.patterns, record_nets=True)
        path = tmp_path / "trace.vcd"
        write_vcd_file(s27, trace, path)
        assert path.read_text().startswith("$date")


class TestSequenceIo:
    def test_round_trip(self, paper_t, tmp_path):
        path = tmp_path / "t.seq"
        save_sequence(paper_t, path, comment="paper table 1")
        again = load_sequence(path)
        assert again == paper_t

    def test_comment_and_blank_lines(self):
        text = "# hello\n\n01\n10  \n# trailing\n"
        seq = loads_sequence(text)
        assert len(seq) == 2

    def test_x_values(self):
        seq = loads_sequence("0x\nX1\n")
        from repro.sim import VX

        assert seq.value(0, 1) == VX

    def test_bad_char_rejected(self):
        with pytest.raises(SimulationError, match="bad character"):
            loads_sequence("012\n")

    def test_dumps_includes_comment(self, paper_t):
        text = dumps_sequence(paper_t, comment="line1\nline2")
        assert text.startswith("# line1\n# line2\n")


class TestWeightedRandom:
    def test_weights_from_sequence(self):
        seq = TestSequence.from_strings(["10", "10", "11", "10"])
        weights = weights_from_sequence(seq, quantize=None)
        assert weights.probabilities == (1.0, 0.25)

    def test_quantization(self):
        seq = TestSequence.from_strings(["1", "0", "0"])  # p = 1/3
        weights = weights_from_sequence(seq, quantize=8)
        assert weights.probabilities[0] == pytest.approx(3 / 8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weights_from_sequence(TestSequence([]))

    def test_windowed(self, paper_t):
        distributions = windowed_weights(paper_t, 2)
        assert len(distributions) == 2
        with pytest.raises(ValueError):
            windowed_weights(paper_t, 0)

    def test_sample_respects_extremes(self):
        weights = InputWeights((0.0, 1.0))
        rng = DeterministicRng(1)
        for _ in range(30):
            pattern = weights.sample(rng)
            assert pattern == (0, 1)

    def test_bist_runs_and_is_deterministic(self, s27, s27_faults, paper_t):
        a = weighted_random_bist(s27, paper_t, s27_faults, n_patterns=200, seed=4)
        b = weighted_random_bist(s27, paper_t, s27_faults, n_patterns=200, seed=4)
        assert a.detection_time == b.detection_time
        assert 0.0 < a.coverage <= 1.0

    def test_multi_distribution(self, s27, s27_faults, paper_t):
        result = weighted_random_bist(
            s27, paper_t, s27_faults, n_patterns=200, n_distributions=3, seed=4
        )
        assert 0.0 < result.coverage <= 1.0
