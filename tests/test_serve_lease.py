"""Lease-table and leased-claim semantics: fencing, expiry, stealing.

The invariants the multi-worker service stands on, pinned at the unit
level:

* fencing tokens are strictly monotonic — across grants, releases and
  (via the journaled floor) server restarts;
* a stale token can neither finish nor requeue a job, and requeueing
  with the current token works **exactly once** (the drain-time
  double-demotion fix);
* a zero-ttl lease (chaos's ``lease_expire``) stays expired no matter
  how eagerly it is renewed;
* shard placement is stable, and an idle worker steals across shards
  rather than starving.
"""

from __future__ import annotations

from repro.serve.job import DONE, QUEUED, RUNNING
from repro.serve.lease import LeaseTable, shard_of
from repro.serve.queue import JobQueue
from tests.test_serve_queue import make_spec


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# -- shard placement ---------------------------------------------------------


def test_shard_of_is_stable_and_in_range():
    keys = [make_spec(seed).key() for seed in range(8)]
    for key in keys:
        shard = shard_of(key, 4)
        assert 0 <= shard < 4
        assert shard_of(key, 4) == shard  # pure function of the key
    assert all(shard_of(key, 1) == 0 for key in keys)
    assert all(shard_of(key, 0) == 0 for key in keys)


# -- lease table -------------------------------------------------------------


def test_tokens_are_strictly_monotonic_across_grants():
    table = LeaseTable(clock=FakeClock())
    tokens = [table.grant(f"k{i}", "w0", ttl_s=10.0).token for i in range(5)]
    assert tokens == sorted(tokens)
    assert len(set(tokens)) == 5


def test_observe_token_raises_the_floor():
    table = LeaseTable(clock=FakeClock())
    table.observe_token(41)
    lease = table.grant("k", "w0", ttl_s=10.0)
    assert lease.token == 42


def test_renew_is_fenced_by_token_and_owner():
    clock = FakeClock()
    table = LeaseTable(clock=clock)
    lease = table.grant("k", "w0", ttl_s=10.0)
    assert table.renew("k", "w0", lease.token)
    assert not table.renew("k", "w1", lease.token)  # wrong owner
    assert not table.renew("k", "w0", lease.token + 1)  # wrong token
    assert not table.renew("missing", "w0", lease.token)


def test_zero_ttl_lease_stays_expired_despite_renewal():
    clock = FakeClock()
    table = LeaseTable(clock=clock)
    lease = table.grant("k", "w0", ttl_s=0.0)
    assert lease.expired(clock())
    # Renewal uses the lease's own ttl: deadline = now + 0 = now.
    assert table.renew("k", "w0", lease.token)
    assert lease.expired(clock())
    assert [lease.key for lease in table.expired()] == ["k"]


def test_release_is_fenced_and_expiry_sweep_is_sorted():
    clock = FakeClock()
    table = LeaseTable(clock=clock)
    a = table.grant("b-key", "w0", ttl_s=1.0)
    b = table.grant("a-key", "w1", ttl_s=1.0)
    assert not table.release("b-key", a.token + 99)
    clock.now += 5.0
    assert [lease.key for lease in table.expired()] == ["a-key", "b-key"]
    assert table.release("a-key", b.token)
    assert table.get("a-key") is None
    assert len(table) == 1


def test_none_ttl_never_expires():
    clock = FakeClock()
    table = LeaseTable(clock=clock)
    table.grant("k", "scheduler", ttl_s=None)
    clock.now += 1e9
    assert table.expired() == []


# -- leased claims on the queue ----------------------------------------------


def test_claim_prefers_home_shard_then_steals(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    total = 2
    by_shard = {0: [], 1: []}
    seed = 0
    # Submit until both shards hold at least two jobs.
    while min(len(v) for v in by_shard.values()) < 2:
        spec = make_spec(seed)
        by_shard[shard_of(spec.key(), total)].append(spec.key())
        queue.submit(spec)
        seed += 1

    job, lease = queue.claim("w0", ttl_s=30.0, shard=0, total_shards=total)
    assert shard_of(job.key, total) == 0 and not lease.stolen
    assert job.owner == "w0" and job.lease_token == lease.token
    assert job.state == RUNNING

    # Drain shard 1 completely, then w1's next claim steals from 0.
    while True:
        claimed = queue.claim(
            "w1", ttl_s=30.0, shard=1, total_shards=total, steal=False
        )
        if claimed is None:
            break
        queue.finish(claimed[0].key, ok=True, token=claimed[1].token)
    stolen = queue.claim("w1", ttl_s=30.0, shard=1, total_shards=total)
    assert stolen is not None and stolen[1].stolen
    assert shard_of(stolen[0].key, total) == 0


def test_finish_is_fenced_by_the_current_token(tmp_path):
    queue = JobQueue(tmp_path / "journal.json")
    queue.submit(make_spec(1))
    job, lease = queue.claim("w0", ttl_s=30.0)
    assert queue.finish(job.key, ok=True, token=lease.token + 7) is None
    assert queue.stale_finishes == 1
    assert queue.get(job.key).state == RUNNING
    # The unleased legacy form is refused on a leased job.
    assert queue.finish(job.key, ok=True) is None
    assert queue.stale_finishes == 2
    finished = queue.finish(job.key, ok=True, token=lease.token)
    assert finished is not None and finished.state == DONE
    assert finished.lease_token is None
    assert len(queue.leases) == 0


def test_requeue_demotes_exactly_once(tmp_path):
    """The drain-time fix: two recovery paths racing on one claim
    (supervisor sweep + signal handling) demote it exactly once."""
    queue = JobQueue(tmp_path / "journal.json")
    queue.submit(make_spec(1))
    job, lease = queue.claim("w0", ttl_s=30.0)
    version_before = job.version
    assert queue.requeue(job.key, lease.token) is True
    back = queue.get(job.key)
    assert back.state == QUEUED and back.owner is None
    assert back.version == version_before + 1
    # Second demotion attempt with the same token: fenced no-op.
    assert queue.requeue(job.key, lease.token) is False
    assert queue.get(job.key).version == version_before + 1
    # And the late worker's result is fenced off too.
    assert queue.finish(job.key, ok=True, token=lease.token) is None


def test_expired_lease_is_reclaimed_and_late_result_rejected(tmp_path):
    clock = FakeClock()
    queue = JobQueue(tmp_path / "journal.json", clock=clock)
    queue.submit(make_spec(1))
    job, lease = queue.claim("w0", ttl_s=2.0)
    assert queue.expire_leases() == []  # not expired yet
    clock.now += 5.0
    reclaimed = queue.expire_leases()
    assert [lease_.key for lease_ in reclaimed] == [job.key]
    assert queue.get(job.key).state == QUEUED
    # The original worker reports late: fenced.
    assert queue.finish(job.key, ok=True, token=lease.token) is None
    # A fresh claim gets a *higher* token and can finish.
    job2, lease2 = queue.claim("w1", ttl_s=30.0)
    assert job2.key == job.key and lease2.token > lease.token
    assert queue.finish(job2.key, ok=True, token=lease2.token) is not None


def test_heartbeat_renewal_extends_a_live_lease(tmp_path):
    clock = FakeClock()
    queue = JobQueue(tmp_path / "journal.json", clock=clock)
    queue.submit(make_spec(1))
    job, lease = queue.claim("w0", ttl_s=3.0)
    clock.now += 2.0
    assert queue.renew(job.key, "w0", lease.token)
    clock.now += 2.0  # 4s since claim, 2s since renewal: still alive
    assert queue.expire_leases() == []
    assert queue.lease_valid(job.key, lease.token)


def test_token_floor_survives_restart(tmp_path):
    path = tmp_path / "journal.json"
    queue = JobQueue(path)
    queue.submit(make_spec(1))
    job, lease = queue.claim("w0", ttl_s=30.0)
    # Crash with the claim journaled; the restarted queue must mint
    # tokens strictly above anything the old life ever granted.
    restored = JobQueue(path)
    assert restored.get(job.key).state == QUEUED
    job2, lease2 = restored.claim("w0", ttl_s=30.0)
    assert lease2.token > lease.token


def test_chaos_lease_expire_grants_a_dead_on_arrival_lease(tmp_path):
    from repro.resilience.chaos import ChaosSpec

    queue = JobQueue(
        tmp_path / "journal.json", chaos=ChaosSpec(lease_expire=1.0)
    )
    queue.submit(make_spec(1))
    job, lease = queue.claim("w0", ttl_s=30.0)
    assert lease.ttl_s == 0.0
    reclaimed = queue.expire_leases()
    assert [lease_.key for lease_ in reclaimed] == [job.key]
    assert queue.get(job.key).state == QUEUED
