"""The ``repro analyze`` command and the ``--static`` / ``--static-prune``
CLI surfaces."""

from __future__ import annotations

import json

from repro.analysis.static import ANALYSIS_FORMAT
from repro.cli import main


class TestAnalyzeCommand:
    def test_stdout_is_canonical_json(self, capsys):
        rc = main(["analyze", "s27", "--no-cache"])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out)
        assert payload["format"] == ANALYSIS_FORMAT
        assert payload["circuit"] == "s27"
        # The human summary goes to stderr, keeping stdout pipeable.
        assert "proved untestable" in captured.err

    def test_output_file(self, capsys, tmp_path):
        target = tmp_path / "analysis.json"
        rc = main(["analyze", "s27", "--no-cache", "--output", str(target)])
        out = capsys.readouterr().out
        assert rc == 0
        assert str(target) in out
        payload = json.loads(target.read_text())
        assert payload["circuit"] == "s27"

    def test_all_faults_universe_and_check(self, capsys):
        rc = main([
            "analyze", "g208", "--no-cache", "--faults", "all", "--check",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out)
        assert payload["summary"]["proved_untestable"] > 0
        # --check re-validated every certificate; a failure would raise.
        assert "g208:" in captured.err

    def test_collapsed_default_universe(self, capsys):
        from repro.circuit import load_circuit
        from repro.sim import collapse_faults

        rc = main(["analyze", "s27", "--no-cache"])
        payload = json.loads(capsys.readouterr().out)
        n = len(collapse_faults(load_circuit("s27")))
        assert payload["summary"]["n_faults"] == n

    def test_unknown_circuit_exits_nonzero(self, capsys):
        rc = main(["analyze", "definitely_not_a_circuit"])
        err = capsys.readouterr().err
        assert rc != 0
        assert "unknown circuit" in err

    def test_max_frames_recorded_in_config(self, capsys):
        rc = main(["analyze", "s27", "--no-cache", "--max-frames", "2"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["config"]["max_frames"] == 2


class TestFlowStaticPrune:
    def test_flow_reports_prune_line(self, capsys):
        rc = main([
            "flow", "s27", "--static-prune", "--no-cache", "--lg", "64",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "proved untestable:" in out
        assert "denominators unchanged" in out

    def test_flow_without_flag_stays_silent(self, capsys):
        rc = main(["flow", "s27", "--no-cache", "--lg", "64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "proved untestable" not in out


class TestLintStaticFlag:
    def test_static_rules_only_with_flag(self, capsys):
        main(["lint", "g386", "--fail-on", "never"])
        plain = capsys.readouterr().out
        main(["lint", "g386", "--static", "--fail-on", "never"])
        with_static = capsys.readouterr().out
        assert "C013" not in plain
        assert "C013" in with_static
