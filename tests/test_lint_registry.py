"""Every registered rule has a defect fixture that fires it exactly once.

This is the contract test for the rule catalogue: adding a rule without
a fixture, or a fixture that trips a rule twice, fails here.  The
fixtures are the `tests/fixtures/*.bench` / `defect_module.py` files
plus per-rule corrupted TPG designs built in-process.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.core import WeightAssignment
from repro.core.weight import Weight
from repro.hw import synthesize_tpg
from repro.hw.fsm import WeightFsm
from repro.circuit import parse_bench_text
from repro.lint import (
    REGISTRY,
    lint_bench_path,
    lint_bench_text,
    lint_design,
    lint_python_path,
    lint_static,
)

FIXTURES = Path(__file__).parent / "fixtures"

# Minimal netlists that each trip exactly one static-analysis rule.
_STATIC_BENCHES = {
    "C010": "INPUT(a)\nOUTPUT(g)\nz = CONST0()\ng = AND(a, z)\n",
    "C011": (
        "INPUT(a)\nINPUT(b)\nOUTPUT(po)\n"
        "po = BUF(b)\ng1 = NOT(a)\ng2 = NOT(g1)\n"
    ),
    "C012": "INPUT(a)\nOUTPUT(g)\none = CONST1()\ng = AND(a, one)\n",
    "C013": (
        "INPUT(a)\nOUTPUT(po)\n"
        "na = NOT(a)\ng = AND(a, na)\npo = OR(g, a)\n"
    ),
}


def _design(strings, l_g=8):
    return synthesize_tpg([WeightAssignment.from_strings(strings)], l_g)


def _replaced(base_strings, **changes):
    return dataclasses.replace(_design(base_strings), **changes)


def _tpg_defect(rule_id):
    """A TpgDesign corrupted so that exactly ``rule_id`` fires."""
    if rule_id == "T001":
        return _replaced(["01", "1"], assignments=(
            WeightAssignment.from_strings(["01", "1"]),
            WeightAssignment.from_strings(["1"]),
        ))
    if rule_id == "T002":
        return _replaced(["01", "01"], assignments=(
            WeightAssignment.from_strings(["01"]),
        ))
    if rule_id == "T003":
        return _replaced(["01", "01"], assignments=(
            WeightAssignment.from_strings(["01", "100"]),
        ))
    if rule_id == "T004":
        return _replaced(["01", "1"], assignments=(
            WeightAssignment.from_strings(["01", "01"]),
        ))
    if rule_id == "T005":
        w = Weight.from_string("0101")
        return _replaced(
            ["0101"],
            assignments=(WeightAssignment((w,)),),
            fsms=(WeightFsm(length=4, outputs=(w,)),),
        )
    if rule_id == "T006":
        w = Weight.from_string("01")
        return _replaced(["01"], fsms=(WeightFsm(length=2, outputs=(w, w)),))
    if rule_id == "T007":
        return _replaced(["01", "1"], l_g=16)
    if rule_id == "T008":
        return _replaced(["1", "1"], assignments=(
            WeightAssignment.from_strings(["R", "1"]),
        ))
    if rule_id == "T009":
        return _design(["100"])
    raise AssertionError(rule_id)


def _fixture_report(rule_id):
    family = rule_id[0]
    if family == "C":
        if rule_id in _STATIC_BENCHES:
            circuit = parse_bench_text(_STATIC_BENCHES[rule_id], rule_id)
            return lint_static(circuit)
        if rule_id == "C009":
            return lint_bench_text("z = FROB(a)\n", "inline")
        if rule_id == "C005":
            return lint_bench_path(FIXTURES / "cycle.bench")
        if rule_id in ("C001", "C002", "C003", "C004"):
            return lint_bench_path(FIXTURES / "broken.bench")
        return lint_bench_path(FIXTURES / "defects.bench")
    if family == "T":
        return lint_design(_tpg_defect(rule_id))
    return lint_python_path(FIXTURES / "defect_module.py")


@pytest.mark.parametrize("rule_id", sorted(REGISTRY))
def test_every_rule_fires_exactly_once_on_its_fixture(rule_id):
    report = _fixture_report(rule_id)
    findings = report.by_rule().get(rule_id, [])
    assert len(findings) == 1, (
        f"{rule_id} fired {len(findings)} times: "
        f"{[d.format() for d in findings]}"
    )
    assert findings[0].severity is REGISTRY[rule_id].severity
    assert findings[0].message


def test_registry_covers_all_three_families():
    families = {rule_id[0] for rule_id in REGISTRY}
    assert families == {"C", "T", "D"}
    assert len(REGISTRY) >= 20
