"""Tests for subsequence weights: expansion, mining, matching,
canonical forms, and the pseudo-random weight."""

from __future__ import annotations

import pytest

from repro.core import Weight, RandomWeight, mine_weight
from repro.errors import WeightError
from repro.util.rng import DeterministicRng


class TestWeightBasics:
    def test_expand(self):
        assert Weight.from_string("01").expand(5) == (0, 1, 0, 1, 0)
        assert Weight.from_string("100").expand(7) == (1, 0, 0, 1, 0, 0, 1)

    def test_expand_zero_length(self):
        assert Weight.from_string("1").expand(0) == ()

    def test_value_at(self):
        w = Weight.from_string("011")
        assert [w.value_at(u) for u in range(6)] == [0, 1, 1, 0, 1, 1]

    def test_empty_raises(self):
        with pytest.raises(WeightError):
            Weight(())

    def test_non_binary_raises(self):
        with pytest.raises(WeightError):
            Weight((0, 2))

    def test_equality_and_hash(self):
        assert Weight.from_string("01") == Weight((0, 1))
        assert hash(Weight.from_string("01")) == hash(Weight((0, 1)))
        assert Weight.from_string("01") != Weight.from_string("0101")

    def test_ordering_by_length_then_bits(self):
        ws = [Weight.from_string(s) for s in ("11", "0", "101", "1")]
        assert [str(w) for w in sorted(ws)] == ["0", "1", "11", "101"]

    def test_str_repr(self):
        w = Weight.from_string("001")
        assert str(w) == "001"
        assert "001" in repr(w)


class TestCanonical:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("0101", "01"),
            ("00", "0"),
            ("010101", "01"),
            ("100100", "100"),
            ("100", "100"),
            ("0110", "0110"),
            ("1", "1"),
            ("111111", "1"),
        ],
    )
    def test_canonical(self, raw, expected):
        assert str(Weight.from_string(raw).canonical()) == expected

    def test_same_expansion(self):
        a = Weight.from_string("01")
        b = Weight.from_string("0101")
        c = Weight.from_string("10")
        assert a.same_expansion(b)
        assert not a.same_expansion(c)  # phase differs


class TestMatching:
    def test_matches_tail_needs_history(self):
        w = Weight.from_string("0110")
        assert not w.matches_tail((0, 1, 1), 2)  # only 3 values of history

    def test_matches_tail_out_of_range(self):
        w = Weight.from_string("1")
        assert not w.matches_tail((1, 1), 5)

    def test_x_never_matches(self):
        from repro.sim.values import VX

        w = Weight.from_string("1")
        assert w.match_count((1, VX, 1)) == 2
        assert not w.matches_tail((1, VX), 1)


class TestMining:
    def test_mining_full_prefix_reproduces_t(self, paper_t):
        # L_S = u + 1 reproduces T_i exactly from time 0.
        for i in range(4):
            t_i = paper_t.restrict(i)
            for u in (0, 4, 9):
                w = mine_weight(t_i, u, u + 1)
                assert w.expand(u + 1) == t_i[: u + 1]

    def test_mined_weight_always_matches_tail(self, paper_t):
        for i in range(4):
            t_i = paper_t.restrict(i)
            for u in range(len(t_i)):
                for length in range(1, u + 2):
                    w = mine_weight(t_i, u, length)
                    assert w.matches_tail(t_i, u)

    def test_too_long_raises(self, paper_t):
        with pytest.raises(WeightError, match="history"):
            mine_weight(paper_t.restrict(0), 3, 5)

    def test_bad_time_raises(self, paper_t):
        with pytest.raises(WeightError):
            mine_weight(paper_t.restrict(0), 99, 1)
        with pytest.raises(WeightError):
            mine_weight(paper_t.restrict(0), -1, 1)

    def test_bad_length_raises(self, paper_t):
        with pytest.raises(WeightError):
            mine_weight(paper_t.restrict(0), 3, 0)

    def test_x_in_tail_raises(self):
        from repro.sim.values import VX

        with pytest.raises(WeightError, match="binary"):
            mine_weight((1, VX, 0), 2, 2)


class TestRandomWeight:
    def test_expansion_needs_rng(self):
        with pytest.raises(WeightError):
            RandomWeight().expand(4)

    def test_expansion_deterministic_in_rng(self):
        a = RandomWeight().expand(64, DeterministicRng(7))
        b = RandomWeight().expand(64, DeterministicRng(7))
        assert a == b
        assert set(a) <= {0, 1}

    def test_flags(self):
        r = RandomWeight()
        assert r.is_random
        assert r.length == 1
        assert not Weight.from_string("0").is_random

    def test_never_matches_tail(self):
        assert not RandomWeight().matches_tail((0, 1), 1)

    def test_equality(self):
        assert RandomWeight() == RandomWeight()
        assert RandomWeight() != Weight.from_string("1")
        assert Weight.from_string("1") != RandomWeight()

    def test_str(self):
        assert str(RandomWeight()) == "R"
