"""CLI behaviour of the resilience features: the new flags, resume,
chaos-spec validation, interrupt exit codes, and the early tgen_mode
configuration gate."""

from __future__ import annotations

import pytest

import repro.flows
from repro.cli import main
from repro.errors import ReproError, SweepInterrupted
from repro.flows import clear_cache
from repro.flows.full_flow import FlowConfig, run_full_flow


@pytest.fixture(autouse=True)
def _fresh_flow_cache():
    clear_cache()
    yield
    clear_cache()


def test_resilience_flags_smoke(tmp_path, capsys):
    rc = main(
        [
            "table6",
            "s27",
            "--cache-dir",
            str(tmp_path),
            "--task-timeout",
            "60",
            "--retries",
            "1",
            "--stats",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "Table 6" in out
    assert "checkpoints          1 recorded" in out


def test_chaos_flag_smoke(capsys):
    rc = main(
        [
            "flow",
            "s27",
            "--no-cache",
            "--jobs",
            "2",
            "--chaos",
            "corrupt=1.0,seed=1",
            "--retries",
            "1",
        ]
    )
    assert rc == 0
    assert "s27" in capsys.readouterr().out


def test_resume_reproduces_the_identical_table(tmp_path, capsys):
    argv = ["table6", "s27", "--cache-dir", str(tmp_path), "--stats"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    clear_cache()
    assert main(argv + ["--resume"]) == 0
    second = capsys.readouterr().out
    # The table block is byte-identical; the stats differ (the resumed
    # run shows the skip instead of fresh simulation work).
    assert first.split("runtime stats")[0] == second.split("runtime stats")[0]
    assert "1 resumed" in second


@pytest.mark.parametrize(
    "spec",
    ["bogus=1", "crash=banana", "crash=2.0", "crash"],
)
def test_bad_chaos_spec_is_clean_one_line_error(spec, capsys):
    rc = main(["table6", "s27", "--no-cache", "--chaos", spec])
    captured = capsys.readouterr()
    assert rc == 1
    assert "Traceback" not in captured.err
    err_lines = [line for line in captured.err.splitlines() if line]
    assert len(err_lines) == 1
    assert err_lines[0].startswith("repro: error:")


def test_sweep_interrupt_exits_130(monkeypatch, capsys):
    def interrupted(*args, **kwargs):
        raise SweepInterrupted("SIGINT")

    monkeypatch.setattr(repro.flows, "table6_rows", interrupted)
    rc = main(["table6", "s27", "--no-cache"])
    captured = capsys.readouterr()
    assert rc == 130
    assert "interrupted" in captured.err
    assert "--resume" in captured.err
    assert "Traceback" not in captured.err


def test_tgen_mode_is_validated_before_any_compilation():
    # The circuit name does not even exist: with the early gate the
    # configuration error wins, proving validation runs before circuit
    # loading/compilation.
    with pytest.raises(ReproError, match="unknown tgen_mode"):
        run_full_flow("no-such-circuit", FlowConfig(tgen_mode="bogus"))


def test_tgen_mode_error_lists_valid_modes():
    with pytest.raises(ReproError, match="random") as excinfo:
        run_full_flow("s27", FlowConfig(tgen_mode="typo"))
    assert "hybrid" in str(excinfo.value)
