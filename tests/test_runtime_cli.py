"""CLI behaviour added with the runtime layer: ``--version``, the
runtime flags, and clean one-line errors for unknown circuits."""

from __future__ import annotations

import pytest

from repro import __version__
from repro.cli import main
from repro.flows import clear_cache


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro {__version__}" in capsys.readouterr().out


@pytest.mark.parametrize(
    "argv",
    [
        ["flow", "nosuch"],
        ["table6", "nosuch"],
        ["tradeoff", "nosuch"],
    ],
)
def test_unknown_circuit_is_clean_one_line_error(argv, capsys):
    rc = main(argv)
    captured = capsys.readouterr()
    assert rc != 0
    assert "Traceback" not in captured.err
    err_lines = [line for line in captured.err.splitlines() if line]
    assert len(err_lines) == 1
    assert err_lines[0].startswith("repro: error:")
    assert "nosuch" in err_lines[0]


def test_missing_bench_file_is_clean_error(capsys):
    rc = main(["flow", "no/such/file.bench"])
    captured = capsys.readouterr()
    assert rc != 0
    assert "Traceback" not in captured.err
    assert captured.err.startswith("repro: error:")


def test_flow_with_runtime_flags(tmp_path, capsys):
    rc = main(
        [
            "flow",
            "s27",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path),
            "--stats",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "s27" in out
    assert "runtime stats" in out
    assert "workers" in out
    assert len(list(tmp_path.glob("*.json"))) > 0, "cache must be populated"


def test_flow_no_cache(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    rc = main(["flow", "s27", "--no-cache"])
    assert rc == 0
    assert list(tmp_path.glob("*.json")) == []


def test_table6_with_stats(tmp_path, capsys):
    clear_cache()
    try:
        rc = main(
            ["table6", "s27", "--cache-dir", str(tmp_path), "--stats"]
        )
    finally:
        clear_cache()
    out = capsys.readouterr().out
    assert rc == 0
    assert "Table 6" in out
    assert "runtime stats" in out
