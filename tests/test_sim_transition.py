"""Tests for transition (gross-delay) fault simulation.

The golden reference: replace the fault site with a primary input and
drive it with the delayed value sequence computed from the good trace
— an independent path through the logic simulator.
"""

from __future__ import annotations

import pytest

from repro.circuit import Circuit, CircuitBuilder
from repro.circuit.gates import Gate, GateType
from repro.errors import FaultModelError
from repro.sim import LogicSimulator, V0, V1, VX
from repro.sim.transition import (
    TransitionFault,
    TransitionFaultSimulator,
    _forced_value,
    all_transition_faults,
)
from repro.util.rng import DeterministicRng


class TestModel:
    def test_forced_value_slow_to_rise(self):
        f = TransitionFault("n", 1)
        assert _forced_value(f, V1, V0) == V0  # rising edge delayed
        assert _forced_value(f, V1, V1) == V1  # steady high passes
        assert _forced_value(f, V0, V1) == V0  # falling edge unaffected
        assert _forced_value(f, V1, VX) == VX
        assert _forced_value(f, V0, VX) == V0  # controlling 0

    def test_forced_value_slow_to_fall(self):
        f = TransitionFault("n", 0)
        assert _forced_value(f, V0, V1) == V1  # falling edge delayed
        assert _forced_value(f, V0, V0) == V0
        assert _forced_value(f, V1, V0) == V1
        assert _forced_value(f, VX, V1) == V1  # controlling 1

    def test_bad_polarity(self):
        with pytest.raises(FaultModelError):
            TransitionFault("n", 2)

    def test_universe(self, s27):
        faults = all_transition_faults(s27)
        assert len(faults) == 2 * 17
        assert str(TransitionFault("G8", 1)) == "G8/STR"


def _reference_detection(circuit: Circuit, fault: TransitionFault, stimulus):
    """Golden detection time via stepwise site-as-input replacement.

    The faulty circuit cuts the site into an extra input and adds a
    duplicated *driver* (``__drv``) computing the site's original
    function, so the delayed value can be derived from the faulty
    machine itself — the exact gross-delay semantics.
    """
    good = LogicSimulator(circuit).run(stimulus)

    site_gate = circuit.gate(fault.net)
    gates = []
    for net, gate in circuit.gates.items():
        if net == fault.net:
            gates.append(Gate(net, GateType.INPUT, ()))
        else:
            gates.append(gate)
    if site_gate.gtype is GateType.INPUT:
        drv_of = fault.net  # the driver is the applied PI value itself
    else:
        gates.append(Gate("__drv", site_gate.gtype, site_gate.fanins))
        drv_of = "__drv"
    faulty = Circuit("faulty", gates, circuit.outputs)
    sim = LogicSimulator(faulty)
    comp_index = {name: i for i, name in enumerate(faulty.nets)}
    drv_idx = comp_index[drv_of]
    d_indices = [
        comp_index[faulty.gate(flop).fanins[0]] for flop in faulty.flops
    ]

    state = [VX] * len(faulty.flops)
    prev_drv = VX
    for u, row in enumerate(stimulus):
        values = dict(zip(circuit.inputs, row))
        if site_gate.gtype is GateType.INPUT:
            # The driver of a PI site is the applied stimulus itself.
            drv = values[fault.net]
        else:
            # Probe: the driver does not depend on the site input
            # (no combinational cycles), so any site value works.
            values[fault.net] = VX
            probe_row = tuple(values[name] for name in faulty.inputs)
            probe = sim.run(
                [probe_row], initial_state=state, record_nets=True
            )
            drv = probe.nets[0][drv_idx]

        values[fault.net] = _forced_value(fault, drv, prev_drv)
        real_row = tuple(values[name] for name in faulty.inputs)
        real = sim.run([real_row], initial_state=state, record_nets=True)

        for g, b in zip(good.outputs[u], real.outputs[0]):
            if g in (V0, V1) and b in (V0, V1) and g != b:
                return u
        state = [real.nets[0][idx] for idx in d_indices]
        prev_drv = drv
    return None


class TestAgainstReference:
    def test_s27_all_transition_faults(self, s27, paper_t):
        sim = TransitionFaultSimulator(s27)
        faults = all_transition_faults(s27)
        result = sim.run(paper_t.patterns, faults)
        for fault in faults:
            expected = _reference_detection(s27, fault, paper_t.patterns)
            actual = result.detection_time.get(fault)
            assert actual == expected, f"{fault}: got {actual}, want {expected}"

    def test_random_circuit(self):
        from repro.circuit.synth import SynthSpec, synthesize

        circuit = synthesize(SynthSpec("t", 4, 2, 3, 25, seed=99))
        rng = DeterministicRng(12)
        stimulus = [rng.bits(4) for _ in range(40)]
        faults = all_transition_faults(circuit)[:40]
        result = TransitionFaultSimulator(circuit).run(stimulus, faults)
        for fault in faults:
            expected = _reference_detection(circuit, fault, stimulus)
            assert result.detection_time.get(fault) == expected, str(fault)


class TestBehaviour:
    def test_needs_two_patterns(self):
        # A slow-to-rise on a PI-fed buffer is only detectable by a
        # 0 -> 1 sequence, never by repeated 1s from power-up... with
        # unknown history the first 1 cannot prove the transition.
        b = CircuitBuilder("buf")
        b.input("a")
        b.buf("y", "a")
        b.output("y")
        circuit = b.build()
        sim = TransitionFaultSimulator(circuit)
        fault = TransitionFault("a", 1)
        # All-ones: previous value at t=0 is X -> conservative miss;
        # subsequent 1->1 carries no transition.
        none = sim.run([(V1,), (V1,), (V1,)], [fault])
        assert fault not in none.detection_time
        # A 0 -> 1 launch detects at the capture cycle.
        hit = sim.run([(V0,), (V1,)], [fault])
        assert hit.detection_time.get(fault) == 1

    def test_weighted_01_sequence_detects_rise_and_fall(self):
        # The paper's point: a subsequence weight 01 applies rising AND
        # falling two-pattern tests forever.
        b = CircuitBuilder("buf")
        b.input("a")
        b.buf("y", "a")
        b.output("y")
        circuit = b.build()
        sim = TransitionFaultSimulator(circuit)
        from repro.core import WeightAssignment

        t_g = WeightAssignment.from_strings(["01"]).generate(6)
        result = sim.run(t_g.patterns, all_transition_faults(circuit))
        assert len(result.detection_time) == len(result.detection_time) != 0
        assert result.coverage == 1.0

    def test_unknown_net_rejected(self, s27, paper_t):
        sim = TransitionFaultSimulator(s27)
        with pytest.raises(FaultModelError):
            sim.run(paper_t.patterns, [TransitionFault("nope", 1)])

    def test_multiple_groups(self, g208):
        rng = DeterministicRng(5)
        stimulus = [rng.bits(len(g208.inputs)) for _ in range(30)]
        faults = all_transition_faults(g208)[:130]  # three groups
        whole = TransitionFaultSimulator(g208).run(stimulus, faults)
        # piecewise agreement
        sim = TransitionFaultSimulator(g208)
        for fault in faults[:20]:
            single = sim.run(stimulus, [fault])
            assert single.detection_time.get(fault) == whole.detection_time.get(fault)
