"""Factorial design construction and the local campaign driver."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignStore,
    FactorSpec,
    GridSpec,
    build_design,
    parse_grid,
    run_campaign,
)
from repro.errors import CampaignError


def test_parse_grid_types_and_order():
    grid = parse_grid("circuit=s27,g208 l_g=64,128 static_prune=on,off")
    assert grid.size == 8
    by_name = {f.name: f for f in grid.factors}
    assert by_name["circuit"].levels == ("s27", "g208")
    assert by_name["l_g"].levels == (64, 128)
    assert by_name["static_prune"].levels == (True, False)


def test_parse_grid_rejects_garbage():
    with pytest.raises(CampaignError):
        parse_grid("")
    with pytest.raises(CampaignError):
        parse_grid("l_g=64")  # no circuit factor
    with pytest.raises(CampaignError):
        parse_grid("circuit=s27 no_such_knob=1")
    with pytest.raises(CampaignError):
        parse_grid("circuit=s27 l_g=abc")
    with pytest.raises(CampaignError):
        parse_grid("circuit=s27 static_prune=maybe")
    with pytest.raises(CampaignError):
        parse_grid("circuit=s27 circuit=g208")
    with pytest.raises(CampaignError):
        parse_grid("circuit=s27 l_g=64,64")


def test_factor_spec_validation():
    with pytest.raises(CampaignError):
        FactorSpec("unknown_factor", (1,))
    with pytest.raises(CampaignError):
        FactorSpec("l_g", ())
    with pytest.raises(CampaignError):
        GridSpec((FactorSpec("l_g", (64,)),))  # circuit missing


def test_full_factorial_is_row_major_product():
    grid = parse_grid("circuit=s27 l_g=64,128 seed=1,2")
    design = build_design(grid)
    assert [p.index for p in design] == [0, 1, 2, 3]
    assert [(p.factors["l_g"], p.factors["seed"]) for p in design] == [
        (64, 1), (64, 2), (128, 1), (128, 2),
    ]


def test_fractional_design_keeps_stable_indices():
    grid = parse_grid("circuit=s27 l_g=64,128 seed=1,2")
    half = build_design(grid, fraction=2)
    full = {p.index: p.factors for p in build_design(grid)}
    assert len(half) == 2
    for point in half:
        assert full[point.index] == point.factors
    # Extreme fractions still keep the all-low-levels corner point.
    (corner,) = build_design(grid, fraction=100)
    assert corner.index == 0
    with pytest.raises(CampaignError):
        build_design(grid, fraction=0)


def test_design_point_builds_job_spec_with_overrides():
    grid = parse_grid("circuit=s27 l_g=64")
    (point,) = build_design(grid)
    spec = point.job_spec(tgen_max_len=256, compaction_sims=8)
    assert spec.circuit == "s27" and spec.l_g == 64
    assert spec.tgen_max_len == 256
    # The factor beats the override on conflict.
    spec2 = point.job_spec(l_g=4096)
    assert spec2.l_g == 64
    with pytest.raises(CampaignError):
        point.job_spec(tgen_max_len=-5)


def test_run_campaign_local_ingests_everything(tmp_path):
    store = CampaignStore(tmp_path / "c.db")
    grid = parse_grid("circuit=s27 l_g=64,128")
    run = run_campaign(
        store,
        grid,
        spec_overrides=dict(tgen_max_len=200, compaction_sims=4),
    )
    assert run.campaign == "campaign"
    assert run.done == 2 and not run.failed
    rows = store.query_table6(campaign="campaign")
    assert len(rows) == 2
    assert [row["point"] for row in rows] == [0, 1]
    for row in rows:
        assert row["coverage"] == pytest.approx(1.0)
        assert row["l_g"] in (64, 128)
    # Each point has phase timings and a done job record.
    assert store.query_timings(phase="procedure")
    jobs = store.query_jobs()
    assert len(jobs) == 2 and all(j["state"] == "done" for j in jobs)
    points = store.query_campaigns("campaign")
    assert [p["factors"]["l_g"] for p in points] == [64, 128]
