"""Property-based tests for the newer subsystems: scan sessions,
transition algebra, MISR linearity, and sequence file I/O."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.hw.misr import Misr
from repro.scan import ScanTest, expand_scan_session, insert_scan
from repro.scan.session import capture_cycle_indices
from repro.sim import LogicSimulator, V0, V1, VX
from repro.sim.transition import TransitionFault, _forced_value
from repro.tgen import TestSequence
from repro.tgen.io import dumps_sequence, loads_sequence

bits = st.integers(min_value=0, max_value=1)
ternary = st.sampled_from([V0, V1, VX])


class TestScanSessionProperties:
    @given(st.lists(st.tuples(
        st.tuples(bits, bits, bits),
        st.tuples(bits, bits, bits, bits),
    ), min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_every_capture_sees_its_state_and_pattern(self, raw):
        from repro.circuit import load_circuit

        circuit = load_circuit("s27")
        design = insert_scan(circuit)
        tests = [ScanTest(state, pattern) for state, pattern in raw]
        session = expand_scan_session(design, tests)
        trace = LogicSimulator(design.circuit).run(session.patterns)
        for k, test in enumerate(tests):
            capture = capture_cycle_indices(design, len(tests))[k]
            assert trace.states[capture] == test.state
            # PIs at the capture cycle are the test's pattern.
            assert session[capture][: len(circuit.inputs)] == test.pattern


class TestTransitionAlgebraProperties:
    @given(ternary, ternary)
    def test_str_is_ternary_and(self, current, previous):
        from repro.sim.values import and_reduce

        fault = TransitionFault("n", 1)
        assert _forced_value(fault, current, previous) == and_reduce(
            [current, previous]
        )

    @given(ternary, ternary)
    def test_stf_is_ternary_or(self, current, previous):
        from repro.sim.values import or_reduce

        fault = TransitionFault("n", 0)
        assert _forced_value(fault, current, previous) == or_reduce(
            [current, previous]
        )

    @given(ternary)
    def test_steady_value_passes(self, value):
        for slow_to in (0, 1):
            fault = TransitionFault("n", slow_to)
            assert _forced_value(fault, value, value) == value


class TestMisrProperties:
    @given(
        st.lists(st.tuples(bits, bits, bits), min_size=1, max_size=30),
        st.lists(st.tuples(bits, bits, bits), min_size=1, max_size=30),
    )
    @settings(max_examples=50)
    def test_linearity(self, stream_a, stream_b):
        # MISR is linear over GF(2): sig(a) XOR sig(b) == sig(a XOR b)
        # when both streams have equal length and the seed is 0.
        n = min(len(stream_a), len(stream_b))
        a = stream_a[:n]
        b = stream_b[:n]
        xored = [tuple(x ^ y for x, y in zip(ra, rb)) for ra, rb in zip(a, b)]
        sig_a = Misr(8, 3, seed=0).run(a)
        sig_b = Misr(8, 3, seed=0).run(b)
        sig_x = Misr(8, 3, seed=0).run(xored)
        assert sig_a ^ sig_b == sig_x

    @given(st.lists(st.tuples(bits, bits), min_size=1, max_size=40), st.data())
    @settings(max_examples=50)
    def test_single_flip_always_changes_signature(self, stream, data):
        # Invertible state update: one error bit can never alias.
        index = data.draw(st.integers(0, len(stream) - 1))
        channel = data.draw(st.integers(0, 1))
        flipped = [list(row) for row in stream]
        flipped[index][channel] ^= 1
        base = Misr(8, 2).run(stream)
        other = Misr(8, 2).run([tuple(r) for r in flipped])
        assert base != other


class TestSequenceIoProperties:
    @given(st.lists(st.tuples(ternary, ternary, ternary), max_size=20))
    @settings(max_examples=50)
    def test_round_trip(self, rows):
        seq = TestSequence(rows)
        assert loads_sequence(dumps_sequence(seq, comment="c")) == seq
