"""The content-addressed artifact cache: keys, hygiene, end-to-end.

Three layers are covered: key sensitivity (a key must change whenever
anything that influences the result changes), entry hygiene (corrupted
or version-mismatched entries are discarded, never trusted), and the
flow-level guarantee (a warm rerun skips nearly all full simulations
and still reproduces the cold results exactly).
"""

from __future__ import annotations

import json

import pytest

from repro.flows import flow_config_for
from repro.flows.full_flow import run_full_flow
from repro.runtime import (
    CACHE_FORMAT,
    ArtifactCache,
    CacheIntegrityWarning,
    RuntimeContext,
    circuit_fingerprint,
    faults_fingerprint,
    simulation_key,
    stimulus_fingerprint,
)
from repro.sim import FaultSimulator


# -- key sensitivity --------------------------------------------------------


def test_key_changes_with_each_ingredient(s27, g208, s27_faults, paper_t):
    base = dict(
        circuit_fp=circuit_fingerprint(s27),
        stimulus_fp=stimulus_fingerprint(paper_t.patterns),
        faults_fp=faults_fingerprint(s27_faults),
        config={"kind": "run", "record_lines": False},
    )

    def key(**overrides):
        merged = {**base, **overrides}
        return simulation_key(
            merged["circuit_fp"],
            merged["stimulus_fp"],
            merged["faults_fp"],
            merged["config"],
        )

    reference = key()
    assert key() == reference, "key must be deterministic"
    assert key(circuit_fp=circuit_fingerprint(g208)) != reference
    assert (
        key(stimulus_fp=stimulus_fingerprint(paper_t.patterns[:-1]))
        != reference
    )
    assert key(faults_fp=faults_fingerprint(s27_faults[:-1])) != reference
    assert (
        key(config={"kind": "run", "record_lines": True}) != reference
    )


def test_faults_fingerprint_is_order_insensitive(s27_faults):
    forward = faults_fingerprint(s27_faults)
    assert faults_fingerprint(list(reversed(s27_faults))) == forward


# -- entry hygiene ----------------------------------------------------------


def test_roundtrip_and_len(tmp_path):
    cache = ArtifactCache(tmp_path)
    assert cache.get("k" * 8) is None
    cache.put("k" * 8, {"detects": True})
    assert cache.get("k" * 8) == {"detects": True}
    assert len(cache) == 1
    assert cache.clear() == 1
    assert cache.get("k" * 8) is None


def test_corrupted_entry_discarded(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("abc", {"x": 1})
    path = tmp_path / "abc.json"
    path.write_text("{ not json")
    with pytest.warns(CacheIntegrityWarning):
        assert cache.get("abc") is None
    assert not path.exists(), "corrupted entry must be deleted"
    assert cache.stats.cache_discards == 1


def test_version_mismatch_discarded(tmp_path):
    cache = ArtifactCache(tmp_path)
    path = tmp_path / "abc.json"
    path.write_text(
        json.dumps(
            {"format": CACHE_FORMAT + 1, "key": "abc", "payload": {"x": 1}}
        )
    )
    with pytest.warns(CacheIntegrityWarning):
        assert cache.get("abc") is None
    assert not path.exists()


def test_key_mismatch_discarded(tmp_path):
    cache = ArtifactCache(tmp_path)
    path = tmp_path / "abc.json"
    path.write_text(
        json.dumps({"format": CACHE_FORMAT, "key": "OTHER", "payload": {}})
    )
    with pytest.warns(CacheIntegrityWarning):
        assert cache.get("abc") is None
    assert not path.exists()


def test_unusable_cache_root_degrades_gracefully(tmp_path):
    """A cache root that is an existing file (e.g. a mistyped
    ``--cache-dir``) must not raise — stores are skipped, gets miss."""
    root = tmp_path / "actually-a-file"
    root.write_text("not a directory")
    cache = ArtifactCache(root)
    cache.put("abc", {"x": 1})  # must not raise
    with pytest.warns(CacheIntegrityWarning):
        assert cache.get("abc") is None
    assert cache.stats.cache_stores == 0


def test_lru_eviction(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=200)
    for i in range(6):
        cache.put(f"key{i}", {"blob": "x" * 40})
    assert cache.stats.cache_evictions > 0
    assert len(cache) < 6
    # Survivors are the most recently written.
    assert cache.get("key5") is not None


def test_corrupted_cache_resimulates_correctly(tmp_path, s27, s27_faults, paper_t):
    expected = FaultSimulator(s27).run(paper_t.patterns, s27_faults)
    with RuntimeContext(cache_dir=tmp_path) as rt:
        sim = FaultSimulator(s27, runtime=rt)
        sim.run(paper_t.patterns, s27_faults)
    for path in tmp_path.glob("*.json"):
        path.write_text("garbage")
    with RuntimeContext(cache_dir=tmp_path) as rt:
        sim = FaultSimulator(s27, runtime=rt)
        with pytest.warns(CacheIntegrityWarning):
            result = sim.run(paper_t.patterns, s27_faults)
        assert rt.stats.full_sim_hits == 0
        assert rt.stats.full_simulations == 1
    assert result.detection_time == expected.detection_time
    assert result.undetected == expected.undetected


def test_tampered_payload_treated_as_miss(tmp_path, s27, s27_faults, paper_t):
    """A well-formed entry whose payload does not fit the request is
    never trusted: the simulator falls back to re-simulation."""
    with RuntimeContext(cache_dir=tmp_path) as rt:
        FaultSimulator(s27, runtime=rt).run(paper_t.patterns, s27_faults)
    for path in tmp_path.glob("*.json"):
        entry = json.loads(path.read_text())
        entry["payload"] = {"n_faults": 99999, "detection": []}
        path.write_text(json.dumps(entry))
    expected = FaultSimulator(s27).run(paper_t.patterns, s27_faults)
    with RuntimeContext(cache_dir=tmp_path) as rt:
        result = FaultSimulator(s27, runtime=rt).run(
            paper_t.patterns, s27_faults
        )
        assert rt.stats.full_simulations == 1
    assert result.detection_time == expected.detection_time


# -- flow-level guarantee ---------------------------------------------------


@pytest.mark.parametrize("name", ["s27", "g208"])
def test_warm_cache_skips_full_simulations(tmp_path, name):
    cfg = flow_config_for(name, l_g=64 if name != "s27" else 128)
    with RuntimeContext(cache_dir=tmp_path) as rt_cold:
        cold = run_full_flow(name, cfg, runtime=rt_cold)
    with RuntimeContext(cache_dir=tmp_path) as rt_warm:
        warm = run_full_flow(name, cfg, runtime=rt_warm)

    assert warm.table6 == cold.table6
    assert [e.assignment for e in warm.procedure.omega] == [
        e.assignment for e in cold.procedure.omega
    ]
    assert warm.procedure.detection_time == cold.procedure.detection_time
    assert warm.reverse_order.kept == cold.reverse_order.kept

    stats = rt_warm.stats
    assert stats.full_sim_hits + stats.full_simulations > 0
    assert stats.full_sim_skip_rate >= 0.9, (
        f"warm rerun skipped only {stats.full_sim_skip_rate:.0%} of full "
        "simulations"
    )


def test_cold_vs_no_cache_identical(tmp_path):
    cfg = flow_config_for("s27", l_g=128)
    plain = run_full_flow("s27", cfg)
    with RuntimeContext(cache_dir=tmp_path) as rt:
        cached = run_full_flow("s27", cfg, runtime=rt)
    assert cached.table6 == plain.table6
    assert cached.procedure.detection_time == plain.procedure.detection_time
