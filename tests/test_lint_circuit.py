"""Circuit structural rules (C family) against the defect fixtures."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.circuit import Gate, GateType, load_circuit, parse_bench
from repro.lint import (
    Severity,
    lint_bench_path,
    lint_bench_text,
    lint_circuit,
    lint_gates,
)

FIXTURES = Path(__file__).parent / "fixtures"


class TestSoftRules:
    """defects.bench builds fine; the linter still has things to say."""

    def test_fixture_is_a_valid_circuit(self):
        circuit = parse_bench(FIXTURES / "defects.bench")
        assert "q" in circuit.flops

    def test_one_finding_per_rule(self):
        report = lint_bench_path(FIXTURES / "defects.bench")
        assert sorted(report.by_rule()) == ["C006", "C007", "C008"]
        assert all(len(v) == 1 for v in report.by_rule().values())
        assert report.error_count == 0
        assert report.warning_count == 3

    def test_messages_and_locations(self):
        report = lint_bench_path(FIXTURES / "defects.bench")
        by_rule = {d.rule_id: d for d in report}
        assert by_rule["C006"].location == "dead"
        assert "'dead' (NOT) drives nothing" in by_rule["C006"].message
        assert by_rule["C007"].location == "unused"
        assert "primary input 'unused'" in by_rule["C007"].message
        assert by_rule["C008"].location == "q"
        assert "constant cone (via net 'dcone')" in by_rule["C008"].message

    def test_valid_circuit_path_agrees_with_raw_path(self):
        circuit = parse_bench(FIXTURES / "defects.bench")
        from_circuit = lint_circuit(circuit, artifact="defects")
        assert sorted(from_circuit.by_rule()) == ["C006", "C007", "C008"]

    def test_library_circuits_have_no_errors(self):
        for name in ("s27", "g208"):
            report = lint_circuit(load_circuit(name))
            assert report.error_count == 0

    def test_s27_is_clean(self):
        assert len(lint_circuit(load_circuit("s27"))) == 0


class TestHardRules:
    """broken.bench would not build; the linter reports every defect."""

    def test_all_four_defects_reported(self):
        report = lint_bench_path(FIXTURES / "broken.bench")
        assert sorted(report.by_rule()) == ["C001", "C002", "C003", "C004"]
        assert all(len(v) == 1 for v in report.by_rule().values())
        assert report.error_count == 4

    def test_messages(self):
        report = lint_bench_path(FIXTURES / "broken.bench")
        by_rule = {d.rule_id: d for d in report}
        assert "'phantom' is referenced by z" in by_rule["C001"].message
        assert "'dup' has 2 drivers" in by_rule["C002"].message
        assert "'ghost_out' is not driven" in by_rule["C003"].message
        assert "'z' is listed more than once" in by_rule["C004"].message

    def test_never_raises_on_structural_defects(self):
        # Even a netlist broken in several independent ways produces a
        # report, not an exception.
        report = lint_bench_text(
            "OUTPUT(x)\nOUTPUT(x)\ny = NOT(ghost)\ny = NOT(ghost)\n",
            "inline",
        )
        assert report.error_count >= 3


class TestCycleRule:
    def test_full_scc_membership_reported(self):
        report = lint_bench_path(FIXTURES / "cycle.bench")
        cycles = report.by_rule()["C005"]
        assert len(cycles) == 1
        message = cycles[0].message
        assert "combinational cycle through 12 nets" in message
        # every member, not a truncated prefix
        for i in range(1, 13):
            assert f"n{i:02d}" in message

    def test_large_scc_truncates_with_count(self):
        n = 100
        gates = [Gate("n000", GateType.NOT, (f"n{n - 1:03d}",))]
        gates += [
            Gate(f"n{i:03d}", GateType.NOT, (f"n{i - 1:03d}",))
            for i in range(1, n)
        ]
        report = lint_gates(gates, [], "big")
        cycles = report.by_rule()["C005"]
        assert len(cycles) == 1
        assert f"cycle through {n} nets" in cycles[0].message
        assert "… and 36 more" in cycles[0].message

    def test_two_disjoint_cycles_are_two_findings(self):
        gates = [
            Gate("a", GateType.NOT, ("b",)),
            Gate("b", GateType.NOT, ("a",)),
            Gate("c", GateType.NOT, ("d",)),
            Gate("d", GateType.NOT, ("c",)),
        ]
        report = lint_gates(gates, [], "pair")
        assert len(report.by_rule()["C005"]) == 2

    def test_self_loop_is_a_cycle(self):
        report = lint_gates([Gate("a", GateType.BUF, ("a",))], [], "loop")
        assert "C005" in report.by_rule()

    def test_dff_breaks_the_cycle(self):
        # Feedback through a flip-flop is sequential, not combinational.
        gates = [
            Gate("q", GateType.DFF, ("d",)),
            Gate("d", GateType.NOT, ("q",)),
        ]
        report = lint_gates(gates, ["q"], "seq")
        assert "C005" not in report.by_rule()


class TestParseRule:
    def test_unparseable_text_is_one_c009(self):
        report = lint_bench_text("z = FROB(a)\n", "inline")
        assert [d.rule_id for d in report] == ["C009"]
        assert report.diagnostics[0].line == 1
        assert report.diagnostics[0].severity is Severity.ERROR

    def test_arity_violation_is_c009(self):
        report = lint_bench_text("z = NOT(a, b)\n", "inline")
        assert [d.rule_id for d in report] == ["C009"]


class TestConstantFlopEdges:
    def test_self_looped_flop_is_not_constant(self):
        gates = [
            Gate("a", GateType.INPUT, ()),
            Gate("q", GateType.DFF, ("nq",)),
            Gate("nq", GateType.NOT, ("q",)),
        ]
        report = lint_gates(gates, ["q"], "osc")
        assert "C008" not in report.by_rule()

    def test_flop_fed_by_input_is_not_constant(self):
        gates = [
            Gate("a", GateType.INPUT, ()),
            Gate("q", GateType.DFF, ("a",)),
        ]
        report = lint_gates(gates, ["q"], "ok")
        assert "C008" not in report.by_rule()

    def test_flop_fed_by_constant_chain_is_flagged(self):
        gates = [
            Gate("one", GateType.CONST1, ()),
            Gate("inv", GateType.NOT, ("one",)),
            Gate("q", GateType.DFF, ("inv",)),
        ]
        report = lint_gates(gates, ["q"], "const")
        assert [d.rule_id for d in report] == ["C008"]


@pytest.mark.parametrize("name", ["s27", "g208", "g298", "g344"])
def test_shipped_circuits_lint_without_errors(name):
    report = lint_circuit(load_circuit(name))
    assert report.error_count == 0, [d.format() for d in report]
