"""Tests for ternary values and the reference logic simulator."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.errors import SimulationError
from repro.sim import LogicSimulator, V0, V1, VX
from repro.sim.values import (
    and_reduce,
    invert,
    is_binary,
    or_reduce,
    resolve_char,
    to_char,
    xor_reduce,
)


class TestTernaryScalars:
    def test_invert(self):
        assert invert(V0) == V1
        assert invert(V1) == V0
        assert invert(VX) == VX

    def test_and_controlling_zero_beats_x(self):
        assert and_reduce([V0, VX]) == V0
        assert and_reduce([VX, V1]) == VX
        assert and_reduce([V1, V1]) == V1

    def test_or_controlling_one_beats_x(self):
        assert or_reduce([V1, VX]) == V1
        assert or_reduce([VX, V0]) == VX
        assert or_reduce([V0, V0]) == V0

    def test_xor_any_x_gives_x(self):
        assert xor_reduce([V1, VX]) == VX
        assert xor_reduce([V1, V1]) == V0
        assert xor_reduce([V1, V0, V1]) == V0

    def test_is_binary(self):
        assert is_binary(V0) and is_binary(V1) and not is_binary(VX)

    def test_char_round_trip(self):
        for v in (V0, V1, VX):
            assert resolve_char(to_char(v)) == v
        assert resolve_char("X") == VX

    def test_bad_char_raises(self):
        with pytest.raises(ValueError):
            resolve_char("2")
        with pytest.raises(ValueError):
            to_char(7)


class TestLogicSimulator:
    def test_combinational_truth(self, comb_circuit):
        sim = LogicSimulator(comb_circuit)
        # y = NAND(a, OR(b, c))
        cases = {
            (V1, V1, V0): V0,
            (V1, V0, V0): V1,
            (V0, V1, V1): V1,
            (V1, VX, V0): VX,
            (V0, VX, VX): V1,  # controlling 0 on the NAND
        }
        trace = sim.run(list(cases))
        for pattern, expected in zip(cases, trace.outputs):
            assert expected == (cases[pattern],)

    def test_initial_state_is_x(self, toggle_circuit):
        sim = LogicSimulator(toggle_circuit)
        trace = sim.run([(V0,), (V1,), (V0,)])
        # q starts X; XOR with anything keeps it X forever.
        assert all(out == (VX,) for out in trace.outputs)

    def test_explicit_initial_state(self, toggle_circuit):
        sim = LogicSimulator(toggle_circuit)
        trace = sim.run([(V1,), (V1,), (V0,)], initial_state=[V0])
        # q: 0 ->1 ->0 ->0 (PO shows the present state each cycle)
        assert [o[0] for o in trace.outputs] == [V0, V1, V0]

    def test_initialization_through_and(self, settable_circuit):
        sim = LogicSimulator(settable_circuit)
        trace = sim.run([(V0, V0), (V1, V1), (V0, V0)])
        # cycle0: q = X; cycle1: q = AND(0,0) = 0; cycle2: q = AND(1,1) = 1.
        assert [o[0] for o in trace.outputs] == [VX, V0, V1]
        # nq mirrors it inverted.
        assert [o[1] for o in trace.outputs] == [VX, V1, V0]

    def test_states_in_trace(self, settable_circuit):
        trace = LogicSimulator(settable_circuit).run([(V1, V1), (V0, V0)])
        assert trace.states[0] == (VX,)
        assert trace.states[1] == (V1,)

    def test_record_nets(self, comb_circuit):
        trace = LogicSimulator(comb_circuit).run([(V1, V1, V1)], record_nets=True)
        assert len(trace.nets) == 1
        assert len(trace.nets[0]) == len(comb_circuit)

    def test_wrong_width_raises(self, comb_circuit):
        with pytest.raises(SimulationError, match="pattern has"):
            LogicSimulator(comb_circuit).run([(V1, V1)])

    def test_bad_value_raises(self, comb_circuit):
        with pytest.raises(SimulationError, match="bad ternary"):
            LogicSimulator(comb_circuit).run([(V1, V1, 5)])

    def test_wrong_state_width_raises(self, toggle_circuit):
        with pytest.raises(SimulationError, match="initial state"):
            LogicSimulator(toggle_circuit).run([(V1,)], initial_state=[V0, V0])

    def test_constants(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.const1("one")
        b.const0("zero")
        b.and_("y", "a", "one")
        b.or_("z", "a", "zero")
        b.output("y")
        b.output("z")
        trace = LogicSimulator(b.build()).run([(V1,), (V0,)])
        assert trace.outputs == ((V1, V1), (V0, V0))

    def test_xnor_and_buf(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.input("b")
        b.xnor("y", "a", "b")
        b.buf("z", "a")
        b.output("y")
        b.output("z")
        trace = LogicSimulator(b.build()).run([(V1, V1), (V1, V0), (VX, V1)])
        assert [o[0] for o in trace.outputs] == [V1, V0, VX]
        assert [o[1] for o in trace.outputs] == [V1, V1, VX]

    def test_len_of_trace(self, comb_circuit):
        trace = LogicSimulator(comb_circuit).run([(V0, V0, V0)] * 5)
        assert len(trace) == 5
