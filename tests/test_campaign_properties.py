"""Hypothesis properties of the campaign store.

Three invariants the warehouse promises:

* ingest is idempotent — re-ingesting any artifact changes nothing,
* a checkpoint journal and direct payload ingest produce the same
  store contents,
* the final store is independent of ingest order.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.campaign import CampaignStore

CIRCUITS = st.sampled_from(["s27", "g208", "s208", "x1"])

table6_rows = st.fixed_dictionaries({
    "circuit": CIRCUITS,
    "given_len": st.integers(1, 500),
    "given_det": st.integers(0, 200),
    "n_sequences": st.integers(1, 20),
    "n_subsequences": st.integers(1, 40),
    "max_length": st.integers(1, 100),
    "n_fsms": st.integers(1, 10),
    "n_fsm_outputs": st.integers(1, 20),
})

configs = st.fixed_dictionaries({
    "seed": st.integers(0, 5),
    "l_g": st.sampled_from([64, 128, 256]),
    "tgen_max_len": st.sampled_from([500, 1000]),
})

flow_payloads = st.builds(
    lambda row: {"circuit": row["circuit"], "table6": row}, table6_rows
)

flow_items = st.tuples(flow_payloads, configs)


@settings(max_examples=25, deadline=None)
@given(items=st.lists(flow_items, min_size=1, max_size=6))
def test_ingest_twice_equals_ingest_once(tmp_path_factory, items):
    base = tmp_path_factory.mktemp("prop")
    store = CampaignStore(base / "c.db")
    for payload, config in items:
        store.ingest_flow_payload(payload, config=config)
    snapshot = store.dump()
    for payload, config in items:
        report = store.ingest_flow_payload(payload, config=config)
        assert report.runs_new == 0
        assert report.table6_rows == 0
    assert store.dump() == snapshot


@settings(max_examples=25, deadline=None)
@given(items=st.lists(flow_items, min_size=1, max_size=6))
def test_ingest_order_never_changes_the_store(tmp_path_factory, items):
    base = tmp_path_factory.mktemp("prop")
    forward = CampaignStore(base / "fwd.db")
    backward = CampaignStore(base / "bwd.db")
    for payload, config in items:
        forward.ingest_flow_payload(payload, config=config)
    for payload, config in reversed(items):
        backward.ingest_flow_payload(payload, config=config)
    assert forward.dump() == backward.dump()


@settings(max_examples=20, deadline=None)
@given(rows=st.lists(table6_rows, min_size=1, max_size=5, unique_by=repr))
def test_journal_and_direct_ingest_agree(tmp_path_factory, rows):
    base = tmp_path_factory.mktemp("prop")
    journal_path = base / "journal.json"
    entries = {}
    direct = CampaignStore(base / "direct.db")
    for i, row in enumerate(rows):
        key = f"flow:{row['circuit']}:fp{i}"
        entries[key] = {"kind": "flow", "table6": row}
        direct.ingest_flow_payload(
            {"circuit": row["circuit"], "table6": dict(row)},
            source=f"{journal_path}:{key}",
            config={"config_fp": f"fp{i}"},
        )
    journal_path.write_text(json.dumps({"format": 1, "entries": entries}))
    via_journal = CampaignStore(base / "journal.db")
    via_journal.ingest_path(journal_path)
    assert via_journal.dump() == direct.dump()
