"""Dashboard determinism: byte-identical renders, well-formed SVG."""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET

from repro.campaign import (
    CampaignStore,
    payload_fingerprint,
    render_dashboard,
    render_json,
    render_text,
)


def populate(store, order=1):
    payloads = []
    for circuit, det in (("s27", 30), ("g208", 70)):
        for l_g in (64, 128):
            payloads.append(
                (
                    {
                        "circuit": circuit,
                        "table6": {
                            "circuit": circuit,
                            "given_len": 10,
                            "given_det": det,
                            "n_sequences": 2,
                            "n_subsequences": 3,
                            "max_length": 5,
                            "n_fsms": 1,
                            "n_fsm_outputs": 2,
                        },
                    },
                    {"l_g": l_g, "tgen_max_len": 1000},
                )
            )
    front = {
        "kind": "optimize-front",
        "circuit": "s27",
        "front": [
            {"coverage": 0.9, "area": 50.0, "length": 128, "detected": 29},
            {"coverage": 1.0, "area": 80.0, "length": 256, "detected": 32},
        ],
    }
    items = payloads[::order]
    for payload, config in items:
        store.ingest_flow_payload(payload, config=config, timings={
            "procedure": 0.5, "compaction": 0.25,
        })
    store.ingest_optimize_payload(front)
    for point, (payload, config) in enumerate(payloads):
        fingerprint = payload_fingerprint(
            {"kind": "flow", "payload": payload,
             **{k: config.get(k) for k in config}}
        )
        store.record_campaign_point(
            "grid", point, config, job_key=f"j{point}"
        )
    return store


def test_dashboard_bytes_identical_across_runs_and_orders(tmp_path):
    store_a = populate(CampaignStore(tmp_path / "a.db"), order=1)
    store_b = populate(CampaignStore(tmp_path / "b.db"), order=-1)
    html_a1 = render_dashboard(store_a)
    html_a2 = render_dashboard(store_a)
    html_b = render_dashboard(store_b)
    assert html_a1 == html_a2 == html_b
    assert render_json(store_a) == render_json(store_b)
    assert render_text(store_a) == render_text(store_b)


def test_dashboard_is_self_contained_html(tmp_path):
    html = render_dashboard(populate(CampaignStore(tmp_path / "c.db")))
    assert html.startswith("<!DOCTYPE html>")
    assert html.endswith("\n")
    # Zero external assets: no links, scripts, or remote references.
    # (The SVG xmlns namespace URI is an identifier, never fetched.)
    stripped = html.replace('xmlns="http://www.w3.org/2000/svg"', "")
    for needle in ("<script", "http://", "https://", "<link", "@import"):
        assert needle not in stripped, needle
    assert "<svg" in html


def test_dashboard_svgs_are_well_formed_xml(tmp_path):
    html = render_dashboard(populate(CampaignStore(tmp_path / "c.db")))
    svgs = []
    start = 0
    while True:
        lo = html.find("<svg", start)
        if lo < 0:
            break
        hi = html.index("</svg>", lo) + len("</svg>")
        svgs.append(html[lo:hi])
        start = hi
    assert len(svgs) >= 3  # coverage bars, fronts, timings, heatmap
    for svg in svgs:
        ET.fromstring(svg)


def test_render_json_payload_shape(tmp_path):
    payload = json.loads(render_json(populate(CampaignStore(tmp_path / "c.db"))))
    assert payload["format"] == "campaign-store"
    assert payload["schema_version"] == 1
    assert payload["summary"]["table6_rows"] == 4
    assert len(payload["table6"]) == 4
    assert payload["fronts"]
    assert payload["campaigns"]


def test_render_text_mentions_rows_and_campaigns(tmp_path):
    text = render_text(populate(CampaignStore(tmp_path / "c.db")))
    assert "s27" in text and "g208" in text
    assert "grid" in text
    assert text.endswith("\n")


def test_empty_store_renders_without_crashing(tmp_path):
    store = CampaignStore(tmp_path / "empty.db")
    html = render_dashboard(store)
    assert "<!DOCTYPE html>" in html
    assert render_dashboard(store) == html
    json.loads(render_json(store))
    assert render_text(store)
