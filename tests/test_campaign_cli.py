"""`repro campaign ...` CLI: happy paths and the one-line error contract."""

from __future__ import annotations

import json

from repro.campaign import CampaignStore
from repro.cli import main


def seed_store(tmp_path):
    db = tmp_path / "c.db"
    store = CampaignStore(db)
    store.ingest_flow_payload(
        {
            "circuit": "s27",
            "table6": {
                "circuit": "s27",
                "given_len": 10,
                "given_det": 32,
                "n_sequences": 2,
                "n_subsequences": 3,
                "max_length": 5,
                "n_fsms": 1,
                "n_fsm_outputs": 2,
            },
        },
        config={"l_g": 64, "tgen_max_len": 500},
    )
    return db


def test_campaign_ingest_and_query(tmp_path, capsys):
    artifact = tmp_path / "flow.json"
    artifact.write_text(json.dumps({
        "circuit": "s27",
        "table6": {
            "circuit": "s27", "given_len": 10, "given_det": 30,
            "n_sequences": 2, "n_subsequences": 3, "max_length": 5,
            "n_fsms": 1, "n_fsm_outputs": 2,
        },
    }))
    db = tmp_path / "c.db"
    rc = main(["campaign", "ingest", str(artifact), "--store", str(db)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "1 new run" in out or "runs" in out

    rc = main(["campaign", "query", "--store", str(db), "--view", "table6"])
    out = capsys.readouterr().out
    assert rc == 0 and "s27" in out

    rc = main(["campaign", "query", "--store", str(db), "--view",
               "table6", "--json"])
    rows = json.loads(capsys.readouterr().out)
    assert rc == 0 and rows[0]["circuit"] == "s27"


def test_campaign_query_summary_and_sql(tmp_path, capsys):
    db = seed_store(tmp_path)
    rc = main(["campaign", "query", "--store", str(db)])
    out = capsys.readouterr().out
    assert rc == 0 and "table6_rows" in out

    rc = main(["campaign", "query", "--store", str(db), "--sql",
               "SELECT circuit FROM table6_rows", "--json"])
    rows = json.loads(capsys.readouterr().out)
    assert rc == 0 and rows == [{"circuit": "s27"}]


def test_campaign_report_formats(tmp_path, capsys):
    db = seed_store(tmp_path)
    out_html = tmp_path / "dash.html"
    rc = main(["campaign", "report", "--store", str(db),
               "--format", "html", "--output", str(out_html)])
    assert rc == 0
    assert out_html.read_text().startswith("<!DOCTYPE html>")
    assert "wrote" in capsys.readouterr().out

    rc = main(["campaign", "report", "--store", str(db), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0 and payload["format"] == "campaign-store"

    rc = main(["campaign", "report", "--store", str(db)])
    assert rc == 0 and "s27" in capsys.readouterr().out


def test_campaign_run_local_and_suggest(tmp_path, capsys):
    db = tmp_path / "c.db"
    rc = main([
        "campaign", "run", "circuit=s27 l_g=64,128",
        "--store", str(db), "--name", "smoke",
        "--tgen-max-len", "200", "--compaction-sims", "4",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2/2" in out

    rc = main(["campaign", "suggest", "s27", "--store", str(db),
               "--target-coverage", "0.5", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["circuit"] == "s27"
    assert payload["recommendation"]


def test_campaign_errors_are_one_line(tmp_path, capsys):
    db = seed_store(tmp_path)
    cases = [
        ["campaign", "ingest", str(tmp_path / "missing.json"),
         "--store", str(tmp_path / "x.db")],
        ["campaign", "run", "circuit=s27 bogus_knob=1",
         "--store", str(tmp_path / "x.db")],
        ["campaign", "query", "--store", str(db), "--sql",
         "DROP TABLE table6_rows"],
        ["campaign", "suggest", "no-such-circuit", "--store", str(db)],
    ]
    for argv in cases:
        rc = main(argv)
        captured = capsys.readouterr()
        assert rc == 1, argv
        lines = [l for l in captured.err.splitlines() if l]
        assert len(lines) == 1 and lines[0].startswith("repro: error:"), argv


def test_campaign_without_subcommand_shows_help(capsys):
    rc = main(["campaign"])
    assert rc == 2
