"""Tests for the Quine-McCluskey minimizer, including exhaustive
correctness checks against truth tables."""

from __future__ import annotations

import pytest

from repro.hw.qm import Cube, evaluate_cubes, minimize, total_literals


def _check_equivalent(n_vars, minterms, dont_cares, cubes):
    """The SOP must be 1 on all minterms, 0 on all maxterms, anything on
    don't-cares."""
    dc = set(dont_cares)
    on = set(minterms)
    for assignment in range(1 << n_vars):
        value = evaluate_cubes(cubes, assignment)
        if assignment in on:
            assert value == 1, f"minterm {assignment} not covered"
        elif assignment not in dc:
            assert value == 0, f"maxterm {assignment} wrongly covered"


class TestCube:
    def test_covers(self):
        cube = Cube(care=0b110, value=0b100)  # x2=1, x1=0, x0=don't-care
        assert cube.covers(0b100)
        assert cube.covers(0b101)
        assert not cube.covers(0b110)

    def test_literal_count(self):
        assert Cube(care=0b1011, value=0).literal_count() == 3

    def test_to_string(self):
        assert Cube(care=0b10, value=0b10).to_string(2) == "1-"
        assert Cube(care=0b11, value=0b01).to_string(2) == "01"
        assert Cube(care=0, value=0).to_string(3) == "---"


class TestMinimize:
    def test_constant_zero(self):
        assert minimize(2, []) == []

    def test_constant_one(self):
        cubes = minimize(2, [0, 1, 2, 3])
        assert cubes == [Cube(care=0, value=0)]

    def test_constant_one_with_dontcares(self):
        cubes = minimize(2, [0, 3], [1, 2])
        assert cubes == [Cube(care=0, value=0)]

    def test_single_minterm(self):
        cubes = minimize(2, [3])
        assert len(cubes) == 1
        assert cubes[0].care == 0b11 and cubes[0].value == 0b11

    def test_classic_xor_not_reducible(self):
        cubes = minimize(2, [1, 2])
        assert len(cubes) == 2
        _check_equivalent(2, [1, 2], [], cubes)

    def test_adjacent_merge(self):
        # f = m0 + m1 over 2 vars -> single cube x1'.
        cubes = minimize(2, [0, 1])
        assert len(cubes) == 1
        assert cubes[0].care == 0b10 and cubes[0].value == 0

    def test_dont_cares_enable_merging(self):
        # f(x1,x0): ON={0}, DC={1,2,3} -> constant 1.
        cubes = minimize(2, [0], [1, 2, 3])
        assert cubes == [Cube(care=0, value=0)]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            minimize(2, [4])

    @pytest.mark.parametrize("n_vars", [2, 3, 4])
    def test_exhaustive_small_functions(self, n_vars):
        # Every function of n_vars variables (sampled for n=4).
        space = 1 << n_vars
        n_functions = 1 << space
        step = 1 if n_functions <= 256 else max(1, n_functions // 256)
        for f in range(0, n_functions, step):
            minterms = [m for m in range(space) if (f >> m) & 1]
            cubes = minimize(n_vars, minterms)
            _check_equivalent(n_vars, minterms, [], cubes)

    def test_exhaustive_with_dontcares(self):
        # All (on, dc) partitions over 3 variables, sampled.
        space = 8
        for f in range(0, 1 << space, 7):
            for d in range(0, 1 << space, 13):
                on = [m for m in range(space) if (f >> m) & 1 and not (d >> m) & 1]
                dc = [m for m in range(space) if (d >> m) & 1 and m not in on]
                cubes = minimize(3, on, dc)
                _check_equivalent(3, on, dc, cubes)

    def test_minimality_on_known_example(self):
        # f = Σ(0,1,2,5,6,7) over 3 vars minimizes to 3 cubes or fewer
        # (known result: x1'x0' + x1 x0 ... classic = 3 terms of 2 lits).
        cubes = minimize(3, [0, 1, 2, 5, 6, 7])
        _check_equivalent(3, [0, 1, 2, 5, 6, 7], [], cubes)
        assert len(cubes) <= 3
        assert total_literals(cubes) <= 6

    def test_fsm_output_shape(self):
        # The exact shape used by weight FSMs: L_S = 5, 3 unreachable
        # don't-care states.
        minterms = [3]  # subsequence 00010
        cubes = minimize(3, minterms, [5, 6, 7])
        _check_equivalent(3, minterms, [5, 6, 7], cubes)


class TestTotalLiterals:
    def test_counts(self):
        cubes = [Cube(care=0b11, value=0b01), Cube(care=0b1, value=0b1)]
        assert total_literals(cubes) == 3
