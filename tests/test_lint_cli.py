"""The ``repro lint`` command and the runtime lint gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.circuit import CircuitBuilder, GateType
from repro.cli import main
from repro.errors import LintError
from repro.lint import REGISTRY
from repro.runtime import RuntimeContext

FIXTURES = Path(__file__).parent / "fixtures"


class TestLintCommand:
    def test_clean_library_circuit_exits_zero(self, capsys):
        rc = main(["lint", "s27"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 findings" in out

    def test_broken_bench_exits_one(self, capsys):
        rc = main(["lint", str(FIXTURES / "broken.bench")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "error[C001]" in out
        assert "4 error" in out

    def test_warnings_do_not_gate_by_default(self, capsys):
        rc = main(["lint", str(FIXTURES / "defects.bench")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "warning[C008]" in out

    def test_fail_on_warning(self):
        rc = main(["lint", str(FIXTURES / "defects.bench"),
                   "--fail-on", "warning"])
        assert rc == 1

    def test_fail_on_never(self):
        rc = main(["lint", str(FIXTURES / "broken.bench"),
                   "--fail-on", "never"])
        assert rc == 0

    def test_python_target(self, capsys):
        rc = main(["lint", str(FIXTURES / "defect_module.py")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "error[D101]" in out

    def test_directory_target(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "ok.py").write_text("x = 1\n")
        rc = main(["lint", str(pkg)])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out

    def test_unknown_target_is_clean_error(self, capsys):
        rc = main(["lint", "nosuchthing"])
        err = capsys.readouterr().err
        assert rc == 1
        assert err.startswith("repro: error:")
        assert "nosuchthing" in err

    def test_no_target_is_clean_error(self, capsys):
        rc = main(["lint"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "nothing to lint" in err

    def test_unparseable_python_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        rc = main(["lint", str(bad)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "not parseable" in err
        assert "Traceback" not in err

    def test_list_rules_prints_catalogue(self, capsys):
        rc = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in REGISTRY:
            assert rule_id in out

    def test_all_circuits_and_self_are_error_free(self, capsys):
        # The shipped library and the package itself must pass the
        # same gate CI enforces.
        rc = main(["lint", "--all-circuits", "--self"])
        assert rc == 0

    def test_sarif_output_file(self, tmp_path, capsys):
        out_path = tmp_path / "lint.sarif"
        rc = main(["lint", str(FIXTURES / "defects.bench"),
                   "--format", "sarif", "--output", str(out_path)])
        assert rc == 0
        log = json.loads(out_path.read_text())
        assert log["version"] == "2.1.0"
        assert len(log["runs"][0]["results"]) == 3
        assert f"wrote {out_path}" in capsys.readouterr().out

    def test_json_format_stdout(self, capsys):
        rc = main(["lint", str(FIXTURES / "defects.bench"),
                   "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["warnings"] == 3


class TestSaveTpgAndLintDesign:
    def test_flow_save_tpg_then_lint(self, tmp_path, capsys):
        design_path = tmp_path / "design.json"
        rc = main(["flow", "s27", "--lg", "16", "--no-cache",
                   "--save-tpg", str(design_path)])
        assert rc == 0
        assert design_path.exists()
        capsys.readouterr()
        rc = main(["lint", str(design_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error" in out


def _defective_circuit():
    builder = CircuitBuilder("defective")
    builder.input("a")
    builder.input("unused")
    builder.gate("one", GateType.CONST1, )
    builder.gate("inv", GateType.NOT, "one")
    builder.gate("q", GateType.DFF, "inv")
    builder.gate("z", GateType.AND, "a", "q")
    builder.output("z")
    return builder.build()


class TestRuntimeGate:
    def test_off_by_default(self):
        with RuntimeContext() as rt:
            assert rt.lint_policy == "off"
            assert rt.lint_circuit(_defective_circuit()) is None
            assert rt.stats.lint_diagnostics == 0

    def test_invalid_policy_rejected(self):
        with pytest.raises(LintError, match="unknown lint policy"):
            RuntimeContext(lint="loose")

    def test_warn_records_stats(self):
        with RuntimeContext(lint="warn") as rt:
            report = rt.lint_circuit(_defective_circuit())
            assert report is not None
            assert len(report) == 2  # unused input + constant flop
            assert rt.stats.lint_diagnostics == 2
            assert rt.stats.lint_errors == 0
            assert "lint" in rt.stats.format()

    def test_strict_passes_warnings(self):
        # Warnings never trip the strict gate; only errors do.
        with RuntimeContext(lint="strict") as rt:
            report = rt.lint_circuit(_defective_circuit())
            assert report is not None

    def test_strict_raises_on_error_findings(self, tmp_path):
        import dataclasses

        from repro.core import WeightAssignment
        from repro.hw import synthesize_tpg

        design = synthesize_tpg(
            [WeightAssignment.from_strings(["01", "1"])], 8
        )
        bad = dataclasses.replace(design, l_g=16)
        with RuntimeContext(lint="strict") as rt:
            with pytest.raises(LintError, match="strict lint gate"):
                rt.lint_design(bad)
            assert rt.stats.lint_errors == 1

    def test_flow_cli_lint_flag(self, capsys):
        rc = main(["flow", "s27", "--lg", "16", "--no-cache",
                   "--lint", "strict", "--stats"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lint" in out
