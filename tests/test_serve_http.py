"""HTTP layer and in-process server integration tests.

The parsing/routing units run against hand-fed byte streams; the
integration tests boot a real :class:`ServerThread` on an ephemeral
port and drive it with :class:`ServeClient` — including the
byte-identity check between a served result and the same flow run
directly, and the 429 + ``Retry-After`` contract of a rate-limited
client.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import RateLimited, ServeError
from repro.flows.full_flow import run_full_flow
from repro.serve import (
    ServeClient,
    ServerConfig,
    ServerThread,
    flow_result_payload,
    render_result,
)
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    Router,
    read_request,
)
from repro.serve.job import JobSpec
from repro.serve.server import CampaignServer

#: A spec small enough that a full flow finishes in well under a
#: second — integration tests run real flows, not mocks.
FAST = dict(circuit="s27", tgen_max_len=256, compaction_sims=8, l_g=64)


def fast_spec(seed=1, **overrides):
    return JobSpec(**{**FAST, "seed": seed, **overrides})


# -- request parsing ---------------------------------------------------------


def parse(raw: bytes):
    async def feed_and_read():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(feed_and_read())


def test_read_request_parses_method_path_headers_body():
    request = parse(
        b"POST /jobs?x=1 HTTP/1.1\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: 2\r\n\r\n{}"
    )
    assert request.method == "POST"
    assert request.path == "/jobs"  # query string stripped
    assert request.headers["content-type"] == "application/json"
    assert request.json() == {}


def test_read_request_empty_connection_is_none():
    assert parse(b"") is None


@pytest.mark.parametrize(
    "raw",
    [
        b"NONSENSE\r\n\r\n",  # malformed request line
        b"GET /jobs SPDY/3\r\n\r\n",  # not HTTP/1.x
        b"GET /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        b"GET /jobs HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        b"GET /jobs HTT",  # truncated head
    ],
    ids=["line", "version", "length-nan", "length-neg", "body", "head"],
)
def test_read_request_rejects_malformed_framing(raw):
    with pytest.raises(ServeError):
        parse(raw)


def test_request_json_rejects_garbage_body():
    request = HttpRequest(
        method="POST", path="/jobs", headers={}, body=b"{nope"
    )
    with pytest.raises(ServeError):
        request.json()


# -- responses ---------------------------------------------------------------


def test_error_response_carries_retry_after_header_and_field():
    response = HttpResponse.error(429, "slow down", retry_after_s=0.3)
    assert response.headers["Retry-After"] == "1"  # delta-seconds, ceiled
    payload = json.loads(response.body)
    assert payload["retry_after_s"] == 0.3  # precise value in the body
    rendered = response.render()
    assert rendered.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
    assert b"Retry-After: 1\r\n" in rendered
    assert b"Connection: close\r\n" in rendered


def test_router_distinguishes_404_from_405():
    router = Router()

    async def handler(request):
        return HttpResponse.json(200, {"key": request.params["key"]})

    router.add("GET", "/jobs/{key}", handler)
    found, params, known = router.resolve("GET", "/jobs/abc123")
    assert found is not None and params == {"key": "abc123"} and known
    missing, _, known = router.resolve("GET", "/nowhere")
    assert missing is None and not known  # 404
    wrong_method, _, known = router.resolve("PUT", "/jobs/abc123")
    assert wrong_method is None and known  # 405


# -- handlers without a socket ----------------------------------------------


def _call(server, handler, path="/", method="GET", body=b"", params=None):
    request = HttpRequest(method=method, path=path, headers={}, body=body)
    request.params = params or {}
    return asyncio.run(handler(request))


def test_handlers_cover_cancel_conflict_and_404(tmp_path):
    server = CampaignServer(ServerConfig(state_dir=tmp_path))
    # Scheduler is deliberately not started: the queue holds still.
    body = json.dumps(fast_spec(seed=1, priority=2).to_dict()).encode()
    accepted = _call(server, server._post_jobs, method="POST", body=body)
    assert accepted.status == 202
    key = json.loads(accepted.body)["key"]

    assert _call(server, server._get_job, params={"key": key}).status == 200
    assert (
        _call(server, server._get_job, params={"key": "feed"}).status == 404
    )
    # A queued job has no result yet.
    conflict = _call(server, server._get_result, params={"key": key})
    assert conflict.status == 409

    cancelled = _call(
        server, server._delete_job, method="DELETE", params={"key": key}
    )
    assert cancelled.status == 200
    again = _call(
        server, server._delete_job, method="DELETE", params={"key": key}
    )
    assert again.status == 409  # already terminal

    bad = json.dumps({"circuit": "s27", "bogus_field": 1}).encode()
    with pytest.raises(ServeError):
        _call(server, server._post_jobs, method="POST", body=bad)
    server.contexts.close()


# -- live server -------------------------------------------------------------


def test_server_round_trip_result_bytes_identical(tmp_path):
    config = ServerConfig(state_dir=tmp_path / "state", port=0)
    with ServerThread(config) as url:
        client = ServeClient(url)
        health = client.healthz()
        assert health["status"] == "ok"

        spec = fast_spec(seed=11)
        record = client.submit(spec)
        assert record["created"] is True and record["state"] == "queued"
        key = record["key"]

        done = client.wait(key, timeout_s=60.0)
        assert done["state"] == "done"
        assert done["stats"]["full_simulations"] > 0

        served = client.result_bytes(key)
        flow = run_full_flow(spec.circuit, spec.flow_config())
        assert served == render_result(flow_result_payload(flow))

        # Resubmit: dedup onto the finished job, result still there.
        dup = client.submit(spec)
        assert dup["created"] is False and dup["state"] == "done"

        trace = json.loads(client.trace_bytes(key))
        assert set(trace) == {"spans", "events"}

        def span_names(node):
            yield node["name"]
            for child in node.get("children", ()):
                yield from span_names(child)

        names = set(span_names(trace["spans"]))
        assert "job" in names and "full_flow" in names

        listed = client.jobs()
        assert [j["key"] for j in listed] == [key]

        metrics = client.metrics()
        assert metrics["counters"]["completed"] == 1
        assert metrics["latency"]["submit_to_complete"]["count"] == 1
        assert metrics["queue"]["jobs"] == {"done": 1}


def test_rate_limited_client_sees_429_with_retry_after(tmp_path):
    config = ServerConfig(
        state_dir=tmp_path / "state", port=0, rate_per_s=0.5, burst=1
    )
    with ServerThread(config) as url:
        client = ServeClient(url, client_id="chatty")
        client.submit(fast_spec(seed=1))
        with pytest.raises(RateLimited) as info:
            client.submit(fast_spec(seed=2))
        assert info.value.status == 429
        assert info.value.retry_after_s > 0.0

        # The raw response carries the machine-readable header too.
        status, headers, _body = client._request(
            "POST", "/jobs", fast_spec(seed=3, client="chatty").to_dict()
        )
        assert status == 429
        assert int(headers["retry-after"]) >= 1

        # An independent client is not punished for chatty's burst.
        other = ServeClient(url, client_id="quiet")
        assert other.submit(fast_spec(seed=2))["created"] is True


def test_drain_gate_refuses_new_submissions_while_finishing(tmp_path):
    config = ServerConfig(state_dir=tmp_path / "state", port=0)
    thread = ServerThread(config)
    url = thread.start().url
    # Short timeout: if the drain wins the race against the probe
    # requests below, the test should fail fast, not after 30 s.
    client = ServeClient(url, timeout_s=3.0)
    key = client.submit(fast_spec(seed=21))["key"]
    thread.server.request_drain()
    # While draining, the listener still answers: health says so and
    # new submissions bounce with 503.  (If the drain outraces these
    # requests the connection is refused instead — equally correct.)
    try:
        health = client.healthz()
        assert health["status"] == "draining"
        with pytest.raises(RateLimited) as info:
            client.submit_with_backoff(fast_spec(seed=22), max_wait_s=0.0)
        assert info.value.status == 503
    except ServeError:
        pass
    thread.stop()
    # The accepted job was finished (or persisted queued) — never lost.
    from repro.serve.queue import JobQueue

    queue = JobQueue(tmp_path / "state" / "queue" / "journal.json")
    job = queue.get(key)
    assert job is not None
    assert job.state in ("done", "queued")
