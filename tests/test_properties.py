"""Property-based tests (hypothesis) on the core data structures and
invariants: weight algebra, mining, QM minimization, sequence editing,
bench round-trips, LFSR statistics, and simulator agreement."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.circuit import parse_bench_text, write_bench
from repro.circuit.synth import SynthSpec, synthesize
from repro.core import Weight, WeightAssignment, mine_weight
from repro.hw.qm import evaluate_cubes, minimize
from repro.sim import FaultSimulator, IncrementalFaultSimulator, collapse_faults
from repro.tgen import TestSequence

bits = st.integers(min_value=0, max_value=1)
bit_lists = st.lists(bits, min_size=1, max_size=12)


class TestWeightProperties:
    @given(bit_lists, st.integers(min_value=0, max_value=40))
    def test_expansion_is_periodic(self, alpha, length):
        w = Weight(alpha)
        expansion = w.expand(length)
        for u, value in enumerate(expansion):
            assert value == alpha[u % len(alpha)]

    @given(bit_lists)
    def test_canonical_idempotent(self, alpha):
        w = Weight(alpha)
        canon = w.canonical()
        assert canon.canonical() == canon

    @given(bit_lists)
    def test_canonical_preserves_expansion(self, alpha):
        w = Weight(alpha)
        canon = w.canonical()
        assert w.expand(36) == canon.expand(36)

    @given(bit_lists, st.integers(min_value=1, max_value=4))
    def test_repetition_is_expansion_equivalent(self, alpha, reps):
        w = Weight(alpha)
        repeated = Weight(tuple(alpha) * reps)
        assert w.same_expansion(repeated)
        assert repeated.canonical() == w.canonical()

    @given(bit_lists)
    def test_match_count_bounded(self, alpha):
        w = Weight((0, 1))
        assert 0 <= w.match_count(alpha) <= len(alpha)

    @given(st.lists(bits, min_size=1, max_size=20), st.data())
    def test_mining_reproduces_tail(self, t_i, data):
        u = data.draw(st.integers(min_value=0, max_value=len(t_i) - 1))
        length = data.draw(st.integers(min_value=1, max_value=u + 1))
        w = mine_weight(t_i, u, length)
        expansion = w.expand(u + 1)
        for up in range(u - length + 1, u + 1):
            assert expansion[up] == t_i[up]
        assert w.matches_tail(t_i, u)

    @given(st.lists(bits, min_size=1, max_size=20), st.data())
    def test_full_length_mining_is_identity(self, t_i, data):
        u = data.draw(st.integers(min_value=0, max_value=len(t_i) - 1))
        w = mine_weight(t_i, u, u + 1)
        assert list(w.expand(u + 1)) == t_i[: u + 1]


class TestAssignmentProperties:
    @given(
        st.lists(bit_lists, min_size=1, max_size=5),
        st.integers(min_value=0, max_value=30),
    )
    def test_generate_columns_independent(self, alphas, length):
        assignment = WeightAssignment([Weight(a) for a in alphas])
        t_g = assignment.generate(length)
        for i, alpha in enumerate(alphas):
            assert t_g.restrict(i) == Weight(alpha).expand(length)


class TestQmProperties:
    @given(
        st.integers(min_value=1, max_value=4),
        st.data(),
    )
    @settings(max_examples=200)
    def test_minimized_function_equivalent(self, n_vars, data):
        space = 1 << n_vars
        on = data.draw(st.sets(st.integers(0, space - 1)))
        dc = data.draw(st.sets(st.integers(0, space - 1)))
        dc = dc - on
        cubes = minimize(n_vars, sorted(on), sorted(dc))
        for assignment in range(space):
            value = evaluate_cubes(cubes, assignment)
            if assignment in on:
                assert value == 1
            elif assignment not in dc:
                assert value == 0


class TestSequenceProperties:
    @given(st.lists(st.lists(bits, min_size=3, max_size=3), min_size=0, max_size=15))
    def test_string_round_trip(self, rows):
        seq = TestSequence(rows)
        assert TestSequence.from_strings(seq.to_strings()) == seq

    @given(
        st.lists(st.lists(bits, min_size=2, max_size=2), min_size=1, max_size=10),
        st.data(),
    )
    def test_drop_then_length(self, rows, data):
        seq = TestSequence(rows)
        u = data.draw(st.integers(min_value=0, max_value=len(seq) - 1))
        dropped = seq.drop_time_unit(u)
        assert len(dropped) == len(seq) - 1

    @given(st.lists(st.lists(bits, min_size=2, max_size=2), min_size=0, max_size=10))
    def test_concat_length(self, rows):
        seq = TestSequence(rows)
        assert len(seq.concat(seq)) == 2 * len(seq)


class TestBenchRoundTripProperty:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_synthetic_circuits_round_trip(self, seed):
        circuit = synthesize(SynthSpec("t", 3, 2, 2, 15, seed=seed))
        again = parse_bench_text(write_bench(circuit), circuit.name)
        assert again.inputs == circuit.inputs
        assert again.outputs == circuit.outputs
        assert {n: (g.gtype, g.fanins) for n, g in again.gates.items()} == {
            n: (g.gtype, g.fanins) for n, g in circuit.gates.items()
        }


class TestSimulatorAgreementProperty:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.lists(st.lists(bits, min_size=4, max_size=4), min_size=1, max_size=15),
    )
    @settings(max_examples=25, deadline=None)
    def test_incremental_equals_batch(self, seed, stimulus):
        circuit = synthesize(SynthSpec("t", 4, 2, 3, 20, seed=seed))
        faults = collapse_faults(circuit)[:70]  # spans two groups
        batch = FaultSimulator(circuit).run(stimulus, faults).detection_time
        inc = IncrementalFaultSimulator(circuit, faults)
        stepped = {}
        for u, pattern in enumerate(stimulus):
            for fault in inc.step(pattern):
                stepped[fault] = u
        assert stepped == batch

    @given(
        st.lists(st.lists(bits, min_size=4, max_size=4), min_size=1, max_size=12),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_weighted_sequence_detection_subset_of_target(self, stimulus, data):
        # Any weighted sequence detects a subset of the collapsed list —
        # sanity invariant exercising the full weight pipeline on s27.
        from repro.circuit import load_circuit

        circuit = load_circuit("s27")
        faults = collapse_faults(circuit)
        alphas = [
            data.draw(bit_lists) for _ in range(len(circuit.inputs))
        ]
        assignment = WeightAssignment([Weight(a) for a in alphas])
        t_g = assignment.generate(24)
        result = FaultSimulator(circuit).run(t_g.patterns, faults)
        assert set(result.detection_time) <= set(faults)
        for fault, u in result.detection_time.items():
            assert 0 <= u < 24
