"""TPG hardware rules (T family) and saved-design linting."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import WeightAssignment
from repro.core.weight import Weight
from repro.errors import LintError
from repro.hw import LfsrSpec, load_design, save_design, synthesize_tpg
from repro.hw.fsm import WeightFsm, build_weight_fsms
from repro.hw.verify import verify_tpg
from repro.lint import lint_design, lint_design_path


def _design(strings, l_g=8, lfsr=None):
    return synthesize_tpg(
        [WeightAssignment.from_strings(strings)], l_g, lfsr=lfsr
    )


class TestCleanDesigns:
    def test_synthesized_design_has_no_errors(self):
        report = lint_design(_design(["01", "1", "100"]))
        assert report.error_count == 0
        assert report.warning_count == 0

    def test_default_artifact_names_the_circuit(self):
        report = lint_design(_design(["100"]))
        assert all(d.artifact.startswith("tpg:") for d in report)

    def test_t009_is_informational_only(self):
        # L_S=3 needs 2 state bits, leaving one encoded state
        # unreachable: reported as a note, never gating anything.
        report = lint_design(_design(["100"]))
        notes = report.by_rule()["T009"]
        assert len(notes) == 1
        assert "1 of 4 encoded states unreachable" in notes[0].message


class TestOmegaRules:
    def test_mixed_width_t001(self):
        design = _design(["01", "1"])
        bad = dataclasses.replace(design, assignments=(
            WeightAssignment.from_strings(["01", "1"]),
            WeightAssignment.from_strings(["1"]),
        ))
        report = lint_design(bad)
        assert len(report.by_rule()["T001"]) == 1
        assert "[1, 2]" in report.by_rule()["T001"][0].message

    def test_port_width_mismatch_t002(self):
        design = _design(["01", "01"])
        bad = dataclasses.replace(design, assignments=(
            WeightAssignment.from_strings(["01"]),
        ))
        report = lint_design(bad)
        findings = report.by_rule()["T002"]
        assert len(findings) == 1
        assert "2 output ports for width-1" in findings[0].message

    def test_missing_fsm_output_t003(self):
        design = _design(["01", "01"])
        bad = dataclasses.replace(design, assignments=(
            WeightAssignment.from_strings(["01", "100"]),
        ))
        report = lint_design(bad)
        findings = report.by_rule()["T003"]
        assert len(findings) == 1
        assert findings[0].location == "assignment0/input1"

    def test_missing_lfsr_t008(self):
        design = _design(["1", "1"])
        bad = dataclasses.replace(design, assignments=(
            WeightAssignment.from_strings(["R", "1"]),
        ))
        report = lint_design(bad)
        assert len(report.by_rule()["T008"]) == 1

    def test_random_weights_with_lfsr_are_fine(self):
        design = synthesize_tpg(
            [WeightAssignment.from_strings(["R", "1"])],
            l_g=8,
            lfsr=LfsrSpec(width=4, seed=0b1011),
        )
        assert verify_tpg(design).ok
        assert lint_design(design).error_count == 0


class TestFsmBankRules:
    def test_dead_fsm_output_t004(self):
        design = _design(["01", "1"])
        bad = dataclasses.replace(design, assignments=(
            WeightAssignment.from_strings(["01", "01"]),
        ))
        findings = lint_design(bad).by_rule()["T004"]
        assert len(findings) == 1
        assert "is not used by any assignment" in findings[0].message

    def test_alphabet_extended_bank_without_declaration_t004(self):
        # Defect fixture: this is exactly what optimizer-style designs
        # looked like before TpgDesign grew the ``alphabet`` field — a
        # bank holding weights beyond Ω with nothing declaring them.
        # Pin that the old shape still (rightly) trips T004.
        design = _design(["01", "1"])
        extra = Weight.from_string("100")
        undeclared = dataclasses.replace(
            design,
            fsms=tuple(build_weight_fsms(
                [w for a in design.assignments for w in a.weights] + [extra]
            )),
        )
        assert undeclared.alphabet is None
        findings = lint_design(undeclared).by_rule()["T004"]
        assert len(findings) == 1
        assert "100" in findings[0].message

    def test_declared_alphabet_lints_clean(self):
        # The fix: the same extra weight, declared as alphabet at
        # synthesis time, is legitimate reconfiguration capacity.
        design = synthesize_tpg(
            [WeightAssignment.from_strings(["01", "1"])],
            l_g=8,
            alphabet=[Weight.from_string("100"), Weight.from_string("01")],
        )
        report = lint_design(design)
        assert report.error_count == 0
        assert "T004" not in report.by_rule()

    def test_reducible_fsm_output_t005(self):
        w = Weight.from_string("0101")
        design = _design(["0101"])
        bad = dataclasses.replace(
            design,
            assignments=(WeightAssignment((w,)),),
            fsms=(WeightFsm(length=4, outputs=(w,)),),
        )
        findings = lint_design(bad).by_rule()["T005"]
        assert len(findings) == 1
        assert "period 2 < 4 states" in findings[0].message

    def test_duplicate_fsm_output_t006(self):
        w = Weight.from_string("01")
        design = _design(["01"])
        bad = dataclasses.replace(
            design, fsms=(WeightFsm(length=2, outputs=(w, w)),)
        )
        findings = lint_design(bad).by_rule()["T006"]
        assert len(findings) == 1
        assert "expand to the same sequence" in findings[0].message

    def test_counter_width_mismatch_t007(self):
        design = _design(["01", "1"], l_g=8)
        bad = dataclasses.replace(design, l_g=16)
        findings = lint_design(bad).by_rule()["T007"]
        assert len(findings) == 1
        assert "phase (cycle) counter" in findings[0].message
        assert "expected 4 for L_G=16" in findings[0].message


class TestDesignIo:
    def test_round_trip_preserves_behaviour(self, tmp_path):
        design = _design(["01", "1", "100"], l_g=12)
        path = tmp_path / "design.json"
        save_design(design, path)
        loaded = load_design(path)
        assert loaded.l_g == design.l_g
        assert loaded.assignments == design.assignments
        assert loaded.output_ports == design.output_ports
        assert verify_tpg(loaded).ok

    def test_round_trip_with_lfsr(self, tmp_path):
        design = synthesize_tpg(
            [WeightAssignment.from_strings(["R", "1"])],
            l_g=8,
            lfsr=LfsrSpec(width=4, seed=0b1011),
        )
        path = tmp_path / "design.json"
        save_design(design, path)
        loaded = load_design(path)
        assert loaded.lfsr == design.lfsr
        assert verify_tpg(loaded).ok

    def test_round_trip_preserves_alphabet(self, tmp_path):
        alphabet = (Weight.from_string("100"), Weight.from_string("01"))
        design = synthesize_tpg(
            [WeightAssignment.from_strings(["01", "1"])],
            l_g=8,
            alphabet=alphabet,
        )
        path = tmp_path / "design.json"
        save_design(design, path)
        loaded = load_design(path)
        assert loaded.alphabet == alphabet
        assert verify_tpg(loaded).ok
        report = lint_design_path(path)
        assert report.error_count == 0
        assert "T004" not in report.by_rule()

    def test_saved_design_lints_clean(self, tmp_path):
        design = _design(["01", "1"], l_g=8)
        path = tmp_path / "design.json"
        save_design(design, path)
        report = lint_design_path(path)
        assert report.error_count == 0
        assert all(d.artifact == str(path) for d in report)

    def test_parameter_drift_is_caught(self, tmp_path):
        # Hand-edit L_G in the saved file: the netlist's counter no
        # longer matches, which is exactly what T007 exists for.
        design = _design(["01", "1"], l_g=8)
        path = tmp_path / "design.json"
        save_design(design, path)
        payload = json.loads(path.read_text())
        payload["l_g"] = 32
        path.write_text(json.dumps(payload))
        report = lint_design_path(path)
        assert "T007" in report.by_rule()

    def test_corrupted_bench_reports_instead_of_crashing(self, tmp_path):
        design = _design(["01", "1"], l_g=8)
        path = tmp_path / "design.json"
        save_design(design, path)
        payload = json.loads(path.read_text())
        payload["bench"] = payload["bench"].replace(
            "cyc_q0", "cyc_q0_gone", 1
        )
        path.write_text(json.dumps(payload))
        report = lint_design_path(path)
        assert report.error_count > 0
        # netlist errors stop design-level linting — no T findings
        assert not any(d.rule_id.startswith("T") for d in report)

    def test_not_json_raises_linterror(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{not json")
        with pytest.raises(LintError, match="not valid JSON"):
            lint_design_path(path)

    def test_wrong_kind_raises_linterror(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(LintError):
            lint_design_path(path)


def test_build_weight_fsms_never_produces_lint_findings():
    # The production FSM builder canonicalizes and merges, so T005/T006
    # cannot fire on anything it builds.
    weights = [Weight.from_string(s)
               for s in ("01", "0101", "100", "100100", "1")]
    fsms = build_weight_fsms(weights)
    design = _design(["01", "100", "1"])
    bad = dataclasses.replace(design, fsms=tuple(fsms))
    report = lint_design(bad)
    assert "T005" not in report.by_rule()
    assert "T006" not in report.by_rule()
