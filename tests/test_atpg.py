"""Tests for the deterministic ATPG: dual simulation, unrolling, PODEM,
and the drivers.

The strongest check: on small combinational circuits, PODEM must find a
test for exactly the faults brute-force enumeration proves testable,
and exhaust on exactly the untestable (redundant) ones.
"""

from __future__ import annotations

import itertools

import pytest

from repro.atpg import (
    AtpgConfig,
    deterministic_atpg,
    hybrid_test_sequence,
    podem,
    unroll,
)
from repro.atpg.driver import generate_for_fault
from repro.atpg.dualsim import (
    PAIR_0,
    PAIR_1,
    PAIR_D,
    PAIR_DBAR,
    PAIR_X,
    eval_gate_pair,
    is_discrepant,
)
from repro.circuit import CircuitBuilder
from repro.sim import FaultSimulator, all_faults
from repro.sim.compile import (
    OP_AND,
    OP_NAND,
    OP_NOT,
    OP_OR,
    OP_XOR,
    compile_circuit,
)
from repro.sim.values import V0, V1, VX
from repro.tgen import generate_test_sequence


class TestDualAlgebra:
    def test_d_propagation_through_and(self):
        # AND(D, 1) = D; AND(D, 0) = 0; AND(D, X) undetermined.
        assert eval_gate_pair(OP_AND, [PAIR_D, PAIR_1]) == PAIR_D
        assert eval_gate_pair(OP_AND, [PAIR_D, PAIR_0]) == PAIR_0
        assert eval_gate_pair(OP_AND, [PAIR_D, PAIR_X]) == (VX, V0)

    def test_d_inversion(self):
        assert eval_gate_pair(OP_NOT, [PAIR_D]) == PAIR_DBAR
        assert eval_gate_pair(OP_NAND, [PAIR_D, PAIR_1]) == PAIR_DBAR

    def test_d_xor_dbar_is_one(self):
        # XOR(D, D̄): good 1^0=1, faulty 0^1=1 -> constant 1.
        assert eval_gate_pair(OP_XOR, [PAIR_D, PAIR_DBAR]) == PAIR_1

    def test_d_and_d(self):
        assert eval_gate_pair(OP_AND, [PAIR_D, PAIR_D]) == PAIR_D
        assert eval_gate_pair(OP_OR, [PAIR_D, PAIR_DBAR]) == PAIR_1

    def test_is_discrepant(self):
        assert is_discrepant(PAIR_D)
        assert is_discrepant(PAIR_DBAR)
        assert not is_discrepant(PAIR_X)
        assert not is_discrepant((V1, VX))
        assert not is_discrepant(PAIR_1)


def _brute_force_testable(circuit, fault):
    """Is there an input pattern detecting ``fault`` (combinational)?"""
    sim = FaultSimulator(circuit)
    n = len(circuit.inputs)
    for bits in itertools.product((0, 1), repeat=n):
        if sim.run([bits], [fault]).detection_time:
            return True
    return False


class TestPodemCombinationalExact:
    """PODEM agrees with brute force on every fault of small circuits."""

    def _circuits(self):
        b = CircuitBuilder("c1")
        b.input("a")
        b.input("b")
        b.input("c")
        b.or_("o", "b", "c")
        b.nand("y", "a", "o")
        b.output("y")
        yield b.build()

        # Circuit with a redundant (untestable) fault: y = OR(a, AND(a, b))
        # -> AND output s-a-0 is undetectable (absorption).
        b = CircuitBuilder("c2")
        b.input("a")
        b.input("b")
        b.and_("m", "a", "b")
        b.or_("y", "a", "m")
        b.output("y")
        yield b.build()

        b = CircuitBuilder("c3")
        b.input("a")
        b.input("b")
        b.input("c")
        b.input("d")
        b.xor("x1", "a", "b")
        b.and_("m", "x1", "c")
        b.nor("y", "m", "d")
        b.output("y")
        yield b.build()

    def test_matches_brute_force(self):
        checked = 0
        for circuit in self._circuits():
            comp = compile_circuit(circuit)
            for fault in all_faults(circuit):
                model = unroll(comp, fault, 1)
                result = podem(model, backtrack_limit=200)
                expected = _brute_force_testable(circuit, fault)
                assert result.success == expected, (circuit.name, fault)
                assert not result.aborted
                checked += 1
        assert checked > 30

    def test_redundant_fault_proven_untestable(self):
        # The absorption redundancy: m s-a-0 in y = OR(a, AND(a, b)).
        from repro.sim import Fault

        b = CircuitBuilder("c2")
        b.input("a")
        b.input("b")
        b.and_("m", "a", "b")
        b.or_("y", "a", "m")
        b.output("y")
        circuit = b.build()
        model = unroll(compile_circuit(circuit), Fault("m", 0), 1)
        result = podem(model, backtrack_limit=200)
        assert not result.success
        assert not result.aborted  # exhausted: proven untestable


class TestPodemSequential:
    def test_s27_all_faults(self, s27, s27_faults):
        # Pure deterministic ATPG covers all of s27 (the random-walk
        # generator also does; this proves the structural engine alone
        # is sufficient on the genuine ISCAS circuit).
        result = deterministic_atpg(s27, s27_faults)
        assert len(result.detected) == 32
        assert not result.aborted

    def test_generated_tests_verified(self, s27, s27_faults):
        comp = compile_circuit(s27)
        sim = FaultSimulator(s27, comp)
        found = 0
        for fault in s27_faults[:12]:
            seq = generate_for_fault(s27, fault, compiled=comp)
            if seq is None:
                continue
            assert fault in sim.run(seq.patterns, [fault]).detection_time
            found += 1
        assert found >= 8

    def test_tests_valid_from_any_state(self, s27, s27_faults):
        # The unrolled model starts from X, so a PODEM test must detect
        # its fault from *every* concrete initial state.
        from repro.sim import LogicSimulator

        comp = compile_circuit(s27)
        fault = s27_faults[0]
        seq = generate_for_fault(s27, fault, compiled=comp)
        assert seq is not None
        sim = FaultSimulator(s27, comp)
        for state_bits in itertools.product((0, 1), repeat=3):
            # Prefix forcing the state is not directly supported by the
            # fault simulator; instead check detection still happens when
            # the sequence is preceded by arbitrary patterns.
            prefix = [state_bits + (0,)]
            padded = list(prefix) + list(seq.patterns)
            assert fault in sim.run(padded, [fault]).detection_time

    def test_frame_schedule_respected(self, s27, s27_faults):
        config = AtpgConfig(frame_schedule=(1,))
        # One frame = combinational only: most sequential faults fail,
        # but nothing crashes and nothing false-positives.
        result = deterministic_atpg(s27, s27_faults, config)
        assert len(result.detected) < 32


class TestHybrid:
    def test_s27_short_random_plus_atpg_reaches_full(self, s27, s27_faults):
        rnd = generate_test_sequence(s27, s27_faults, seed=3, max_len=6)
        assert rnd.coverage < 1.0
        hyb = hybrid_test_sequence(s27, s27_faults, seed=3, random_max_len=6)
        assert hyb.coverage == 1.0
        # Re-verify the combined sequence from scratch.
        resim = FaultSimulator(s27).run(hyb.sequence.patterns, s27_faults)
        assert set(resim.detection_time) == set(hyb.detected)

    def test_hybrid_no_op_when_random_suffices(self, s27, s27_faults):
        hyb = hybrid_test_sequence(s27, s27_faults, seed=7, random_max_len=500)
        assert hyb.coverage == 1.0


class TestUnroll:
    def test_indexing(self, s27):
        from repro.sim import Fault

        comp = compile_circuit(s27)
        model = unroll(comp, Fault("G8", 0), 3)
        assert model.n_nets == 3 * comp.n_nets
        frame, net = model.frame_and_net(2 * comp.n_nets + comp.index["G17"])
        assert (frame, net) == (2, "G17")

    def test_fault_sites_in_every_frame(self, s27):
        from repro.sim import Fault

        comp = compile_circuit(s27)
        model = unroll(comp, Fault("G8", 0), 4)
        assert len(model.stem_sites) == 4

    def test_frame0_state_unassignable(self, s27):
        from repro.sim import Fault

        comp = compile_circuit(s27)
        model = unroll(comp, Fault("G8", 0), 2)
        for idx in comp.ff_indices:
            assert idx in model.unassignable
            assert idx not in model.assignable

    def test_dff_branch_fault_sites(self, s27):
        # G11 drives DFF G6; the D-pin branch fault sites sit on the
        # state buffers of frames >= 1.
        from repro.sim import Fault

        comp = compile_circuit(s27)
        model = unroll(comp, Fault("G11", 0, gate="G6", pin=0), 3)
        assert len(model.pin_sites) == 2  # frames 1 and 2

    def test_bad_frame_count(self, s27):
        from repro.sim import Fault

        with pytest.raises(ValueError):
            unroll(compile_circuit(s27), Fault("G8", 0), 0)
