"""Cross-backend differential tests for the word-packed fault simulator.

The vector backend (:mod:`repro.sim.vector`) is a drop-in replacement
for the pure-Python oracle: same :class:`FaultSimResult`, same
detection times, same recorded discrepancy lines, for every circuit,
fault list and ternary stimulus.  These tests enforce that contract —
by hypothesis over random synthetic circuits, over the bundled
``.bench`` fixtures and library circuits, under both word packings,
with the numpy fallback forced, with pruned configurations, and at the
word-width boundaries the packing introduces.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import parse_bench
from repro.circuit.library import load_circuit
from repro.circuit.synth import SynthSpec, synthesize
from repro.sim import FaultSimulator, IncrementalFaultSimulator
from repro.sim.faults import FaultPruner, all_faults
from repro.sim.faultsim import GROUP_FAULTS
from repro.sim.vector.packing import WORD_BITS, numpy_available

FIXTURES = Path(__file__).parent / "fixtures"

#: Forced word packings to exercise; numpy only where importable.
PACKINGS = ["int"] + (["numpy"] if numpy_available() else [])


def _random_stimulus(rng, n_pi, max_len, ternary=True):
    """A random stimulus: ``max_len``-bounded rows of 0/1/X values."""
    alphabet = [0, 1, 2] if ternary else [0, 1]
    length = rng.randint(0, max_len)
    return [[rng.choice(alphabet) for _ in range(n_pi)] for _ in range(length)]


def _assert_same_result(a, b, context=""):
    """Full FaultSimResult equality — times, sets, lines, counts."""
    assert a.detection_time == b.detection_time, context
    assert a.undetected == b.undetected, context
    assert a.n_faults == b.n_faults, context
    assert a.lines == b.lines, context


def _run_both(circuit, stimulus, faults, packing, monkeypatch, **kw):
    monkeypatch.setenv("REPRO_SIM_PACKING", packing)
    oracle = FaultSimulator(circuit, backend="python").run(
        stimulus, faults, **kw
    )
    vector = FaultSimulator(circuit, backend="vector").run(
        stimulus, faults, **kw
    )
    return oracle, vector


class TestRandomCircuits:
    """Hypothesis: random synthetic circuits × faults × sequences."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_pi=st.integers(min_value=1, max_value=5),
        n_ff=st.integers(min_value=0, max_value=5),
        n_gates=st.integers(min_value=3, max_value=24),
        stim_seed=st.integers(min_value=0, max_value=10_000),
        record=st.booleans(),
    )
    def test_backends_agree(
        self, seed, n_pi, n_ff, n_gates, stim_seed, record
    ):
        n_gates = max(n_gates, n_ff, 2)
        circuit = synthesize(
            SynthSpec("hyp", n_pi, 1, n_ff, n_gates, seed=seed)
        )
        faults = all_faults(circuit)
        rng = random.Random(stim_seed)
        if rng.random() < 0.5:
            faults = [f for f in faults if rng.random() < 0.5]
        stimulus = _random_stimulus(rng, n_pi, 12)
        oracle = FaultSimulator(circuit, backend="python").run(
            stimulus, faults, record_lines=record,
            stop_when_all_detected=not record,
        )
        vector = FaultSimulator(circuit, backend="vector").run(
            stimulus, faults, record_lines=record,
            stop_when_all_detected=not record,
        )
        _assert_same_result(oracle, vector)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        stim_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_incremental_agrees(self, seed, stim_seed):
        circuit = synthesize(SynthSpec("hyp", 3, 2, 3, 12, seed=seed))
        faults = all_faults(circuit)
        inc_py = IncrementalFaultSimulator(circuit, faults, backend="python")
        inc_vec = IncrementalFaultSimulator(circuit, faults, backend="vector")
        rng = random.Random(stim_seed)
        for cycle in range(12):
            pattern = [rng.choice([0, 1, 2]) for _ in circuit.inputs]
            assert inc_py.peek(pattern) == inc_vec.peek(pattern)
            assert inc_py.step(pattern) == inc_vec.step(pattern)
            assert inc_py.remaining_faults() == inc_vec.remaining_faults()
            if cycle == 6:
                inc_py.regroup()
                inc_vec.regroup()


@pytest.mark.parametrize("packing", PACKINGS)
class TestFixtureCircuits:
    """Bundled circuits, both packings, every entry point."""

    @pytest.mark.parametrize(
        "name", ["s27", "g208", "defects.bench"]
    )
    def test_run_equivalence(self, name, packing, monkeypatch):
        circuit = (
            parse_bench(FIXTURES / name)
            if name.endswith(".bench")
            else load_circuit(name)
        )
        faults = all_faults(circuit)
        rng = random.Random(hash(name) & 0xFFFF)
        for trial in range(4):
            stimulus = _random_stimulus(rng, len(circuit.inputs), 25)
            for kw in (
                {"record_lines": True, "stop_when_all_detected": False},
                {},
                {"stop_when_all_detected": False},
            ):
                oracle, vector = _run_both(
                    circuit, stimulus, faults, packing, monkeypatch, **kw
                )
                _assert_same_result(
                    oracle, vector, f"{name} trial={trial} kw={kw}"
                )

    def test_screen_and_batch_parity(self, packing, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_PACKING", packing)
        circuit = load_circuit("g208")
        faults = all_faults(circuit)
        rng = random.Random(11)
        stimuli = [
            _random_stimulus(rng, len(circuit.inputs), 20) for _ in range(5)
        ]
        oracle = FaultSimulator(circuit, backend="python")
        vector = FaultSimulator(circuit, backend="vector")
        for stimulus in stimuli:
            assert oracle.detects_any(stimulus, faults) == vector.detects_any(
                stimulus, faults
            )
        assert oracle.detects_any_batch(
            stimuli, faults
        ) == vector.detects_any_batch(stimuli, faults)
        batch = vector.run_batch(stimuli, faults, stop_when_all_detected=False)
        for stimulus, result in zip(stimuli, batch):
            _assert_same_result(
                oracle.run(stimulus, faults, stop_when_all_detected=False),
                result,
            )

    def test_power_up_state_sweep(self, packing, monkeypatch):
        """reset_state restores the all-X power-up state exactly: a
        second sweep of the same walk detects the same faults at the
        same steps, on both backends."""
        monkeypatch.setenv("REPRO_SIM_PACKING", packing)
        circuit = load_circuit("s27")
        faults = all_faults(circuit)
        rng = random.Random(3)
        walk = [
            [rng.choice([0, 1, 2]) for _ in circuit.inputs] for _ in range(8)
        ]
        for backend in ("python", "vector"):
            inc = IncrementalFaultSimulator(circuit, faults, backend=backend)
            first = [inc.step(p) for p in walk]
            detected_once = sorted(
                f for newly in first for f in newly
            )
            inc.reset_state()
            # State resets; detected faults stay dropped — the sweep
            # continues over the survivors only.
            survivors = inc.remaining_faults()
            assert sorted(survivors + detected_once) == sorted(faults)

    def test_pruned_config_equivalence(self, packing, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_PACKING", packing)
        circuit = parse_bench(FIXTURES / "defects.bench")
        faults = all_faults(circuit)
        pruner = FaultPruner(circuit)
        rng = random.Random(5)
        stimulus = _random_stimulus(rng, len(circuit.inputs), 15)
        oracle = FaultSimulator(circuit, pruner=pruner, backend="python").run(
            stimulus, faults
        )
        vector = FaultSimulator(circuit, pruner=pruner, backend="vector").run(
            stimulus, faults
        )
        _assert_same_result(oracle, vector)
        # And pruned == unpruned (the pruner's standing soundness claim).
        plain = FaultSimulator(circuit, backend="vector").run(stimulus, faults)
        _assert_same_result(vector, plain)


class TestNoNumpyFallback:
    """The vector backend works — identically — without numpy."""

    def test_pure_stdlib_packing(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        monkeypatch.delenv("REPRO_SIM_PACKING", raising=False)
        assert not numpy_available()
        circuit = load_circuit("s27")
        faults = all_faults(circuit)
        rng = random.Random(9)
        stimulus = _random_stimulus(rng, len(circuit.inputs), 20)
        oracle = FaultSimulator(circuit, backend="python").run(
            stimulus, faults, record_lines=True, stop_when_all_detected=False
        )
        vector = FaultSimulator(circuit, backend="vector").run(
            stimulus, faults, record_lines=True, stop_when_all_detected=False
        )
        _assert_same_result(oracle, vector)

    def test_forced_numpy_without_numpy_raises(self, monkeypatch):
        from repro.errors import SimulationError
        from repro.sim.vector.packing import choose_packing

        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        monkeypatch.setenv("REPRO_SIM_PACKING", "numpy")
        with pytest.raises(SimulationError):
            choose_packing(4)


class TestWordBoundaries:
    """Fault counts straddling the word width pack correctly."""

    def test_group_faults_derived_from_word_bits(self):
        # The packing module owns the word width; the simulator's group
        # size (63 = word minus the good-machine lane) must follow it.
        assert GROUP_FAULTS == WORD_BITS - 1
        assert WORD_BITS == 64

    @pytest.mark.parametrize(
        "n_faults", [GROUP_FAULTS - 1, GROUP_FAULTS, GROUP_FAULTS + 1,
                     WORD_BITS, WORD_BITS + 1, 2 * GROUP_FAULTS + 3]
    )
    def test_boundary_fault_counts(self, n_faults, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_PACKING", "int")
        circuit = load_circuit("g208")
        faults = all_faults(circuit)[:n_faults]
        assert len(faults) == n_faults
        rng = random.Random(n_faults)
        stimulus = _random_stimulus(rng, len(circuit.inputs), 20)
        oracle, vector = _run_both(
            circuit, stimulus, faults, "int", monkeypatch,
            stop_when_all_detected=False,
        )
        _assert_same_result(oracle, vector)

    def test_single_fault(self, monkeypatch):
        circuit = load_circuit("s27")
        fault = all_faults(circuit)[0]
        rng = random.Random(1)
        stimulus = _random_stimulus(rng, len(circuit.inputs), 20)
        for packing in PACKINGS:
            oracle, vector = _run_both(
                circuit, stimulus, [fault], packing, monkeypatch
            )
            _assert_same_result(oracle, vector)

    def test_zero_faults(self):
        circuit = load_circuit("s27")
        result = FaultSimulator(circuit, backend="vector").run(
            [[0, 1, 0, 1]], []
        )
        assert result.n_faults == 0
        assert result.detection_time == {}
        assert result.undetected == ()

    def test_empty_stimulus(self):
        circuit = load_circuit("s27")
        faults = all_faults(circuit)
        oracle = FaultSimulator(circuit, backend="python").run([], faults)
        vector = FaultSimulator(circuit, backend="vector").run([], faults)
        _assert_same_result(oracle, vector)
        assert vector.detection_time == {}

    def test_int_kernel_word_bits_parity(self):
        """Block padding width never changes outcomes: an IntKernel
        built at word_bits=16 steps identically to the 64-bit one."""
        from repro.sim.compile import compile_circuit
        from repro.sim.vector.kernels import IntKernel
        from repro.sim.vector.program import build_program

        circuit = load_circuit("s27")
        comp = compile_circuit(circuit)
        flop_pos = {name: i for i, name in enumerate(circuit.flops)}
        faults = all_faults(circuit)[:GROUP_FAULTS]
        program = build_program(comp, flop_pos, faults)
        narrow = IntKernel(program, word_bits=16)
        wide = IntKernel(program, word_bits=64)
        rng = random.Random(2)
        for _ in range(10):
            pattern = [rng.choice([0, 1]) for _ in circuit.inputs]
            assert narrow.step([pattern]) == wide.step([pattern])
            assert narrow.discrepancies() == wide.discrepancies()


class TestIncrementalPartialDetection:
    """step/peek/regroup equivalence after some faults are detected."""

    def test_regroup_after_partial_detection(self):
        circuit = load_circuit("g208")
        faults = all_faults(circuit)
        inc_py = IncrementalFaultSimulator(circuit, faults, backend="python")
        inc_vec = IncrementalFaultSimulator(circuit, faults, backend="vector")
        rng = random.Random(21)
        detected_total = 0
        for cycle in range(30):
            pattern = [rng.choice([0, 1]) for _ in circuit.inputs]
            assert inc_py.peek(pattern) == inc_vec.peek(pattern)
            newly = inc_py.step(pattern)
            assert newly == inc_vec.step(pattern)
            detected_total += len(newly)
            if detected_total and cycle % 7 == 0:
                inc_py.regroup()
                inc_vec.regroup()
                assert (
                    inc_py.remaining_faults() == inc_vec.remaining_faults()
                )
        assert detected_total > 0
        assert inc_py.n_remaining == inc_vec.n_remaining

    def test_detects_any_short_circuit_parity(self):
        """detects_any answers identically whether or not the backend
        short-circuits on first detection."""
        circuit = load_circuit("s27")
        faults = all_faults(circuit)
        rng = random.Random(13)
        oracle = FaultSimulator(circuit, backend="python")
        vector = FaultSimulator(circuit, backend="vector")
        hits = misses = 0
        for _ in range(12):
            stimulus = _random_stimulus(rng, len(circuit.inputs), 6)
            verdict = oracle.detects_any(stimulus, faults)
            assert verdict == vector.detects_any(stimulus, faults)
            hits += verdict
            misses += not verdict
        assert hits and misses  # both answers exercised
