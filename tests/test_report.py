"""Tests for the HTML report generator."""

from __future__ import annotations

from repro.cli import main as cli_main
from repro.report import collect_results, render_report, write_report


class TestCollect:
    def test_reads_artifacts(self, tmp_path):
        (tmp_path / "table6.txt").write_text("Table 6 body\n")
        (tmp_path / "extra.txt").write_text("extra body\n")
        (tmp_path / "ignored.json").write_text("{}")
        artifacts = collect_results(tmp_path)
        assert set(artifacts) == {"table6", "extra"}
        assert artifacts["table6"] == "Table 6 body"

    def test_missing_dir(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}


class TestRender:
    def test_section_ordering(self):
        artifacts = {
            "tables7_16": "B",
            "table6": "A",
            "zz_custom": "C",
        }
        page = render_report(artifacts)
        assert page.index("Table 6") < page.index("Tables 7-16")
        assert page.index("Tables 7-16") < page.index("zz_custom")

    def test_html_escaping(self):
        page = render_report({"table6": "a < b & c"})
        assert "a &lt; b &amp; c" in page
        assert "<pre>" in page

    def test_empty(self):
        page = render_report({})
        assert "No artifacts" in page

    def test_self_contained(self):
        page = render_report({"table6": "x"})
        assert "<style>" in page
        assert "http" not in page.split("EXPERIMENTS")[0].split("<body>")[1]


class TestWriteAndCli:
    def test_write_report(self, tmp_path):
        (tmp_path / "table6.txt").write_text("body")
        out = write_report(tmp_path, tmp_path / "report.html")
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_cli_report(self, tmp_path, capsys):
        (tmp_path / "table6.txt").write_text("body")
        code = cli_main(
            ["report", "--results", str(tmp_path),
             "--output", str(tmp_path / "r.html")]
        )
        assert code == 0
        assert (tmp_path / "r.html").exists()

    def test_cli_report_empty(self, tmp_path, capsys):
        code = cli_main(
            ["report", "--results", str(tmp_path / "none"),
             "--output", str(tmp_path / "r.html")]
        )
        assert code == 1
