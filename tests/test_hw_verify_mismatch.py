"""Negative-path tests for :func:`repro.hw.verify.verify_tpg`.

The replay check's value is in what it reports when the hardware is
*wrong*, so these tests corrupt synthesized designs on purpose — an
inverted FSM output column, swapped output ports, software/hardware Ω
drift — and pin the mismatch records (assignment, cycle, port, values)
that come back.
"""

from __future__ import annotations

import dataclasses

from repro.circuit import Circuit, Gate, GateType
from repro.core import WeightAssignment
from repro.hw import synthesize_tpg, verify_tpg

#: Inverting counterpart of each gate function (same arity).
_INVERT = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.BUF: GateType.NOT,
    GateType.NOT: GateType.BUF,
}


def _invert_port(design, port_index):
    """Rebuild the TPG netlist with one output column's driver inverted."""
    po_net = design.output_ports[port_index]
    gates = []
    for gate in design.circuit.gates.values():
        if gate.name == po_net:
            gate = Gate(gate.name, _INVERT[gate.gtype], gate.fanins)
        gates.append(gate)
    corrupted = Circuit(
        design.circuit.name, gates, design.circuit.outputs
    )
    return dataclasses.replace(design, circuit=corrupted)


class TestCorruptedColumn:
    def test_inverted_fsm_column_reports_every_cycle(self):
        # Input 0 follows the period-2 subsequence 01; input 1 is held
        # at 1.  Inverting port 0's driver flips every emitted value of
        # that column, so all l_g cycles of the single assignment must
        # be reported, and only on port 0.
        wa = WeightAssignment.from_strings(["01", "1"])
        design = _invert_port(synthesize_tpg([wa], l_g=8), 0)

        result = verify_tpg(design)
        assert not result.ok
        assert result.cycles_checked == design.total_cycles
        assert {m.port for m in result.mismatches} == {0}
        assert {m.assignment_index for m in result.mismatches} == {0}
        assert sorted(m.time for m in result.mismatches) == list(range(8))
        for m in result.mismatches:
            assert m.expected != m.actual

    def test_mismatch_localizes_assignment_window(self):
        # Two assignments differ only in input 1's weight; breaking
        # port 1 breaks both windows, and the mismatch records must
        # name each window separately.
        a0 = WeightAssignment.from_strings(["01", "1"])
        a1 = WeightAssignment.from_strings(["01", "0"])
        design = _invert_port(synthesize_tpg([a0, a1], l_g=4), 1)

        result = verify_tpg(design, max_mismatches=64)
        assert not result.ok
        assert {m.port for m in result.mismatches} == {1}
        assert {m.assignment_index for m in result.mismatches} == {0, 1}
        by_assignment = {}
        for m in result.mismatches:
            by_assignment.setdefault(m.assignment_index, []).append(m.time)
        assert sorted(by_assignment[0]) == list(range(4))
        assert sorted(by_assignment[1]) == list(range(4))

    def test_mismatch_value_fields(self):
        # Weight "1" holds the column at 1; the inverted hardware
        # emits 0, so every record reads expected=1, actual=0.
        wa = WeightAssignment.from_strings(["1"])
        design = _invert_port(synthesize_tpg([wa], l_g=4), 0)

        result = verify_tpg(design)
        assert len(result.mismatches) == 4
        for m in result.mismatches:
            assert (m.expected, m.actual) == (1, 0)


class TestTruncationAndDrift:
    def test_max_mismatches_truncates(self):
        wa = WeightAssignment.from_strings(["1", "0"])
        design = _invert_port(
            _invert_port(synthesize_tpg([wa], l_g=8), 0), 1
        )
        result = verify_tpg(design, max_mismatches=5)
        assert not result.ok
        assert len(result.mismatches) == 5
        full = verify_tpg(design, max_mismatches=1000)
        assert len(full.mismatches) == 16

    def test_omega_drift_detected(self):
        # Software/hardware drift: the netlist was built for weight 0
        # on input 1, but the design claims weight 1 — exactly the kind
        # of stale-artifact corruption a reloaded design can carry.
        built = WeightAssignment.from_strings(["01", "0"])
        claimed = WeightAssignment.from_strings(["01", "1"])
        design = synthesize_tpg([built], l_g=6)
        drifted = dataclasses.replace(design, assignments=(claimed,))

        result = verify_tpg(drifted)
        assert not result.ok
        assert {m.port for m in result.mismatches} == {1}
        assert all(m.expected == 1 and m.actual == 0
                   for m in result.mismatches)

    def test_clean_design_has_no_mismatches(self):
        wa = WeightAssignment.from_strings(["01", "1", "100"])
        result = verify_tpg(synthesize_tpg([wa], l_g=12))
        assert result.ok
        assert result.mismatches == ()
        assert result.cycles_checked == 12
