"""Fault tolerance of the process-pool executor.

Every recovery path — worker crash, hung worker, corrupted payload,
retry exhaustion, graceful degradation to serial — is driven by the
deterministic chaos harness and must reproduce the serial executor's
results bit for bit.  Rates of 1.0 make the failure traces themselves
deterministic, so the tests pin exact counter values, not just "it
eventually worked".
"""

from __future__ import annotations

import pytest

from repro.circuit import write_bench
from repro.errors import ChaosError, LintError, ResilienceError
from repro.resilience import ChaosSpec, RetryPolicy
from repro.runtime import (
    ProcessExecutor,
    RuntimeContext,
    RuntimeStats,
    SerialExecutor,
    make_executor,
)


@pytest.fixture(scope="module")
def s27_tasks(s27, s27_faults, paper_t):
    """Bench text, frozen stimulus and fault groups small enough that
    tiny s27 still fans out into several pool tasks."""
    bench = write_bench(s27)
    stimulus = tuple(tuple(p) for p in paper_t.patterns)
    groups = [list(s27_faults[i:i + 8]) for i in range(0, len(s27_faults), 8)]
    assert len(groups) == 4
    return bench, stimulus, groups


def _reference(s27_tasks):
    bench, stimulus, groups = s27_tasks
    return SerialExecutor().run_fault_groups(bench, stimulus, groups, False, False)


def _same_results(parts, reference):
    assert len(parts) == len(reference)
    for got, want in zip(parts, reference):
        assert got.detection_time == want.detection_time
        assert got.undetected == want.undetected
        assert got.n_faults == want.n_faults


def test_crash_storm_degrades_to_serial_with_identical_results(s27_tasks):
    bench, stimulus, groups = s27_tasks
    stats = RuntimeStats()
    policy = RetryPolicy(retries=2, backoff_s=0.0, max_pool_rebuilds=3)
    with ProcessExecutor(
        2, stats, policy=policy, chaos=ChaosSpec(crash=1.0, seed=1)
    ) as ex:
        parts = ex.run_fault_groups(bench, stimulus, groups, False, False)
        assert ex.degraded
    _same_results(parts, _reference(s27_tasks))
    # crash=1.0 makes the trace exact: one BrokenProcessPool per round,
    # three rounds until degradation, then every task replays serially.
    assert stats.worker_crashes == 3
    assert stats.pool_rebuilds == 3
    assert stats.executor_degradations == 1
    assert stats.serial_fallback_tasks == len(groups)


def test_corrupt_payloads_retry_then_replay_serially(s27_tasks):
    bench, stimulus, groups = s27_tasks
    stats = RuntimeStats()
    policy = RetryPolicy(retries=1, backoff_s=0.0)
    with ProcessExecutor(
        2, stats, policy=policy, chaos=ChaosSpec(corrupt=1.0, seed=1)
    ) as ex:
        parts = ex.run_fault_groups(bench, stimulus, groups, False, False)
        assert not ex.degraded
    _same_results(parts, _reference(s27_tasks))
    # Every dispatch returns the corrupt sentinel: each of the 4 tasks
    # fails validation twice (initial + one retry), then replays inline.
    assert stats.corrupt_results == 2 * len(groups)
    assert stats.task_retries == len(groups)
    assert stats.serial_fallback_tasks == len(groups)
    assert stats.pool_rebuilds == 0
    assert stats.worker_crashes == 0


def test_hung_workers_time_out_and_tasks_replay(s27_tasks):
    bench, stimulus, groups = s27_tasks
    two_groups = [groups[0] + groups[1], groups[2] + groups[3]]
    stats = RuntimeStats()
    policy = RetryPolicy(
        task_timeout=0.3, retries=0, backoff_s=0.0, max_pool_rebuilds=10
    )
    with ProcessExecutor(
        2, stats, policy=policy,
        chaos=ChaosSpec(hang=1.0, seed=1, hang_s=1.5),
    ) as ex:
        parts = ex.run_fault_groups(bench, stimulus, two_groups, False, False)
        assert not ex.degraded
    reference = SerialExecutor().run_fault_groups(
        bench, stimulus, two_groups, False, False
    )
    _same_results(parts, reference)
    # hang=1.0 with retries=0: each task hangs once, is declared hung
    # after task_timeout, its pool abandoned, and the task replayed
    # serially (where chaos is never injected).
    assert stats.task_timeouts == 2
    assert stats.pool_rebuilds == 2
    assert stats.serial_fallback_tasks == 2


def test_degraded_executor_stays_serial(s27_tasks):
    bench, stimulus, groups = s27_tasks
    stats = RuntimeStats()
    policy = RetryPolicy(retries=0, backoff_s=0.0, max_pool_rebuilds=1)
    with ProcessExecutor(
        2, stats, policy=policy, chaos=ChaosSpec(crash=1.0, seed=1)
    ) as ex:
        ex.run_fault_groups(bench, stimulus, groups, False, False)
        assert ex.degraded
        rebuilds = stats.pool_rebuilds
        fallbacks = stats.serial_fallback_tasks
        parts = ex.run_fault_groups(bench, stimulus, groups, False, False)
        # No new pool is ever built; the whole batch runs inline.
        assert stats.pool_rebuilds == rebuilds
        assert stats.serial_fallback_tasks == fallbacks + len(groups)
    _same_results(parts, _reference(s27_tasks))


def test_fanout_stats_recorded_even_when_a_task_raises(paper_t):
    # A deterministic task error (garbage circuit text) propagates out
    # of the executor — but the dispatched batch must still be counted.
    stats = RuntimeStats()
    stimulus = tuple(tuple(p) for p in paper_t.patterns)
    with ProcessExecutor(2, stats) as ex:
        with pytest.raises(Exception):
            ex.screen_batch("this is not a bench file", [stimulus] * 3, [])
    assert stats.tasks_dispatched == 3


def test_executors_are_context_managers():
    with make_executor(1) as ex:
        assert isinstance(ex, SerialExecutor)
    with make_executor(2) as ex2:
        assert isinstance(ex2, ProcessExecutor)
        assert ex2.jobs == 2
    assert ex2._pool is None


def test_runtime_context_validates_before_building_a_pool(monkeypatch):
    # Satellite of the leak audit: a configuration error must be
    # raised before any ProcessPoolExecutor exists, so nothing can
    # leak.  If validation ever moves after pool construction, the
    # monkeypatched factory trips.
    import repro.runtime.context as ctx_mod

    def boom(*args, **kwargs):
        raise AssertionError("executor built before config validation")

    monkeypatch.setattr(ctx_mod, "make_executor", boom)
    with pytest.raises(LintError):
        RuntimeContext(jobs=2, lint="bogus")
    with pytest.raises(ChaosError):
        RuntimeContext(jobs=2, chaos="nope=1")
    with pytest.raises(ResilienceError):
        RuntimeContext(jobs=2, retries=-1)
    with pytest.raises(ResilienceError):
        RuntimeContext(jobs=2, task_timeout=0.0)


def test_runtime_context_closes_executor_if_cache_init_fails(
    monkeypatch, tmp_path
):
    import repro.runtime.context as ctx_mod

    closed = []

    class FakeExecutor:
        jobs = 2

        def close(self):
            closed.append(True)

    def failing_cache(*args, **kwargs):
        raise OSError("cache root unusable")

    monkeypatch.setattr(
        ctx_mod, "make_executor", lambda *a, **k: FakeExecutor()
    )
    monkeypatch.setattr(ctx_mod, "ArtifactCache", failing_cache)
    with pytest.raises(OSError):
        RuntimeContext(jobs=2, cache_dir=tmp_path / "cache")
    assert closed == [True]


# -- whole-flow bit-identity under chaos (the acceptance criterion) ----------


@pytest.fixture(scope="module")
def g208_reference():
    from repro.flows import flow_config_for
    from repro.flows.full_flow import run_full_flow

    cfg = flow_config_for("g208", l_g=64)
    return cfg, run_full_flow("g208", cfg)


def test_flow_under_crash_and_corruption_chaos_is_bit_identical(
    g208_reference,
):
    from repro.flows.full_flow import run_full_flow

    cfg, serial = g208_reference
    with RuntimeContext(
        jobs=2,
        retries=3,
        backoff_s=0.0,
        chaos="crash=0.15,corrupt=0.15,seed=3",
    ) as rt:
        chaotic = run_full_flow("g208", cfg, runtime=rt)
    assert chaotic.table6 == serial.table6
    assert chaotic.procedure.detection_time == serial.procedure.detection_time
    assert chaotic.reverse_order.kept == serial.reverse_order.kept
    assert rt.stats.worker_crashes + rt.stats.corrupt_results > 0


def test_flow_under_hang_chaos_with_timeout_is_bit_identical(g208_reference):
    from repro.flows.full_flow import run_full_flow

    cfg, serial = g208_reference
    with RuntimeContext(
        jobs=2,
        task_timeout=0.5,
        retries=1,
        backoff_s=0.0,
        chaos="hang=0.05,seed=9,hang_s=2.0",
    ) as rt:
        chaotic = run_full_flow("g208", cfg, runtime=rt)
    assert chaotic.table6 == serial.table6
    assert chaotic.reverse_order.kept == serial.reverse_order.kept
    assert rt.stats.task_timeouts >= 1
    assert rt.stats.pool_rebuilds >= 1
