"""Golden backend-identity: the vector fault-simulation backend is
invisible in every deliverable.

The same flow run with ``sim_backend="vector"`` — serially, with
``--jobs 4``, against a warm cache, under chaos injection, and with the
static pre-prune armed — must reproduce the python oracle's Table-6
row, final sequence, Ω selection and byte-identical normalized trace.
Execution strategy and simulation engine may only show up in the parts
normalization strips.
"""

from __future__ import annotations

import pytest

from repro.core.procedure import ProcedureConfig
from repro.flows.experiments import clear_cache, flow_for
from repro.flows.full_flow import FlowConfig, run_full_flow
from repro.runtime import RuntimeContext
from repro.trace import normalized_json

CHAOS = "crash=0.3,seed=7"


def _cfg(backend, **overrides):
    kwargs = dict(
        seed=1,
        tgen_max_len=500,
        compaction_sims=30,
        procedure=ProcedureConfig(l_g=100),
        synthesize_hardware=True,
        sim_backend=backend,
    )
    kwargs.update(overrides)
    return FlowConfig(**kwargs)


def _traced_flow(circuit, backend, cfg_overrides=None, **runtime_kwargs):
    cfg = _cfg(backend, **(cfg_overrides or {}))
    with RuntimeContext(trace=True, **runtime_kwargs) as rt:
        result = run_full_flow(circuit, cfg, runtime=rt)
        root = rt.tracer.finish()
        return result, normalized_json(root, rt.tracer.events)


def _assert_same_flow(a, b):
    assert a.table6 == b.table6
    assert a.sequence.patterns == b.sequence.patterns
    assert a.procedure.omega == b.procedure.omega
    assert a.generated.detected == b.generated.detected
    assert a.reverse_order == b.reverse_order


@pytest.fixture(scope="module")
def python_golden(s27):
    return _traced_flow(s27, "python")


def test_vector_serial_matches_python(s27, python_golden):
    result_py, golden = python_golden
    result_vec, trace = _traced_flow(s27, "vector")
    assert trace == golden
    _assert_same_flow(result_py, result_vec)


def test_vector_jobs4_matches_python(s27, python_golden):
    result_py, golden = python_golden
    result_vec, trace = _traced_flow(s27, "vector", jobs=4)
    assert trace == golden
    _assert_same_flow(result_py, result_vec)


def test_vector_warm_cache_matches_python(s27, python_golden, tmp_path):
    _, golden = python_golden
    cache = tmp_path / "cache"
    result_cold, cold = _traced_flow(s27, "vector", cache_dir=cache)
    result_warm, warm = _traced_flow(s27, "vector", cache_dir=cache)
    assert cold == golden
    assert warm == golden
    _assert_same_flow(result_cold, result_warm)


def test_vector_chaos_matches_python(s27, python_golden):
    result_py, golden = python_golden
    result_vec, trace = _traced_flow(s27, "vector", jobs=2, chaos=CHAOS)
    assert trace == golden
    _assert_same_flow(result_py, result_vec)


def test_static_prune_backend_identity(s27):
    overrides = {"static_prune": True}
    result_py, trace_py = _traced_flow(s27, "python", overrides)
    result_vec, trace_vec = _traced_flow(s27, "vector", overrides)
    assert trace_vec == trace_py
    _assert_same_flow(result_py, result_vec)
    assert result_vec.pruned is not None
    assert result_vec.pruned.n_pruned == result_py.pruned.n_pruned


def test_mixed_cache_backends_share_artifacts(s27, tmp_path):
    """A python-populated cache serves a vector run (and vice versa):
    artifact keys are content-addressed, never backend-tagged."""
    cache = tmp_path / "cache"
    with RuntimeContext(cache_dir=cache) as rt:
        result_py = run_full_flow(s27, _cfg("python"), runtime=rt)
        misses_cold = rt.stats.cache_misses
    with RuntimeContext(cache_dir=cache) as rt:
        result_vec = run_full_flow(s27, _cfg("vector"), runtime=rt)
        assert rt.stats.cache_misses < misses_cold
    _assert_same_flow(result_py, result_vec)


def test_table6_row_backend_identity():
    clear_cache()
    try:
        row_py = flow_for("s27", l_g=100, sim_backend="python").table6
        row_vec = flow_for("s27", l_g=100, sim_backend="vector").table6
        row_auto = flow_for("s27", l_g=100, sim_backend="auto").table6
    finally:
        clear_cache()
    assert row_py == row_vec == row_auto
