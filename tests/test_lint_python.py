"""Python AST determinism rules (D family)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import (
    Suppressions,
    lint_package,
    lint_python_path,
    lint_python_source,
)

FIXTURE = Path(__file__).parent / "fixtures" / "defect_module.py"


def _rules(source):
    return [d.rule_id for d in lint_python_source(source, "inline.py")]


class TestFixtureModule:
    def test_one_finding_per_rule(self):
        report = lint_python_path(FIXTURE)
        assert sorted(report.by_rule()) == [
            "D101", "D102", "D103", "D104", "D105", "D106"
        ]
        assert all(len(v) == 1 for v in report.by_rule().values())

    def test_lines_and_messages(self):
        by_rule = {d.rule_id: d for d in lint_python_path(FIXTURE)}
        assert by_rule["D101"].line == 13
        assert "unordered set" in by_rule["D101"].message
        assert by_rule["D102"].line == 19
        assert "random.random()" in by_rule["D102"].message
        assert by_rule["D103"].line == 23
        assert "time.time()" in by_rule["D103"].message
        assert by_rule["D104"].line == 27
        assert "os.getenv()" in by_rule["D104"].message
        assert by_rule["D105"].line == 30
        assert "'collect'" in by_rule["D105"].message
        assert by_rule["D106"].line == 35
        assert "os.listdir" in by_rule["D106"].message


class TestSetIteration:
    def test_for_over_set_literal(self):
        assert _rules("for x in {1, 2}:\n    pass\n") == ["D101"]

    def test_comprehension_over_set_call(self):
        assert _rules("y = [x for x in set(items)]\n") == ["D101"]

    def test_list_of_set(self):
        assert _rules("y = list({1, 2})\n") == ["D101"]

    def test_sorted_set_is_fine(self):
        assert _rules("for x in sorted({1, 2}):\n    pass\n") == []

    def test_list_iteration_is_fine(self):
        assert _rules("for x in [1, 2]:\n    pass\n") == []


class TestUnseededRandom:
    def test_module_function_flagged(self):
        assert _rules("import random\nrandom.choice(xs)\n") == ["D102"]

    def test_aliased_module_flagged(self):
        assert _rules("import random as rnd\nrnd.random()\n") == ["D102"]

    def test_seeded_rng_instance_is_fine(self):
        assert _rules("import random\nr = random.Random(7)\n") == []

    def test_unseeded_rng_instance_flagged(self):
        assert _rules("import random\nr = random.Random()\n") == ["D102"]

    def test_from_import_flagged(self):
        assert _rules("from random import choice\nchoice(xs)\n") == ["D102"]

    def test_numpy_global_flagged(self):
        assert _rules("import numpy as np\nnp.random.rand(3)\n") == ["D102"]

    def test_numpy_seeded_generator_is_fine(self):
        assert _rules(
            "import numpy as np\nrng = np.random.default_rng(5)\n"
        ) == []

    def test_numpy_unseeded_generator_flagged(self):
        assert _rules(
            "import numpy as np\nrng = np.random.default_rng()\n"
        ) == ["D102"]


class TestWallClock:
    def test_time_time_flagged(self):
        assert _rules("import time\nt = time.time()\n") == ["D103"]

    def test_perf_counter_is_fine(self):
        # Duration measurement, not wall clock — deliberately allowed.
        assert _rules("import time\nt = time.perf_counter()\n") == []

    def test_monotonic_is_fine(self):
        assert _rules("import time\nt = time.monotonic()\n") == []

    def test_datetime_now_flagged(self):
        assert _rules(
            "from datetime import datetime\nd = datetime.now()\n"
        ) == ["D103"]

    def test_datetime_module_now_flagged(self):
        assert _rules(
            "import datetime\nd = datetime.datetime.now()\n"
        ) == ["D103"]


class TestEnviron:
    def test_environ_attribute_flagged(self):
        assert _rules("import os\nv = os.environ['HOME']\n") == ["D104"]

    def test_getenv_flagged(self):
        assert _rules("import os\nv = os.getenv('HOME')\n") == ["D104"]

    def test_os_path_is_fine(self):
        assert _rules("import os\np = os.path.join('a', 'b')\n") == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        assert _rules("def f(x=[]):\n    pass\n") == ["D105"]

    def test_dict_call_default_flagged(self):
        assert _rules("def f(x=dict()):\n    pass\n") == ["D105"]

    def test_kwonly_default_flagged(self):
        assert _rules("def f(*, x={}):\n    pass\n") == ["D105"]

    def test_none_default_is_fine(self):
        assert _rules("def f(x=None):\n    pass\n") == []

    def test_tuple_default_is_fine(self):
        assert _rules("def f(x=()):\n    pass\n") == []


class TestUnsortedDirListing:
    def test_for_over_listdir_flagged(self):
        assert _rules(
            "import os\nfor f in os.listdir(d):\n    pass\n"
        ) == ["D106"]

    def test_comprehension_over_scandir_flagged(self):
        assert _rules(
            "import os\nxs = [e.name for e in os.scandir(d)]\n"
        ) == ["D106"]

    def test_glob_glob_flagged(self):
        assert _rules(
            "import glob\nfor f in glob.glob('*.py'):\n    pass\n"
        ) == ["D106"]

    def test_iglob_from_import_flagged(self):
        assert _rules(
            "from glob import iglob\nfor f in iglob('*.py'):\n    pass\n"
        ) == ["D106"]

    def test_listdir_from_import_flagged(self):
        assert _rules(
            "from os import listdir\nfor f in listdir(d):\n    pass\n"
        ) == ["D106"]

    def test_sorted_listdir_is_fine(self):
        assert _rules(
            "import os\nfor f in sorted(os.listdir(d)):\n    pass\n"
        ) == []

    def test_pathlib_glob_method_is_fine(self):
        # Path.glob is a *method*; only the module-level functions are
        # flagged (the rule keys on os/glob module attributes).
        assert _rules(
            "from pathlib import Path\n"
            "for f in Path('.').glob('*.py'):\n    pass\n"
        ) == []

    def test_listdir_outside_iteration_is_fine(self):
        assert _rules("import os\nnames = os.listdir(d)\n") == []


class TestInlineSuppressions:
    def test_same_line_ignore(self):
        report = lint_python_source(
            "import os\nv = os.getenv('X')  # lint: ignore[D104]\n", "a.py"
        )
        assert len(report) == 0
        assert report.suppressed_count == 1

    def test_ignore_only_matches_named_rule(self):
        report = lint_python_source(
            "import os\nv = os.getenv('X')  # lint: ignore[D101]\n", "a.py"
        )
        assert [d.rule_id for d in report] == ["D104"]

    def test_file_level_ignore(self):
        source = (
            "# lint: ignore-file[D104]\n"
            "import os\n"
            "a = os.getenv('X')\n"
            "b = os.getenv('Y')\n"
        )
        report = lint_python_source(source, "a.py")
        assert len(report) == 0
        assert report.suppressed_count == 2

    def test_comma_separated_ids(self):
        source = (
            "import os, time\n"
            "v = os.getenv('X') if time.time() else 0"
            "  # lint: ignore[D103, D104]\n"
        )
        report = lint_python_source(source, "a.py")
        assert len(report) == 0
        assert report.suppressed_count == 2


class TestSyntaxErrors:
    def test_unparseable_source_raises(self):
        with pytest.raises(SyntaxError):
            lint_python_source("def broken(:\n", "bad.py")


class TestPackageSelfLint:
    def test_package_has_no_error_findings(self):
        report = lint_package()
        errors = [d.format() for d in report
                  if d.severity.name == "ERROR"]
        assert errors == []

    def test_artifacts_are_repo_relative(self):
        report = lint_package()
        for d in report:
            assert d.artifact.startswith("repro/")

    def test_suppressions_parameter(self):
        report = lint_package(suppressions=Suppressions({"*": ["*"]}))
        assert len(report) == 0

    def test_custom_root(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("import os\nv = os.getenv('X')\n")
        report = lint_package(root=pkg)
        assert [d.rule_id for d in report] == ["D104"]
        assert report.diagnostics[0].artifact == "pkg/mod.py"
