"""Checkpoint/resume: the journal, the flow integration, and signals.

The resume guarantee under test: a multi-circuit sweep interrupted at
any circuit boundary can be rerun with ``resume=True`` and produces
the *identical* final report, skipping every circuit already
checkpointed.  Checkpoints are never trusted: stale, corrupt or
foreign entries are recomputed.
"""

from __future__ import annotations

import json
import signal

import pytest

from repro.core import ProcedureConfig
from repro.errors import SweepInterrupted
from repro.flows import experiments
from repro.flows.full_flow import FlowConfig, run_full_flow
from repro.resilience import (
    CheckpointJournal,
    flow_journal_key,
    handle_termination,
)
from repro.resilience.journal import JOURNAL_FORMAT, CheckpointWarning
from repro.runtime import RuntimeContext, RuntimeStats


@pytest.fixture(autouse=True)
def _fresh_flow_cache():
    """Tests here reason about *recomputation*, so the in-process flow
    memo must not leak results between tests."""
    experiments.clear_cache()
    yield
    experiments.clear_cache()


# -- the journal itself -------------------------------------------------------


def test_record_get_roundtrip(tmp_path):
    journal = CheckpointJournal(tmp_path / "j.json")
    assert journal.get("a") is None
    journal.record("a", {"x": 1})
    journal.record("b", {"y": 2})
    assert journal.get("a") == {"x": 1}
    assert journal.keys() == ["a", "b"]
    assert len(journal) == 2
    # A fresh instance reads the same state back from disk.
    reloaded = CheckpointJournal(tmp_path / "j.json")
    assert reloaded.get("b") == {"y": 2}


def test_record_is_atomic_and_versioned(tmp_path):
    path = tmp_path / "j.json"
    journal = CheckpointJournal(path, stats=(stats := RuntimeStats()))
    journal.record("k", {"v": 1})
    body = json.loads(path.read_text())
    assert body["format"] == JOURNAL_FORMAT
    assert body["entries"] == {"k": {"v": 1}}
    assert list(tmp_path.iterdir()) == [path], "no tmp file left behind"
    assert stats.journal_records == 1


def test_records_merge_with_concurrent_writer(tmp_path):
    path = tmp_path / "j.json"
    ours = CheckpointJournal(path)
    theirs = CheckpointJournal(path)
    ours.record("ours", {"v": 1})
    theirs.record("theirs", {"v": 2})
    # Neither sweep erased the other's checkpoint.
    merged = CheckpointJournal(path)
    assert merged.keys() == ["ours", "theirs"]


def test_corrupt_journal_warns_and_is_treated_as_empty(tmp_path):
    path = tmp_path / "j.json"
    path.write_text("{ not json")
    journal = CheckpointJournal(path)
    with pytest.warns(CheckpointWarning, match="unreadable or corrupt"):
        assert journal.get("k") is None


def test_unknown_format_version_warns_and_is_ignored(tmp_path):
    path = tmp_path / "j.json"
    path.write_text(json.dumps({"format": 999, "entries": {"k": {"v": 1}}}))
    journal = CheckpointJournal(path)
    with pytest.warns(CheckpointWarning, match="unknown format"):
        assert journal.get("k") is None


def test_unwritable_journal_warns_but_never_fails_the_sweep(tmp_path):
    blocker = tmp_path / "file"
    blocker.write_text("")
    stats = RuntimeStats()
    journal = CheckpointJournal(blocker / "j.json", stats=stats)
    # Two warnings fire: the unreadable location on load, then the
    # failed write itself.
    with pytest.warns(CheckpointWarning) as caught:
        journal.record("k", {"v": 1})
    assert any("not be resumable" in str(w.message) for w in caught)
    assert stats.journal_records == 0
    # The record is still visible in-memory for this process.
    assert journal.get("k") == {"v": 1}


def test_clear_removes_everything(tmp_path):
    journal = CheckpointJournal(tmp_path / "j.json")
    journal.record("a", {})
    journal.record("b", {})
    assert journal.clear() == 2
    assert len(CheckpointJournal(tmp_path / "j.json")) == 0


def test_flow_journal_key_sensitivity():
    from dataclasses import asdict

    cfg = asdict(FlowConfig(procedure=ProcedureConfig(l_g=128)))
    other = asdict(FlowConfig(procedure=ProcedureConfig(l_g=256)))
    assert flow_journal_key("s27", cfg) == flow_journal_key("s27", cfg)
    assert flow_journal_key("s27", cfg) != flow_journal_key("g208", cfg)
    assert flow_journal_key("s27", cfg) != flow_journal_key("s27", other)


# -- flow integration ---------------------------------------------------------


def test_run_full_flow_checkpoints_its_table6_row(tmp_path):
    from dataclasses import asdict

    cfg = FlowConfig(procedure=ProcedureConfig(l_g=128))
    with RuntimeContext(cache_dir=tmp_path / "cache") as rt:
        flow = run_full_flow("s27", cfg, runtime=rt)
    assert rt.stats.journal_records == 1
    journal = CheckpointJournal(
        tmp_path / "cache" / "checkpoints" / "journal.json"
    )
    payload = journal.get(flow_journal_key("s27", asdict(cfg)))
    assert payload is not None
    assert payload["kind"] == "flow"
    assert payload["table6"] == asdict(flow.table6)


def test_no_journal_without_cache_or_resume():
    with RuntimeContext(jobs=1) as rt:
        assert rt.journal is None


def test_resume_skips_checkpointed_circuit(tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    with RuntimeContext(cache_dir=cache) as rt:
        rows = experiments.table6_rows(("s27",), runtime=rt)
    assert rt.stats.journal_records == 1

    experiments.clear_cache()

    def boom(*args, **kwargs):
        raise AssertionError("flow recomputed despite a valid checkpoint")

    monkeypatch.setattr(experiments, "flow_for", boom)
    with RuntimeContext(cache_dir=cache, resume=True) as resumed:
        resumed_rows = experiments.table6_rows(("s27",), runtime=resumed)
    assert resumed_rows == rows
    assert resumed.stats.journal_skips == 1


def test_checkpoints_are_ignored_without_resume(tmp_path):
    cache = tmp_path / "cache"
    with RuntimeContext(cache_dir=cache) as rt:
        experiments.table6_rows(("s27",), runtime=rt)
    experiments.clear_cache()
    # Same cache dir, but no resume flag: the circuit is recomputed.
    with RuntimeContext(cache_dir=cache) as again:
        experiments.table6_rows(("s27",), runtime=again)
    assert again.stats.journal_skips == 0


@pytest.mark.parametrize(
    "tamper",
    [
        lambda t6: {**t6, "circuit": "imposter"},  # foreign checkpoint
        lambda t6: {k: v for k, v in t6.items() if k != "circuit"},  # torn
        lambda t6: "not a dict",  # wrong shape entirely
    ],
)
def test_tampered_checkpoint_is_recomputed_not_trusted(
    tmp_path, monkeypatch, tamper
):
    cache = tmp_path / "cache"
    with RuntimeContext(cache_dir=cache) as rt:
        rows = experiments.table6_rows(("s27",), runtime=rt)

    journal_path = cache / "checkpoints" / "journal.json"
    body = json.loads(journal_path.read_text())
    (key,) = body["entries"]
    entry = body["entries"][key]
    entry["table6"] = tamper(entry["table6"])
    journal_path.write_text(json.dumps(body))

    experiments.clear_cache()
    calls = []
    real_flow_for = experiments.flow_for

    def counting(name, l_g=None, runtime=None, sim_backend="auto"):
        calls.append(name)
        return real_flow_for(name, l_g, runtime=runtime, sim_backend=sim_backend)

    monkeypatch.setattr(experiments, "flow_for", counting)
    with RuntimeContext(cache_dir=cache, resume=True) as resumed:
        resumed_rows = experiments.table6_rows(("s27",), runtime=resumed)
    assert calls == ["s27"], "tampered checkpoint must trigger recompute"
    assert resumed.stats.journal_skips == 0
    assert resumed_rows == rows


def test_interrupted_sweep_resumes_to_the_identical_report(
    tmp_path, monkeypatch
):
    # Bound the runtime of the g208 flows this test really computes.
    monkeypatch.setitem(experiments.LG_BY_CIRCUIT, "g208", 64)
    suite = ("s27", "g208")
    real_flow_for = experiments.flow_for

    # The uninterrupted reference sweep (its own cache dir).
    with RuntimeContext(cache_dir=tmp_path / "ref") as rt:
        reference = experiments.table6_rows(suite, runtime=rt)

    # A sweep killed by SIGTERM after s27 completed.
    experiments.clear_cache()
    cache = tmp_path / "cache"

    def interrupted(name, l_g=None, runtime=None, sim_backend="auto"):
        if name == "g208":
            raise SweepInterrupted("SIGTERM")
        return real_flow_for(name, l_g, runtime=runtime, sim_backend=sim_backend)

    monkeypatch.setattr(experiments, "flow_for", interrupted)
    with RuntimeContext(cache_dir=cache) as rt:
        with pytest.raises(SweepInterrupted):
            experiments.table6_rows(suite, runtime=rt)
    assert rt.stats.journal_records == 1, "s27 checkpointed before the kill"

    # The resumed sweep: skips s27, computes only g208, and the final
    # report equals the uninterrupted run's exactly.
    experiments.clear_cache()
    calls = []

    def counting(name, l_g=None, runtime=None, sim_backend="auto"):
        calls.append(name)
        return real_flow_for(name, l_g, runtime=runtime, sim_backend=sim_backend)

    monkeypatch.setattr(experiments, "flow_for", counting)
    with RuntimeContext(cache_dir=cache, resume=True) as resumed:
        rows = experiments.table6_rows(suite, runtime=resumed)
    assert calls == ["g208"]
    assert resumed.stats.journal_skips == 1
    assert rows == reference


# -- signal handling ----------------------------------------------------------


def test_handle_termination_converts_sigint():
    with pytest.raises(SweepInterrupted) as excinfo:
        with handle_termination():
            signal.raise_signal(signal.SIGINT)
    assert excinfo.value.signame == "SIGINT"
    assert "--resume" in str(excinfo.value)


def test_handle_termination_converts_sigterm():
    with pytest.raises(SweepInterrupted) as excinfo:
        with handle_termination():
            signal.raise_signal(signal.SIGTERM)
    assert excinfo.value.signame == "SIGTERM"


def test_handle_termination_restores_previous_handlers():
    before_int = signal.getsignal(signal.SIGINT)
    before_term = signal.getsignal(signal.SIGTERM)
    with handle_termination():
        assert signal.getsignal(signal.SIGINT) is not before_int
    assert signal.getsignal(signal.SIGINT) is before_int
    assert signal.getsignal(signal.SIGTERM) is before_term
