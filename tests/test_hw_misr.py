"""Tests for the MISR: software model, netlist equivalence, and
signature-based fault grading."""

from __future__ import annotations

import pytest

from repro.core import ProcedureConfig, select_weight_assignments
from repro.errors import HardwareError
from repro.hw import Misr, signature_coverage, synthesize_misr
from repro.sim import LogicSimulator, V0, V1
from repro.util.rng import DeterministicRng


class TestMisrModel:
    def test_deterministic(self):
        a = Misr(8, 3)
        b = Misr(8, 3)
        vectors = [(1, 0, 1), (0, 1, 1), (1, 1, 1)]
        assert a.run(vectors) == b.run(vectors)

    def test_order_sensitivity(self):
        a = Misr(8, 2)
        b = Misr(8, 2)
        a.run([(1, 0), (0, 1)])
        b.run([(0, 1), (1, 0)])
        assert a.signature != b.signature

    def test_single_bit_difference_changes_signature(self):
        rng = DeterministicRng(9)
        vectors = [tuple(rng.bit() for _ in range(4)) for _ in range(30)]
        base = Misr(12, 4).run(vectors)
        flipped = [list(v) for v in vectors]
        flipped[7][2] ^= 1
        assert Misr(12, 4).run([tuple(v) for v in flipped]) != base

    def test_width_validation(self):
        with pytest.raises(HardwareError):
            Misr(4, 5)  # more channels than register bits

    def test_non_binary_rejected(self):
        misr = Misr(8, 1)
        with pytest.raises(HardwareError):
            misr.absorb((2,))

    def test_wrong_channel_count_rejected(self):
        misr = Misr(8, 2)
        with pytest.raises(HardwareError):
            misr.absorb((1,))

    def test_aliasing_probability(self):
        assert Misr(16, 4).aliasing_probability() == pytest.approx(2**-16)

    def test_zero_stream_keeps_zero_state(self):
        misr = Misr(8, 2, seed=0)
        misr.run([(0, 0)] * 20)
        assert misr.signature == 0


class TestMisrNetlist:
    @pytest.mark.parametrize("width,n_inputs", [(4, 2), (8, 3), (8, 8)])
    def test_hardware_matches_software(self, width, n_inputs):
        rng = DeterministicRng(width * 100 + n_inputs)
        vectors = [
            tuple(rng.bit() for _ in range(n_inputs)) for _ in range(25)
        ]
        golden = Misr(width, n_inputs)
        golden.run(vectors)

        circuit = synthesize_misr(width, n_inputs)
        stimulus = [(V1,) + (0,) * n_inputs]
        stimulus += [(V0,) + v for v in vectors]
        stimulus += [(V0,) + (0,) * n_inputs]  # flush cycle: state visible
        trace = LogicSimulator(circuit).run(stimulus)
        # The signature after the last absorb appears one cycle later,
        # but that extra cycle also absorbed the zero vector; compare
        # against a golden that absorbed it too.
        golden.absorb((0,) * n_inputs)
        hw = 0
        for k, value in enumerate(trace.outputs[-1]):
            assert value in (V0, V1)
            hw |= value << k
        # trace.outputs[-1] shows state at the flush cycle start == after
        # the last data absorb; the flush absorb lands after the trace.
        sw_before_flush = Misr(width, n_inputs)
        sw_before_flush.run(vectors)
        assert hw == sw_before_flush.signature

    def test_reset_clears(self):
        circuit = synthesize_misr(4, 1)
        trace = LogicSimulator(circuit).run([(V1, 1), (V0, 0)])
        assert trace.outputs[1] == (V0, V0, V0, V0)


class TestSignatureCoverage:
    def test_s27_signature_grading(self, s27, s27_faults, paper_t):
        procedure = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=64)
        )
        stimuli = [
            entry.assignment.generate(procedure.l_g).patterns
            for entry in procedure.omega
        ]
        grading = signature_coverage(s27, stimuli, list(s27_faults))
        total = (
            len(grading.detected)
            + len(grading.aliased)
            + len(grading.unknown)
            + len(grading.undetected)
        )
        assert total == 32
        # Signature detection can only lose faults vs per-cycle
        # observation, never gain.
        assert grading.coverage <= 1.0
        assert len(grading.detected) >= 1

    def test_signature_weaker_or_equal_to_percycle(self, s27, s27_faults, paper_t):
        from repro.sim import FaultSimulator

        stimuli = [paper_t.patterns]
        grading = signature_coverage(s27, stimuli, list(s27_faults))
        percycle = FaultSimulator(s27).run(paper_t.patterns, s27_faults)
        assert len(grading.detected) <= len(percycle.detection_time)
        # Every signature-detected fault is per-cycle detected.
        assert set(grading.detected) <= set(percycle.detection_time)
