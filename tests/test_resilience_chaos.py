"""The deterministic chaos-injection harness itself.

The whole point of :mod:`repro.resilience.chaos` is that injections
are a pure function of (seed, site): the same spec against the same
workload always injects the same faults.  These tests pin the spec
parser, the decision function's determinism and statistics, and the
worker-side wrapper's corrupt/hang behaviours.  (Crash injection calls
``os._exit`` and is exercised through a real process pool in
``test_resilience_executor.py``.)
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ChaosError
from repro.resilience import CORRUPT_PAYLOAD, ChaosSpec, chaos_call, task_digest


def test_parse_full_spec_round_trip():
    spec = ChaosSpec.parse(
        "crash=0.2,hang=0.1,corrupt=0.1,cache=0.3,seed=7,hang_s=2.0"
    )
    assert spec == ChaosSpec(
        crash=0.2, hang=0.1, corrupt=0.1, cache=0.3, seed=7, hang_s=2.0
    )


def test_parse_accepts_semicolons_spaces_and_blanks():
    spec = ChaosSpec.parse(" crash=0.5 ; seed=3 ,, ")
    assert spec.crash == 0.5
    assert spec.seed == 3
    assert spec.hang == spec.corrupt == spec.cache == 0.0


def test_parse_rejects_unknown_key():
    with pytest.raises(ChaosError, match="unknown chaos key"):
        ChaosSpec.parse("bogus=1")


def test_parse_rejects_non_numeric_value():
    with pytest.raises(ChaosError, match="not a number"):
        ChaosSpec.parse("crash=banana")


def test_parse_rejects_bare_word():
    with pytest.raises(ChaosError, match="not key=value"):
        ChaosSpec.parse("crash")


@pytest.mark.parametrize("field", ["crash", "hang", "corrupt", "cache"])
@pytest.mark.parametrize("rate", [-0.1, 1.5])
def test_rates_must_be_probabilities(field, rate):
    with pytest.raises(ChaosError, match="must be in"):
        ChaosSpec(**{field: rate})


def test_hang_duration_must_be_positive():
    with pytest.raises(ChaosError, match="hang_s"):
        ChaosSpec(hang_s=0.0)


def test_affects_workers():
    assert not ChaosSpec().affects_workers
    assert not ChaosSpec(cache=1.0).affects_workers
    assert ChaosSpec(crash=0.1).affects_workers
    assert ChaosSpec(hang=0.1).affects_workers
    assert ChaosSpec(corrupt=0.1).affects_workers


def test_decide_is_deterministic():
    spec = ChaosSpec(crash=0.5, seed=11)
    sites = [("fn", task_digest(("task", i)), attempt)
             for i in range(50) for attempt in range(3)]
    first = [spec.decide("crash", *site) for site in sites]
    second = [spec.decide("crash", *site) for site in sites]
    assert first == second
    assert any(first) and not all(first)


def test_decide_edge_rates():
    always = ChaosSpec(crash=1.0)
    never = ChaosSpec(crash=0.0)
    for i in range(20):
        assert always.decide("crash", "fn", i)
        assert not never.decide("crash", "fn", i)


def test_decide_rate_statistics():
    spec = ChaosSpec(crash=0.3, seed=5)
    n = 4000
    hits = sum(spec.decide("crash", "fn", i, 0) for i in range(n))
    assert 0.25 < hits / n < 0.35


def test_seed_changes_injection_pattern():
    sites = [("fn", task_digest(("t", i)), 0) for i in range(200)]
    a = [ChaosSpec(crash=0.5, seed=1).decide("crash", *s) for s in sites]
    b = [ChaosSpec(crash=0.5, seed=2).decide("crash", *s) for s in sites]
    assert a != b


def test_attempt_number_rerolls_the_dice():
    # Retries must not be doomed to repeat the injection forever (at
    # rates < 1): the attempt number is part of the decision site.
    spec = ChaosSpec(corrupt=0.5, seed=3)
    digest = task_digest(("some", "task"))
    verdicts = {spec.decide("corrupt", "fn", digest, a) for a in range(64)}
    assert verdicts == {True, False}


def test_task_digest_is_stable_and_discriminating():
    task = ("bench text", ((0, 1), (1, 0)), 5)
    assert task_digest(task) == task_digest(("bench text", ((0, 1), (1, 0)), 5))
    assert task_digest(task) != task_digest(("bench text", ((0, 1),), 5))
    assert len(task_digest(task)) == 16


def _echo_task(task):
    return ("result", 0.25)


def test_chaos_call_passthrough_when_inactive():
    spec = ChaosSpec(seed=1)
    assert chaos_call((spec, _echo_task, 0, ("t",))) == ("result", 0.25)


def test_chaos_call_corrupts_payload():
    spec = ChaosSpec(corrupt=1.0, seed=1)
    result, elapsed = chaos_call((spec, _echo_task, 0, ("t",)))
    assert result == CORRUPT_PAYLOAD
    assert elapsed == 0.25


def test_chaos_call_hang_sleeps_then_answers():
    spec = ChaosSpec(hang=1.0, seed=1, hang_s=0.05)
    t0 = time.perf_counter()
    result, _ = chaos_call((spec, _echo_task, 0, ("t",)))
    assert time.perf_counter() - t0 >= 0.05
    assert result == "result"
