"""End-to-end progress feed: ``GET /jobs/<key>/events`` + watch().

Boots a real server, runs a real flow, and follows its event stream.
The stream contract: seq 0 is ``job_queued``, then ``job_running``,
then flow stage events, finally ``job_done`` with the feed closed —
and the *kind sequence* is identical whether the job ran on the
in-process scheduler (workers=1) or a supervised worker pool
(workers=2).
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.serve.job import JobSpec

FAST = dict(circuit="s27", tgen_max_len=256, compaction_sims=8, l_g=64)


def fast_spec(seed=1, **overrides):
    return JobSpec(**{**FAST, "seed": seed, **overrides})


def run_and_watch(tmp_path, workers):
    config = ServerConfig(
        state_dir=tmp_path / f"state{workers}", port=0, workers=workers
    )
    with ServerThread(config) as url:
        client = ServeClient(url)
        key = client.submit(fast_spec(seed=5))["key"]
        events = list(client.watch(key, timeout_s=120.0))
        final = client.events(key)
    return key, events, final


def check_stream(events, final):
    assert events, "no events at all"
    kinds = [e["kind"] for e in events]
    seqs = [e["seq"] for e in events]
    assert seqs == list(range(len(events))), "gapless dense cursor"
    assert kinds[0] == "job_queued"
    assert kinds[1] == "job_running"
    assert kinds[-1] == "job_done"
    assert final["closed"] is True
    assert final["state"] == "done"
    assert int(final["next"]) == len(events)
    return kinds


def test_event_stream_contract_single_worker(tmp_path):
    _key, events, final = run_and_watch(tmp_path, workers=1)
    kinds = check_stream(events, final)
    # Real flow stages appear between running and done.
    assert len(kinds) > 3


def test_event_kind_sequence_identical_across_worker_modes(tmp_path):
    _, events_1, final_1 = run_and_watch(tmp_path, workers=1)
    _, events_2, final_2 = run_and_watch(tmp_path, workers=2)
    kinds_1 = check_stream(events_1, final_1)
    kinds_2 = check_stream(events_2, final_2)
    assert kinds_1 == kinds_2


def test_events_cursor_and_error_paths(tmp_path):
    config = ServerConfig(state_dir=tmp_path / "state", port=0)
    with ServerThread(config) as url:
        client = ServeClient(url)
        key = client.submit(fast_spec(seed=6))["key"]
        client.wait(key, timeout_s=60.0)

        # timeout=0 on a closed feed returns everything immediately.
        payload = client.events(key, since=0, timeout_s=0.0)
        total = len(payload["events"])
        assert payload["closed"] is True and total >= 3

        # A mid-stream cursor returns only the suffix.
        tail = client.events(key, since=total - 1)
        assert [e["seq"] for e in tail["events"]] == [total - 1]
        assert tail["next"] == total

        # Past-the-end cursor: no events, still closed.
        empty = client.events(key, since=total)
        assert empty["events"] == [] and empty["closed"] is True

        # Unknown job → 404, negative cursor → 400; both ServeError.
        with pytest.raises(ServeError):
            client.events("no-such-job")
        with pytest.raises(ServeError):
            client.events(key, since=-1)
