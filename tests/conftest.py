"""Shared fixtures: the s27 circuit, the paper's Table-1 sequence, and
small hand-checkable circuits."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder, load_circuit
from repro.sim import collapse_faults
from repro.tgen import TestSequence

#: The deterministic test sequence of the paper's Table 1 (s27).
PAPER_T_STRINGS = (
    "0111",
    "1001",
    "0111",
    "1001",
    "0100",
    "1011",
    "1001",
    "0000",
    "0000",
    "1011",
)


@pytest.fixture(scope="session")
def s27():
    """The genuine ISCAS-89 s27 circuit."""
    return load_circuit("s27")


@pytest.fixture(scope="session")
def s27_faults(s27):
    """s27's collapsed fault list (the paper's f_0 .. f_31)."""
    return collapse_faults(s27)


@pytest.fixture(scope="session")
def paper_t():
    """The paper's Table-1 test sequence for s27."""
    return TestSequence.from_strings(PAPER_T_STRINGS)


@pytest.fixture(scope="session")
def g208():
    """The synthetic stand-in for ISCAS-89 s208."""
    return load_circuit("g208")


@pytest.fixture()
def toggle_circuit():
    """A 1-input, 1-flop toggle circuit: q' = q XOR en, PO = q.

    The flop is initializable only through the XOR when ``q`` is known,
    so it stays X forever from an all-X start — useful for testing
    X-propagation semantics.
    """
    b = CircuitBuilder("toggle")
    b.input("en")
    b.dff("q", "d")
    b.xor("d", "q", "en")
    b.output("q")
    return b.build()


@pytest.fixture()
def settable_circuit():
    """A 2-input circuit whose flop initializes through an AND gate:
    q' = AND(set, en); POs: q and an inverter off q."""
    b = CircuitBuilder("settable")
    b.input("set")
    b.input("en")
    b.dff("q", "d")
    b.and_("d", "set", "en")
    b.not_("nq", "q")
    b.output("q")
    b.output("nq")
    return b.build()


@pytest.fixture()
def comb_circuit():
    """A purely combinational circuit (no flops): y = NAND(a, OR(b, c))."""
    b = CircuitBuilder("comb")
    b.input("a")
    b.input("b")
    b.input("c")
    b.or_("o", "b", "c")
    b.nand("y", "a", "o")
    b.output("y")
    return b.build()
