"""Tests for the Circuit netlist graph."""

from __future__ import annotations

import pytest

from repro.circuit import Circuit, CircuitBuilder
from repro.circuit.gates import Gate, GateType
from repro.errors import NetlistError


def _simple() -> Circuit:
    b = CircuitBuilder("c")
    b.input("a")
    b.input("b")
    b.and_("y", "a", "b")
    b.output("y")
    return b.build()


class TestConstruction:
    def test_duplicate_driver_raises(self):
        gates = [Gate("a", GateType.INPUT, ()), Gate("a", GateType.INPUT, ())]
        with pytest.raises(NetlistError, match="duplicate"):
            Circuit("c", gates, [])

    def test_undriven_fanin_raises(self):
        gates = [Gate("y", GateType.NOT, ("ghost",))]
        with pytest.raises(NetlistError, match="undriven"):
            Circuit("c", gates, ["y"])

    def test_undriven_output_raises(self):
        gates = [Gate("a", GateType.INPUT, ())]
        with pytest.raises(NetlistError, match="not driven"):
            Circuit("c", gates, ["ghost"])

    def test_duplicate_output_raises(self):
        gates = [Gate("a", GateType.INPUT, ())]
        with pytest.raises(NetlistError, match="twice"):
            Circuit("c", gates, ["a", "a"])

    def test_combinational_cycle_raises(self):
        b = CircuitBuilder("cyc")
        b.input("a")
        b.and_("x", "a", "y")
        b.and_("y", "a", "x")
        b.output("y")
        with pytest.raises(NetlistError, match="cycle"):
            b.build()

    def test_cycle_error_reports_full_scc(self):
        # A 12-net loop: the error must name every member, not a
        # truncated prefix.
        b = CircuitBuilder("ring")
        b.input("a")
        names = [f"n{i:02d}" for i in range(12)]
        b.and_("n00", "a", "n11")
        for prev, cur in zip(names, names[1:]):
            b.not_(cur, prev)
        b.output("n00")
        with pytest.raises(NetlistError) as excinfo:
            b.build()
        message = str(excinfo.value)
        assert "1 strongly connected component" in message
        assert "[12 nets:" in message
        for name in names:
            assert name in message

    def test_cycle_error_truncates_past_cap(self):
        from repro.circuit.netlist import MAX_SCC_NETS_IN_ERROR

        n = MAX_SCC_NETS_IN_ERROR + 25
        b = CircuitBuilder("bigring")
        b.input("a")
        b.and_("m000", "a", f"m{n - 1:03d}")
        for i in range(1, n):
            b.not_(f"m{i:03d}", f"m{i - 1:03d}")
        b.output("m000")
        with pytest.raises(NetlistError) as excinfo:
            b.build()
        message = str(excinfo.value)
        assert f"[{n} nets:" in message
        assert "… and 25 more" in message

    def test_two_cycles_both_reported(self):
        b = CircuitBuilder("twins")
        b.input("a")
        b.not_("p", "q")
        b.not_("q", "p")
        b.not_("r", "s")
        b.not_("s", "r")
        b.and_("z", "q", "s")
        b.output("z")
        with pytest.raises(NetlistError) as excinfo:
            b.build()
        message = str(excinfo.value)
        assert "2 strongly connected components" in message
        assert "[2 nets: p, q]" in message
        assert "[2 nets: r, s]" in message

    def test_sequential_loop_is_fine(self):
        # Feedback through a flip-flop is not a combinational cycle.
        b = CircuitBuilder("seq")
        b.input("en")
        b.dff("q", "d")
        b.xor("d", "q", "en")
        b.output("q")
        circuit = b.build()
        assert circuit.flops == ("q",)


class TestQueries:
    def test_ports(self, s27):
        assert s27.inputs == ("G0", "G1", "G2", "G3")
        assert s27.outputs == ("G17",)
        assert set(s27.flops) == {"G5", "G6", "G7"}

    def test_counts(self, s27):
        assert s27.num_gates(combinational_only=True) == 10
        assert len(s27) == 17  # 4 PI + 3 DFF + 10 gates

    def test_fanout(self, s27):
        # G11 drives G17, G10 (pin 1) and the DFF G6.
        sinks = dict(s27.fanout("G11"))
        assert set(sinks) == {"G17", "G10", "G6"}
        assert s27.fanout_count("G11") == 3

    def test_fanout_unknown_raises(self, s27):
        with pytest.raises(NetlistError):
            s27.fanout("nope")

    def test_gate_lookup(self, s27):
        assert s27.gate("G8").gtype is GateType.AND
        with pytest.raises(NetlistError):
            s27.gate("nope")

    def test_levels_monotone(self, s27):
        for net in s27.combinational_order:
            gate = s27.gate(net)
            assert s27.level(net) == 1 + max(s27.level(f) for f in gate.fanins)

    def test_sources_level_zero(self, s27):
        for net in list(s27.inputs) + list(s27.flops):
            assert s27.level(net) == 0

    def test_depth_positive(self, s27):
        assert s27.depth >= 1

    def test_topological_order_valid(self, s27):
        seen = set(s27.inputs) | set(s27.flops)
        for net in s27.combinational_order:
            for fanin in s27.gate(net).fanins:
                assert fanin in seen
            seen.add(net)

    def test_contains(self, s27):
        assert "G17" in s27
        assert "nope" not in s27

    def test_is_output(self, s27):
        assert s27.is_output("G17")
        assert not s27.is_output("G11")

    def test_nets_cover_everything(self, s27):
        assert set(s27.nets) == set(s27.gates)

    def test_repr(self):
        assert "1 POs" in repr(_simple())


class TestDeterminism:
    def test_same_input_same_order(self):
        # Levelization must not depend on dict iteration order.
        orders = set()
        for _ in range(3):
            b = CircuitBuilder("d")
            b.input("a")
            b.not_("x", "a")
            b.not_("y", "a")
            b.and_("z", "x", "y")
            b.output("z")
            orders.add(b.build().combinational_order)
        assert len(orders) == 1
