"""Property-based tests for trace structural invariants.

Random span programs are generated as nested trees of operations
(open a child span, bump a stats counter, fire an event) and executed
against a :class:`~repro.trace.span.Tracer`; the invariants below must
hold for every program:

* every span and event belongs to the tree (no orphans);
* every child's interval nests inside its parent's;
* counter deltas are conservative — each parent's delta equals its
  self-delta plus its children's, so everything sums to the root;
* events round-trip byte-exactly through the JSONL log.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime.metrics import RuntimeStats
from repro.trace import (
    Tracer,
    normalized_json,
    read_events_jsonl,
    write_events_jsonl,
)

COUNTERS = ("full_simulations", "cache_misses", "tasks_dispatched")
EVENT_KINDS = ("note", "omega", "cache_hit", "task_retry")

# One node of a span program: (name, counter bumps, event kinds, children)
_names = st.sampled_from(("phase", "mine", "screen", "row"))
_bumps = st.lists(st.sampled_from(COUNTERS), max_size=3)
_kinds = st.lists(st.sampled_from(EVENT_KINDS), max_size=3)
program_nodes = st.recursive(
    st.tuples(_names, _bumps, _kinds, st.just([])),
    lambda children: st.tuples(
        _names, _bumps, _kinds, st.lists(children, max_size=3)
    ),
    max_leaves=10,
)
programs = st.lists(program_nodes, min_size=1, max_size=4)


def run_program(program, stats):
    tracer = Tracer(stats=stats)

    def execute(node):
        name, bumps, kinds, children = node
        with tracer.span(name):
            for counter in bumps:
                setattr(stats, counter, getattr(stats, counter) + 1)
            for kind in kinds:
                tracer.event(kind, tag=name)
            for child in children:
                execute(child)

    for node in program:
        execute(node)
    root = tracer.finish()
    return tracer, root


@given(programs)
@settings(max_examples=30, deadline=None)
def test_no_orphan_spans_or_events(program):
    tracer, root = run_program(program, RuntimeStats())
    ids = {span.span_id for span in root.walk()}
    assert len(ids) == len(list(root.walk()))  # IDs unique
    parents = {root.span_id: None}
    for span in root.walk():
        for child in span.children:
            assert child.parent_id == span.span_id
            parents[child.span_id] = span.span_id
    assert set(parents) == ids  # every span reachable exactly once
    for event in tracer.events:
        assert event.span_id in ids  # every event anchored to a span


@given(programs)
@settings(max_examples=30, deadline=None)
def test_child_intervals_nest_inside_parents(program):
    _, root = run_program(program, RuntimeStats())
    for span in root.walk():
        assert span.t_end_s is not None
        assert span.t_end_s >= span.t_start_s
        for child in span.children:
            assert child.t_start_s >= span.t_start_s
            assert child.t_end_s <= span.t_end_s


@given(programs)
@settings(max_examples=30, deadline=None)
def test_counter_deltas_sum_to_root(program):
    stats = RuntimeStats()
    _, root = run_program(program, stats)
    for span in root.walk():
        if not span.children:
            continue
        total = dict(span.self_counter_deltas())
        for child in span.children:
            for name, value in child.counter_deltas.items():
                total[name] = total.get(name, 0.0) + value
        assert {k: v for k, v in total.items() if v} == span.counter_deltas
    expected_root = {
        name: float(value)
        for name, value in stats.snapshot().items()
        if value
    }
    assert root.counter_deltas == expected_root


@given(programs)
@settings(max_examples=20, deadline=None)
def test_events_round_trip_through_jsonl(tmp_path_factory, program):
    tracer, _ = run_program(program, RuntimeStats())
    path = tmp_path_factory.mktemp("jsonl") / "events.jsonl"
    count = write_events_jsonl(tracer.events, path)
    assert count == len(tracer.events)
    back = read_events_jsonl(path)
    assert [e.to_dict() for e in back] == [e.to_dict() for e in tracer.events]
    assert [e.seq for e in back] == list(range(len(back)))


@given(programs)
@settings(max_examples=20, deadline=None)
def test_normalization_is_timing_independent(program):
    """Running the same program twice normalizes identically even
    though raw timestamps differ."""
    t1, r1 = run_program(program, RuntimeStats())
    t2, r2 = run_program(program, RuntimeStats())
    assert normalized_json(r1, t1.events) == normalized_json(r2, t2.events)
