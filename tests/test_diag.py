"""Tests for the fault-dictionary diagnosis layer."""

from __future__ import annotations

import pytest

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.diag import FaultDictionary, observed_syndrome
from repro.sim import Fault, FaultSimulator, collapse_faults


def _mutate(circuit: Circuit, fault: Fault) -> Circuit:
    """Hard-wire ``fault`` into a copy of the circuit."""
    const_name = "__fc"
    const = Gate(
        const_name, GateType.CONST1 if fault.stuck else GateType.CONST0, ()
    )
    gates = []
    for net, gate in circuit.gates.items():
        fanins = list(gate.fanins)
        for pin in range(len(fanins)):
            if fault.is_branch:
                if net == fault.gate and pin == fault.pin:
                    fanins[pin] = const_name
            elif fanins[pin] == fault.net:
                fanins[pin] = const_name
        gates.append(Gate(net, gate.gtype, tuple(fanins)))
    gates.append(const)
    outputs = [
        const_name if (not fault.is_branch and out == fault.net) else out
        for out in circuit.outputs
    ]
    return Circuit(circuit.name + "_faulty", gates, outputs)


@pytest.fixture(scope="module")
def s27_dictionary(request):
    s27 = request.getfixturevalue("s27")
    paper_t = request.getfixturevalue("paper_t")
    faults = collapse_faults(s27)
    return FaultDictionary.build(s27, paper_t.patterns, faults)


class TestDictionary:
    def test_detected_faults_have_syndromes(self, s27, s27_faults, paper_t, s27_dictionary):
        detected = FaultSimulator(s27).run(paper_t.patterns, s27_faults).detected
        for fault in detected:
            assert s27_dictionary.syndrome(fault), fault

    def test_syndrome_first_failure_is_detection_time(
        self, s27, s27_faults, paper_t, s27_dictionary
    ):
        times = FaultSimulator(s27).run(paper_t.patterns, s27_faults).detection_time
        for fault, u_det in times.items():
            first = min(u for u, _po in s27_dictionary.syndrome(fault))
            assert first == u_det

    def test_equivalence_groups_partition_detected(self, s27_dictionary):
        groups = s27_dictionary.equivalence_groups()
        members = [f for g in groups for f in g]
        assert len(members) == len(set(members))

    def test_diagnose_injected_faults(self, s27, s27_faults, paper_t, s27_dictionary):
        # Inject each of several faults physically, observe the tester
        # syndrome, and require diagnosis to name the true fault exactly
        # (up to dictionary equivalence).
        diagnosed = 0
        for fault in s27_faults[:10]:
            syndrome = observed_syndrome(s27, _mutate(s27, fault), paper_t.patterns)
            if not syndrome:
                continue
            result = s27_dictionary.diagnose(syndrome)
            assert fault in result.exact, fault
            diagnosed += 1
        assert diagnosed >= 8

    def test_best_of_empty_is_none(self, s27_dictionary):
        result = s27_dictionary.diagnose(frozenset())
        assert result.best is None

    def test_partial_syndrome_ranks_superset_fault(
        self, s27, s27_faults, paper_t, s27_dictionary
    ):
        # Drop one failing position from a true syndrome: the true
        # fault should still rank at the top.
        fault = next(
            f for f in s27_faults if len(s27_dictionary.syndrome(f)) >= 3
        )
        full = set(s27_dictionary.syndrome(fault))
        partial = frozenset(sorted(full)[:-1])
        result = s27_dictionary.diagnose(partial)
        top_faults = [f for f, _s in result.ranked[:3]]
        assert fault in top_faults

    def test_faults_listing(self, s27_faults, s27_dictionary):
        assert set(s27_dictionary.faults) == set(s27_faults)
