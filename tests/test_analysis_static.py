"""Unit tests for the static implication engine's building blocks.

Value-set abstraction, structural analyses, implication learning and
the aggregate ``analyze`` pass.  The oracle cross-checks (no certified
fault is ever detected by the simulator) live in
``test_analysis_certificates.py``.
"""

from __future__ import annotations

import pytest

from repro.analysis.static import (
    ANALYSIS_FORMAT,
    CAN0,
    CAN1,
    CANX,
    Clamp,
    ImplicationEngine,
    SET_ALL,
    analyze,
    constants_of,
    fanout_free_regions,
    frame_fixpoint,
    gate_value_set,
    observable_nets,
    post_dominators,
    replay_implication_steps,
    set_from_str,
    set_to_str,
)
from repro.analysis.static.valuesets import SET_0, SET_1, SET_X
from repro.circuit import load_circuit, parse_bench_text
from repro.circuit.gates import GateType
from repro.errors import AnalysisError
from repro.sim import Fault, fault_name


def _circuit(text, name="fx"):
    return parse_bench_text(text, name)


class TestValueSetPrimitives:
    def test_round_trip_all_masks(self):
        for mask in range(1, 8):
            assert set_from_str(set_to_str(mask)) == mask

    def test_bad_character_raises(self):
        with pytest.raises(AnalysisError):
            set_from_str("2")

    def test_and_needs_all_ones_for_one(self):
        assert gate_value_set(GateType.AND, [SET_ALL, SET_1]) == SET_ALL
        assert gate_value_set(GateType.AND, [SET_0, SET_1]) == SET_0
        assert gate_value_set(GateType.AND, [SET_X, SET_1]) == SET_X

    def test_controlling_zero_wins_over_x(self):
        # AND(0, X) is 0 exactly — never X.
        assert gate_value_set(GateType.AND, [SET_0, SET_X]) == SET_0
        assert gate_value_set(GateType.OR, [SET_1, SET_X]) == SET_1

    def test_not_swaps_binary_keeps_x(self):
        assert gate_value_set(GateType.NOT, [SET_0]) == SET_1
        assert gate_value_set(GateType.NOT, [SET_X]) == SET_X
        assert gate_value_set(GateType.NOT, [CAN0 | CANX]) == (CAN1 | CANX)

    def test_xor_any_x_infects(self):
        assert gate_value_set(GateType.XOR, [SET_X, SET_1]) == SET_X
        assert gate_value_set(GateType.XOR, [SET_1, SET_1]) == SET_0
        assert gate_value_set(GateType.XNOR, [SET_1, SET_1]) == SET_1

    def test_xor_parity_image(self):
        # a ∈ {0,1}, b = 1 → a^b ∈ {1,0}: both parities achievable.
        both = CAN0 | CAN1
        assert gate_value_set(GateType.XOR, [both, SET_1]) == both

    def test_non_combinational_gate_raises(self):
        with pytest.raises(AnalysisError):
            gate_value_set(GateType.DFF, [SET_ALL])


class TestFrameFixpoint:
    def test_constant_cone_collapses(self):
        sets, _frames = frame_fixpoint(_circuit(
            "INPUT(a)\nOUTPUT(g)\nz = CONST0()\ng = AND(a, z)\n"
        ))
        assert sets["z"] == SET_0
        assert sets["g"] == SET_0
        assert sets["a"] == SET_ALL

    def test_flop_accumulates_initial_x(self):
        # q = DFF(CONST1): settles at 1, but starts unknown; the
        # accumulated set must keep the X of cycle 0.
        sets, _ = frame_fixpoint(_circuit(
            "INPUT(a)\nOUTPUT(po)\n"
            "one = CONST1()\nq = DFF(one)\npo = AND(a, q)\n"
        ))
        assert sets["q"] == (CAN1 | CANX)

    def test_stem_clamp_forces_singleton(self):
        circuit = _circuit("INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n")
        sets, _ = frame_fixpoint(circuit, Clamp("a", 1))
        assert sets["a"] == SET_1
        assert sets["g"] == SET_0

    def test_pin_clamp_leaves_stem_free(self):
        circuit = _circuit(
            "INPUT(a)\nOUTPUT(g)\nOUTPUT(h)\ng = BUF(a)\nh = NOT(a)\n"
        )
        sets, _ = frame_fixpoint(circuit, Clamp("a", 0, gate="g", pin=0))
        assert sets["g"] == SET_0      # reads the clamped pin
        assert sets["h"] == SET_ALL    # reads the true stem

    def test_max_frames_widens_soundly(self):
        # A 3-flop ring counter needs several frames; bounding to 1
        # must widen, never shrink, the result.
        text = (
            "INPUT(a)\nOUTPUT(po)\n"
            "q0 = DFF(q2)\nq1 = DFF(q0)\nq2 = DFF(q1)\n"
            "po = AND(a, q0)\n"
        )
        full, _ = frame_fixpoint(_circuit(text))
        bounded, _ = frame_fixpoint(_circuit(text), max_frames=1)
        for net, mask in full.items():
            assert bounded[net] & mask == mask

    def test_fixpoint_frame_bound(self):
        circuit = load_circuit("s27")
        _, frames = frame_fixpoint(circuit)
        assert frames <= 3 * len(circuit.flops) + 1

    def test_constants_of_only_binary_singletons(self):
        assert constants_of(
            {"a": SET_0, "b": SET_1, "c": SET_X, "d": CAN0 | CANX}
        ) == {"a": 0, "b": 1}


class TestStructure:
    CONE = (
        "INPUT(a)\nINPUT(b)\nOUTPUT(po)\n"
        "po = BUF(b)\ng1 = NOT(a)\ng2 = NOT(g1)\n"
    )

    def test_observable_excludes_dead_cone(self):
        observable = observable_nets(_circuit(self.CONE))
        assert observable == frozenset({"b", "po"})

    def test_observable_crosses_flops(self):
        observable = observable_nets(_circuit(
            "INPUT(a)\nOUTPUT(po)\nq = DFF(a)\npo = BUF(q)\n"
        ))
        assert "a" in observable

    def test_ffr_heads_stop_at_fanout_and_flops(self):
        circuit = _circuit(
            "INPUT(a)\nOUTPUT(po)\n"
            "g1 = NOT(a)\ng2 = BUF(g1)\nq = DFF(g2)\npo = BUF(q)\n"
        )
        heads = fanout_free_regions(circuit)
        # g1 → g2 is a single-fanout chain; g2 feeds a flop D pin, so
        # it is its own head and the chain collapses onto it.
        assert heads["g1"] == "g2"
        assert heads["g2"] == "g2"
        assert heads["po"] == "po"

    def test_post_dominators_funnel(self):
        circuit = _circuit(
            "INPUT(a)\nINPUT(b)\nOUTPUT(po)\n"
            "g1 = NOT(a)\ng2 = NOT(b)\npo = AND(g1, g2)\n"
        )
        doms = post_dominators(circuit)
        assert "po" in doms["g1"]
        assert "po" in doms["a"]
        assert doms["po"] == ("po",)


class TestImplicationEngine:
    def _engine(self, text):
        circuit = _circuit(text)
        sets, _ = frame_fixpoint(circuit)
        engine = ImplicationEngine(circuit, sets)
        engine.learn()
        return circuit, sets, engine

    def test_and_output_one_forces_inputs(self):
        _, _, engine = self._engine(
            "INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n"
        )
        implied = dict(engine.implications[("g", 1)])
        assert implied == {"a": 1, "b": 1}

    def test_contradiction_found_and_replayable(self):
        circuit, sets, engine = self._engine(
            "INPUT(a)\nOUTPUT(po)\n"
            "na = NOT(a)\ng = AND(a, na)\npo = OR(g, a)\n"
        )
        assert ("g", 1) in engine.impossible
        steps = engine.contradictions[("g", 1)]
        assert replay_implication_steps(circuit, sets, ("g", 1), steps)

    def test_tampered_replay_rejected(self):
        circuit, sets, engine = self._engine(
            "INPUT(a)\nOUTPUT(po)\n"
            "na = NOT(a)\ng = AND(a, na)\npo = OR(g, a)\n"
        )
        steps = [dict(s) for s in engine.contradictions[("g", 1)]]
        steps[-1]["net"] = "po"  # claim a conflict somewhere else
        assert not replay_implication_steps(circuit, sets, ("g", 1), steps)

    def test_replay_requires_assumption(self):
        circuit, sets, engine = self._engine(
            "INPUT(a)\nOUTPUT(po)\n"
            "na = NOT(a)\ng = AND(a, na)\npo = OR(g, a)\n"
        )
        steps = [
            dict(s)
            for s in engine.contradictions[("g", 1)]
            if s["why"] != "assume"
        ]
        assert not replay_implication_steps(circuit, sets, ("g", 1), steps)

    def test_propagation_closure_is_fixpoint(self):
        circuit, sets, engine = self._engine(
            "INPUT(a)\nINPUT(b)\nOUTPUT(po)\n"
            "g1 = AND(a, b)\ng2 = OR(g1, a)\npo = BUF(g2)\n"
        )
        closure = engine.propagate({"g1": 1})
        # Re-propagating the full closure must not add anything.
        again = engine.propagate(dict(closure))
        assert again == closure

    def test_value_set_impossible_literals_seeded(self):
        circuit = _circuit(
            "INPUT(a)\nOUTPUT(g)\nz = CONST0()\ng = AND(a, z)\n"
        )
        sets, _ = frame_fixpoint(circuit)
        engine = ImplicationEngine(circuit, sets)
        assert ("g", 1) in engine.impossible
        assert ("z", 1) in engine.impossible


class TestAnalyze:
    def test_payload_shape_and_summary(self, s27):
        analysis = analyze(s27)
        payload = analysis.payload
        assert payload["format"] == ANALYSIS_FORMAT
        assert payload["circuit"] == "s27"
        summary = payload["summary"]
        assert summary["n_faults"] == len(payload["faults"])
        assert summary["proved_untestable"] == analysis.n_proved
        assert sum(summary["by_kind"].values()) == analysis.n_proved

    def test_to_json_is_canonical(self, s27):
        a = analyze(s27).to_json()
        b = analyze(s27).to_json()
        assert a == b
        assert a.endswith("\n")

    def test_verdict_for_out_of_universe_fault(self, s27):
        analysis = analyze(s27, faults=[Fault("G10", 0)])
        other = Fault("G10", 1)
        assert fault_name(other) not in analysis.payload["faults"]
        # On-demand proving must be memoized and deterministic.
        first = analysis.verdict(other)
        assert analysis.verdict(other) is first

    def test_cache_round_trip(self, s27, tmp_path):
        from repro.runtime import RuntimeContext

        with RuntimeContext(cache_dir=tmp_path) as runtime:
            cold = analyze(s27, runtime=runtime)
            cold_misses = runtime.stats.cache_misses
        with RuntimeContext(cache_dir=tmp_path) as runtime:
            warm = analyze(s27, runtime=runtime)
            warm_misses = runtime.stats.cache_misses
        assert warm.payload == cold.payload
        assert cold_misses == 1
        assert warm_misses == 0

    def test_g208_finds_redundancy(self, g208):
        analysis = analyze(g208)
        assert analysis.n_proved > 0
        for name, cert in analysis.certificates.items():
            assert cert.name == name
