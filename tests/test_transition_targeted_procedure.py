"""The weight-selection procedure retargeted at transition faults.

E18 showed that weights mined against stuck-at detection times are
mediocre for delay faults; this exercises the fix the library supports:
run the *same* Section-4.2 procedure with the transition fault
simulator.  The paper's coverage guarantee carries over verbatim —
whatever ``T`` detects (now: transition faults), ``Ω`` detects.
"""

from __future__ import annotations

import pytest

from repro.core import ProcedureConfig, reverse_order_simulation, select_weight_assignments
from repro.sim import TransitionFaultSimulator, all_transition_faults
from repro.tgen import generate_test_sequence


@pytest.fixture(scope="module")
def transition_procedure(request):
    s27 = request.getfixturevalue("s27")
    paper_t = request.getfixturevalue("paper_t")
    sim = TransitionFaultSimulator(s27)
    faults = all_transition_faults(s27)
    result = select_weight_assignments(
        s27,
        paper_t,
        faults,
        ProcedureConfig(l_g=64),
        simulator=sim,
    )
    return s27, paper_t, sim, faults, result


class TestTransitionTargetedProcedure:
    def test_targets_are_what_t_detects(self, transition_procedure):
        s27, paper_t, sim, faults, result = transition_procedure
        direct = sim.run(paper_t.patterns, faults).detection_time
        assert set(result.target_faults) == set(direct)
        assert len(result.target_faults) > 0

    def test_omega_covers_all_transition_targets(self, transition_procedure):
        _s27, _t, sim, _faults, result = transition_procedure
        covered = set()
        for entry in result.omega:
            covered.update(entry.detected)
        assert covered == set(result.target_faults)

    def test_coverage_reverifies_from_scratch(self, transition_procedure):
        s27, _t, _sim, _faults, result = transition_procedure
        fresh = TransitionFaultSimulator(s27)
        covered = set()
        for entry in result.omega:
            t_g = entry.assignment.generate(result.l_g)
            covered.update(
                fresh.run(t_g.patterns, list(result.target_faults)).detection_time
            )
        assert covered == set(result.target_faults)

    def test_reverse_order_with_transition_simulator(self, transition_procedure):
        s27, _t, sim, _faults, result = transition_procedure
        ros = reverse_order_simulation(s27, result, simulator=sim)
        assert ros.n_kept >= 1
        fresh = TransitionFaultSimulator(s27)
        covered = set()
        for assignment in ros.kept:
            t_g = assignment.generate(result.l_g)
            covered.update(
                fresh.run(t_g.patterns, list(result.target_faults)).detection_time
            )
        assert covered == set(result.target_faults)

    def test_works_on_generated_sequences(self, s27):
        # End to end with a generated (not paper) sequence.
        faults = all_transition_faults(s27)
        gen = generate_test_sequence(s27, seed=5, max_len=60)
        sim = TransitionFaultSimulator(s27)
        result = select_weight_assignments(
            s27, gen.sequence, faults, ProcedureConfig(l_g=64), simulator=sim
        )
        covered = set()
        for entry in result.omega:
            covered.update(entry.detected)
        assert covered == set(result.target_faults)
