"""Tests for .bench parsing and writing."""

from __future__ import annotations

import pytest

from repro.circuit import parse_bench, parse_bench_text, write_bench
from repro.circuit.bench import write_bench_file
from repro.circuit.gates import GateType
from repro.circuit.library import S27_BENCH
from repro.errors import BenchParseError


class TestParse:
    def test_parse_s27(self):
        circuit = parse_bench_text(S27_BENCH, "s27")
        assert circuit.inputs == ("G0", "G1", "G2", "G3")
        assert circuit.outputs == ("G17",)
        assert len(circuit.flops) == 3

    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        INPUT(a)

        OUTPUT(y)  # trailing comment
        y = NOT(a)
        """
        circuit = parse_bench_text(text)
        assert circuit.inputs == ("a",)

    def test_case_insensitive_gate_names(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = not(a)\n"
        assert parse_bench_text(text).gate("y").gtype is GateType.NOT

    def test_aliases(self):
        text = "INPUT(a)\nOUTPUT(y)\nb = INV(a)\ny = BUFF(b)\n"
        circuit = parse_bench_text(text)
        assert circuit.gate("b").gtype is GateType.NOT
        assert circuit.gate("y").gtype is GateType.BUF

    def test_output_before_driver(self):
        text = "OUTPUT(y)\nINPUT(a)\ny = BUF(a)\n"
        assert parse_bench_text(text).outputs == ("y",)

    def test_unknown_gate_raises_with_line(self):
        text = "INPUT(a)\ny = FROB(a)\n"
        with pytest.raises(BenchParseError, match="line 2"):
            parse_bench_text(text)

    def test_garbage_line_raises(self):
        with pytest.raises(BenchParseError, match="unparseable"):
            parse_bench_text("INPUT(a)\nthis is not bench\n")

    def test_arity_error_raises(self):
        with pytest.raises(BenchParseError):
            parse_bench_text("INPUT(a)\ny = NOT(a, a)\n")

    def test_undriven_net_raises(self):
        with pytest.raises(BenchParseError, match="invalid netlist"):
            parse_bench_text("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n")

    def test_whitespace_tolerance(self):
        text = "INPUT( a )\nOUTPUT( y )\ny   =  AND( a ,  a2 )\nINPUT(a2)\n"
        circuit = parse_bench_text(text)
        assert circuit.gate("y").fanins == ("a", "a2")


class TestRoundTrip:
    def test_s27_round_trip(self, s27):
        text = write_bench(s27)
        again = parse_bench_text(text, "s27")
        assert again.inputs == s27.inputs
        assert again.outputs == s27.outputs
        assert set(again.flops) == set(s27.flops)
        assert {n: (g.gtype, g.fanins) for n, g in again.gates.items()} == {
            n: (g.gtype, g.fanins) for n, g in s27.gates.items()
        }

    def test_file_round_trip(self, s27, tmp_path):
        path = tmp_path / "s27.bench"
        write_bench_file(s27, path)
        again = parse_bench(path)
        assert again.name == "s27"
        assert len(again) == len(s27)

    def test_parse_bench_uses_stem_as_name(self, s27, tmp_path):
        path = tmp_path / "mycircuit.bench"
        write_bench_file(s27, path)
        assert parse_bench(path).name == "mycircuit"
