"""Tests for repro.util: rng, bits, tables."""

from __future__ import annotations

import pytest

from repro.util import DeterministicRng, bit_count, format_table, iter_set_bits, mask_of_width


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.bit() for _ in range(64)] == [b.bit() for _ in range(64)]

    def test_different_seed_different_stream(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.bit() for _ in range(64)] != [b.bit() for _ in range(64)]

    def test_bits_width(self):
        rng = DeterministicRng(3)
        assert len(rng.bits(10)) == 10
        assert all(b in (0, 1) for b in rng.bits(100))

    def test_bits_zero(self):
        assert DeterministicRng(1).bits(0) == ()

    def test_bits_negative_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).bits(-1)

    def test_randint_bounds(self):
        rng = DeterministicRng(5)
        draws = [rng.randint(2, 4) for _ in range(100)]
        assert set(draws) <= {2, 3, 4}
        assert len(set(draws)) == 3  # all values hit over 100 draws

    def test_choice_and_sample(self):
        rng = DeterministicRng(7)
        items = ["a", "b", "c", "d"]
        assert rng.choice(items) in items
        picked = rng.sample(items, 2)
        assert len(picked) == 2 and len(set(picked)) == 2

    def test_fork_independent_and_deterministic(self):
        root1 = DeterministicRng(9)
        root2 = DeterministicRng(9)
        f1 = root1.fork(3)
        f2 = root2.fork(3)
        assert f1.bits(32) == f2.bits(32)
        other = DeterministicRng(9).fork(4)
        assert DeterministicRng(9).fork(3).bits(32) != other.bits(32)

    def test_shuffle_deterministic(self):
        a = list(range(20))
        b = list(range(20))
        DeterministicRng(11).shuffle(a)
        DeterministicRng(11).shuffle(b)
        assert a == b
        assert a != list(range(20))

    def test_seed_property(self):
        assert DeterministicRng(123).seed == 123


class TestBits:
    def test_mask_of_width(self):
        assert mask_of_width(0) == 0
        assert mask_of_width(1) == 1
        assert mask_of_width(8) == 0xFF
        assert mask_of_width(64) == (1 << 64) - 1

    def test_mask_negative_raises(self):
        with pytest.raises(ValueError):
            mask_of_width(-1)

    def test_bit_count(self):
        assert bit_count(0) == 0
        assert bit_count(0b1011) == 3
        assert bit_count(mask_of_width(100)) == 100

    def test_bit_count_negative_raises(self):
        with pytest.raises(ValueError):
            bit_count(-5)

    def test_iter_set_bits(self):
        assert list(iter_set_bits(0)) == []
        assert list(iter_set_bits(0b1010)) == [1, 3]
        assert list(iter_set_bits(1 << 70)) == [70]

    def test_iter_set_bits_negative_raises(self):
        with pytest.raises(ValueError):
            list(iter_set_bits(-1))


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "|" in lines[0]
        assert lines[1].count("+") == 1
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
