"""Smoke-execute every script in ``examples/``.

Each example is run as a real subprocess (fresh interpreter, no pytest
state) from a scratch working directory, so examples that write output
files cannot pollute the repository.  A script passes when it exits 0
without a traceback; stdout is also sanity-checked to be non-empty —
every example prints what it demonstrates.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_are_discovered():
    assert len(EXAMPLES) >= 8, "examples/ went missing or was emptied"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert "Traceback" not in result.stderr, result.stderr
    assert result.stdout.strip(), f"{script.name} printed nothing"
