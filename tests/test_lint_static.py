"""Implication-engine lint rules (C010–C013, `lint_static`)."""

from __future__ import annotations

from repro.circuit import load_circuit, parse_bench_text
from repro.lint import Severity, lint_static


def _circuit(text, name="fx"):
    return parse_bench_text(text, name)


def _rules(report):
    return [d.rule_id for d in report]


class TestProvablyConstant:
    def test_constant_fed_and_flagged(self):
        report = lint_static(_circuit(
            "INPUT(a)\nOUTPUT(g)\nz = CONST0()\ng = AND(a, z)\n"
        ))
        by_rule = report.by_rule()
        assert [d.location for d in by_rule["C010"]] == ["g"]
        assert "constant 0" in by_rule["C010"][0].message

    def test_const_gates_themselves_not_flagged(self):
        report = lint_static(_circuit(
            "INPUT(a)\nOUTPUT(g)\nz = CONST0()\ng = OR(a, z)\n"
        ))
        # g = OR(a, 0) is just a buffer of a — nothing constant except
        # the CONST gate itself, which is constant by design.
        assert "C010" not in report.by_rule()

    def test_flop_with_unknown_initial_state_not_flagged(self):
        # q = DFF(CONST0) settles to 0, but the initial state is X and
        # the accumulating fixpoint keeps it: {0, X} is not a binary
        # singleton, so the (sound) analysis must not call q constant.
        report = lint_static(_circuit(
            "INPUT(a)\nOUTPUT(po)\n"
            "z = CONST0()\nq = DFF(z)\npo = OR(a, q)\n"
        ))
        locations = {d.location for d in report.by_rule().get("C010", [])}
        assert "q" not in locations


class TestUnobservableCone:
    def test_one_aggregated_diagnostic(self):
        report = lint_static(_circuit(
            "INPUT(a)\nINPUT(b)\nOUTPUT(po)\n"
            "po = BUF(b)\ng1 = NOT(a)\ng2 = NOT(g1)\n"
        ))
        cones = report.by_rule()["C011"]
        assert len(cones) == 1
        assert "3 net(s)" in cones[0].message
        for net in ("a", "g1", "g2"):
            assert net in cones[0].message

    def test_fully_observable_circuit_clean(self):
        report = lint_static(_circuit(
            "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n"
        ))
        assert "C011" not in report.by_rule()


class TestRedundantGateInput:
    def test_noncontrolling_constant_pin(self):
        report = lint_static(_circuit(
            "INPUT(a)\nOUTPUT(g)\none = CONST1()\ng = AND(a, one)\n"
        ))
        redundant = report.by_rule()["C012"]
        assert len(redundant) == 1
        assert redundant[0].location == "g"
        assert "pin 1" in redundant[0].message

    def test_or_with_constant_zero_pin(self):
        report = lint_static(_circuit(
            "INPUT(a)\nOUTPUT(g)\nz = CONST0()\ng = OR(z, a)\n"
        ))
        redundant = report.by_rule()["C012"]
        assert len(redundant) == 1
        assert "pin 0" in redundant[0].message

    def test_controlling_constant_is_c010_not_c012(self):
        report = lint_static(_circuit(
            "INPUT(a)\nOUTPUT(g)\nz = CONST0()\ng = AND(a, z)\n"
        ))
        by_rule = report.by_rule()
        assert "C012" not in by_rule
        assert "C010" in by_rule


class TestImplicationContradiction:
    def test_never_computable_literal_reported(self):
        report = lint_static(_circuit(
            "INPUT(a)\nOUTPUT(po)\n"
            "na = NOT(a)\ng = AND(a, na)\npo = OR(g, a)\n"
        ))
        notes = report.by_rule()["C013"]
        assert len(notes) == 1
        assert notes[0].severity is Severity.NOTE
        assert "g = 1" in notes[0].message


class TestLibraryCircuits:
    def test_s27_is_clean(self):
        assert len(lint_static(load_circuit("s27"))) == 0

    def test_g386_findings_are_stable(self):
        report = lint_static(load_circuit("g386"))
        # The paper benchmark really does contain redundancy; pin the
        # rule mix so analysis changes surface here.
        by_rule = {k: len(v) for k, v in report.by_rule().items()}
        assert by_rule.get("C011", 0) == 1
        assert by_rule.get("C013", 0) >= 1

    def test_artifact_defaults_to_circuit_name(self):
        report = lint_static(load_circuit("s27"))
        assert report.diagnostics == ()
        named = lint_static(
            _circuit("INPUT(a)\nOUTPUT(g)\nz = CONST0()\ng = AND(a, z)\n",
                     "mycirc"),
            artifact="path/to/mycirc.bench",
        )
        assert all(
            d.artifact == "path/to/mycirc.bench" for d in named
        )
