"""Service-level chaos matrix: every injected failure mode, same bytes.

Each case boots a real multi-worker server (``ServerThread`` +
``ServeClient``) with a seeded service-chaos mix — worker crashes,
self-SIGKILL on claim, heartbeat hangs, stalls before the result
report, dead-on-arrival leases, torn shard-journal records — runs a
small campaign, and asserts the three promises that make the failure
injection worth having:

* **no job lost, none duplicated** — every submitted key converges to
  exactly one DONE record, on disk as well as over HTTP;
* **byte-identical results** — whatever crashed, hung or got fenced
  along the way, the served bytes equal a direct serial run's;
* **honest health** — ``/healthz`` reports per-worker liveness and
  ``/metrics`` the recovery counters that actually fired.

Chaos decisions are deterministic on ``(key, attempt)``, so every case
replays identically from its seed regardless of which worker drew the
job.
"""

from __future__ import annotations

import pytest

from repro.flows import run_full_flow
from repro.serve.job import DONE, QUEUED, JobSpec
from repro.serve.queue import JobQueue
from repro.serve.results import flow_result_payload, render_result
from repro.serve.client import ServeClient
from repro.serve.server import ServerConfig, ServerThread

SEEDS = (1, 2, 3, 4)


def campaign_spec(seed: int) -> JobSpec:
    return JobSpec(
        circuit="s27",
        task="flow",
        seed=seed,
        tgen_max_len=64,
        compaction_sims=0,
        l_g=32,
    )


@pytest.fixture(scope="module")
def reference():
    """Serial-run bytes per seed — the ground truth every case diffs
    against."""
    out = {}
    for seed in SEEDS:
        spec = campaign_spec(seed)
        flow = run_full_flow(spec.circuit, spec.flow_config())
        out[seed] = render_result(flow_result_payload(flow))
    return out


CASES = {
    # Crashes: workers die mid-compute or SIGKILL themselves the
    # moment a claim arrives.
    "crash": "worker_crash=0.4,kill_claim=0.3,seed=3",
    # Liveness: heartbeats pause long enough to trip the hang
    # detector, and some leases arrive pre-expired.
    "hang": "worker_hang=0.4,hang_s=1.0,lease_expire=0.3,seed=5",
    # Durability: shard-journal writes tear and workers stall between
    # computing and reporting (inviting lease expiry + fencing).
    "tear": "journal_tear=0.6,worker_stall=0.4,hang_s=1.0,seed=7",
    # Everything at once — the full matrix.
    "all": (
        "worker_crash=0.4,worker_hang=0.2,kill_claim=0.3,"
        "lease_expire=0.3,journal_tear=0.5,seed=11,hang_s=1.0"
    ),
}


@pytest.mark.parametrize("mix", sorted(CASES), ids=sorted(CASES))
def test_chaos_mix_converges_byte_identical(tmp_path, reference, mix):
    state = tmp_path / "state"
    config = ServerConfig(
        state_dir=state,
        port=0,
        workers=2,
        chaos=CASES[mix],
        lease_ttl_s=5.0,
        heartbeat_timeout_s=1.5,
    )
    with ServerThread(config) as url:
        client = ServeClient(url)
        keys = [client.submit(campaign_spec(seed))["key"] for seed in SEEDS]
        assert len(set(keys)) == len(SEEDS)

        records = client.wait_all(keys, timeout_s=240.0)
        assert [records[key]["state"] for key in keys] == [DONE] * len(SEEDS)

        # Byte-identity against the chaos-free serial run.
        for seed, key in zip(SEEDS, keys):
            assert client.result_bytes(key) == reference[seed]

        # Exactly the submitted jobs exist — no duplicates, no strays.
        listed = client.jobs()
        assert sorted(j["key"] for j in listed) == sorted(keys)

        # Health tells the truth: per-worker rows with liveness detail.
        workers = client.healthz()["workers"]
        assert len(workers) >= 2
        assert any(w["alive"] for w in workers if not w.get("degraded"))
        for row in workers:
            assert {"name", "shard", "alive", "busy", "restarts"} <= set(row)

        metrics = client.metrics()
        counters = metrics["counters"]
        queue_view = metrics["queue"]
        assert queue_view["jobs"] == {"done": len(SEEDS)}
        assert queue_view["active_leases"] == 0
        if mix in ("crash", "all"):
            assert counters["worker_restarts"] >= 1
        if mix in ("hang", "all"):
            assert counters["lease_expiries"] >= 1
        if mix in ("tear", "all"):
            assert queue_view["journal_tears"] >= 1

    # The journals survived the chaos: a cold rebuild from disk holds
    # exactly one record per submitted key — no loss, no duplication.
    # A job whose DONE transition was itself torn legitimately comes
    # back QUEUED (the write never became durable); rerunning it yields
    # the same bytes, and the result store already serves them.
    rebuilt = JobQueue(
        state / "queue" / "journal.json",
        shard_root=state / "queue" / "shards",
    )
    assert sorted(j.key for j in rebuilt.jobs()) == sorted(keys)
    assert all(j.state in (DONE, QUEUED) for j in rebuilt.jobs())
    if mix == "crash":  # no tears injected: durable state is terminal
        assert all(j.state == DONE for j in rebuilt.jobs())
