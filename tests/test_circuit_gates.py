"""Tests for the gate vocabulary."""

from __future__ import annotations

import pytest

from repro.circuit.gates import Gate, GateType, arity_bounds


class TestGateType:
    def test_sources(self):
        assert GateType.INPUT.is_source
        assert GateType.DFF.is_source
        assert GateType.CONST0.is_source
        assert GateType.CONST1.is_source
        assert not GateType.AND.is_source

    def test_combinational(self):
        for gtype in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
                      GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF):
            assert gtype.is_combinational
        for gtype in (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1):
            assert not gtype.is_combinational

    def test_inverting(self):
        assert GateType.NAND.is_inverting
        assert GateType.NOR.is_inverting
        assert GateType.NOT.is_inverting
        assert GateType.XNOR.is_inverting
        assert not GateType.AND.is_inverting
        assert not GateType.BUF.is_inverting


class TestArity:
    def test_input_takes_no_fanins(self):
        assert arity_bounds(GateType.INPUT) == (0, 0)
        with pytest.raises(ValueError):
            Gate("a", GateType.INPUT, ("x",))

    def test_not_takes_exactly_one(self):
        with pytest.raises(ValueError):
            Gate("a", GateType.NOT, ())
        with pytest.raises(ValueError):
            Gate("a", GateType.NOT, ("x", "y"))
        assert Gate("a", GateType.NOT, ("x",)).arity == 1

    def test_dff_takes_exactly_one(self):
        with pytest.raises(ValueError):
            Gate("q", GateType.DFF, ("a", "b"))
        assert Gate("q", GateType.DFF, ("d",)).arity == 1

    def test_xor_needs_two(self):
        with pytest.raises(ValueError):
            Gate("y", GateType.XOR, ("a",))
        assert Gate("y", GateType.XOR, ("a", "b", "c")).arity == 3

    def test_and_unbounded(self):
        fanins = tuple(f"x{i}" for i in range(10))
        assert Gate("y", GateType.AND, fanins).arity == 10


class TestGate:
    def test_describe_input(self):
        assert Gate("G0", GateType.INPUT, ()).describe() == "INPUT(G0)"

    def test_describe_gate(self):
        g = Gate("G8", GateType.AND, ("G14", "G6"))
        assert g.describe() == "G8 = AND(G14, G6)"

    def test_frozen(self):
        g = Gate("a", GateType.NOT, ("b",))
        with pytest.raises(AttributeError):
            g.name = "c"

    def test_equality(self):
        a = Gate("y", GateType.OR, ("a", "b"))
        b = Gate("y", GateType.OR, ("a", "b"))
        c = Gate("y", GateType.OR, ("b", "a"))
        assert a == b
        assert a != c  # pin order matters
