"""Cache-corruption recovery: discard, warn, recompute — never crash.

Every way an on-disk cache entry can go bad (truncated payload, stale
format version, mismatched key, unreadable path, a cache directory
wiped mid-run) must degrade to a cache miss with a
:class:`CacheIntegrityWarning` at worst, and the artifact must be
recomputed to the identical value.
"""

from __future__ import annotations

import json
import shutil
import warnings

import pytest

from repro.resilience import ChaosSpec
from repro.runtime import (
    ArtifactCache,
    CACHE_FORMAT,
    CacheIntegrityWarning,
    RuntimeContext,
    RuntimeStats,
)
from repro.sim import FaultSimulator


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache", stats=RuntimeStats())


def _entry_path(cache, key):
    return cache.root / f"{key}.json"


def test_truncated_entry_is_discarded_with_warning(cache):
    cache.put("k", {"v": 1})
    path = _entry_path(cache, "k")
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    with pytest.warns(CacheIntegrityWarning, match="not valid JSON"):
        assert cache.get("k") is None
    assert not path.exists()
    assert cache.stats.cache_discards == 1
    # The follow-up lookup is an ordinary silent miss.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert cache.get("k") is None


def test_stale_format_version_is_discarded(cache):
    path = _entry_path(cache, "k")
    cache.root.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"format": CACHE_FORMAT + 1, "key": "k", "payload": {}})
    )
    with pytest.warns(CacheIntegrityWarning, match="format version"):
        assert cache.get("k") is None
    assert not path.exists()


def test_mismatched_key_is_discarded(cache):
    cache.put("original", {"v": 1})
    # Simulate an entry that ended up under the wrong name (e.g. a
    # buggy sync tool renamed files in the cache dir).
    shutil.copy(_entry_path(cache, "original"), _entry_path(cache, "other"))
    with pytest.warns(CacheIntegrityWarning, match="mismatched key"):
        assert cache.get("other") is None
    assert cache.get("original") == {"v": 1}


def test_unreadable_entry_warns_and_misses(cache):
    # A directory squatting on the entry path: read_text raises
    # OSError, and so does the unlink — neither may crash the lookup.
    cache.root.mkdir(parents=True, exist_ok=True)
    _entry_path(cache, "k").mkdir()
    with pytest.warns(CacheIntegrityWarning, match="unreadable"):
        assert cache.get("k") is None
    assert cache.stats.cache_discards == 0, "discard failed, only warned"


def test_cache_dir_wiped_mid_run_is_a_silent_miss(cache):
    cache.put("k", {"v": 1})
    shutil.rmtree(cache.root)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert cache.get("k") is None
    # And the next store transparently recreates the directory.
    cache.put("k", {"v": 2})
    assert cache.get("k") == {"v": 2}


def test_chaos_vandalism_is_deterministic_and_recovered(tmp_path):
    stats = RuntimeStats()
    vandal = ArtifactCache(
        tmp_path / "cache", stats=stats, chaos=ChaosSpec(cache=1.0, seed=1)
    )
    vandal.put("k", {"v": 1})
    assert stats.chaos_injections == 1
    with pytest.warns(CacheIntegrityWarning):
        assert vandal.get("k") is None


def test_corrupt_entries_recomputed_end_to_end(
    s27, s27_faults, paper_t, tmp_path
):
    reference = FaultSimulator(s27).run(paper_t.patterns, s27_faults)
    cache_dir = tmp_path / "cache"
    with RuntimeContext(cache_dir=cache_dir) as rt:
        FaultSimulator(s27, runtime=rt).run(paper_t.patterns, s27_faults)
        assert rt.stats.cache_stores >= 1
    # Vandalize every entry on disk, then rerun against the same cache.
    for path in cache_dir.glob("*.json"):
        path.write_text(path.read_text()[:10])
    with RuntimeContext(cache_dir=cache_dir) as rt2:
        with pytest.warns(CacheIntegrityWarning):
            again = FaultSimulator(s27, runtime=rt2).run(
                paper_t.patterns, s27_faults
            )
    assert rt2.stats.cache_discards >= 1
    assert rt2.stats.full_sim_hits == 0
    assert again.detection_time == reference.detection_time
    assert again.undetected == reference.undetected
