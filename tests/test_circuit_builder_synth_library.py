"""Tests for CircuitBuilder, the synthetic generator, the embedded
library, and circuit statistics."""

from __future__ import annotations

import pytest

from repro.circuit import (
    CircuitBuilder,
    available_circuits,
    circuit_stats,
    load_circuit,
)
from repro.circuit.gates import GateType
from repro.circuit.library import synth_spec
from repro.circuit.stats import feedback_flops
from repro.circuit.synth import SynthSpec, synthesize
from repro.errors import NetlistError, ReproError


class TestBuilder:
    def test_all_gate_helpers(self):
        b = CircuitBuilder("all")
        b.input("a")
        b.input("b")
        b.const0("z0")
        b.const1("z1")
        b.and_("g1", "a", "b")
        b.nand("g2", "a", "b")
        b.or_("g3", "a", "b")
        b.nor("g4", "a", "b")
        b.xor("g5", "a", "b")
        b.xnor("g6", "a", "b")
        b.not_("g7", "a")
        b.buf("g8", "b")
        b.dff("q", "g1")
        b.output("g8")
        circuit = b.build()
        assert circuit.gate("g6").gtype is GateType.XNOR
        assert circuit.gate("z1").gtype is GateType.CONST1

    def test_duplicate_net_raises_immediately(self):
        b = CircuitBuilder("dup")
        b.input("a")
        with pytest.raises(NetlistError):
            b.input("a")

    def test_forward_reference_allowed(self):
        b = CircuitBuilder("fwd")
        b.input("a")
        b.not_("y", "later")  # declared below
        b.buf("later", "a")
        b.output("y")
        circuit = b.build()
        assert circuit.gate("y").fanins == ("later",)


class TestSynth:
    def test_deterministic(self):
        spec = SynthSpec("t", n_pi=4, n_po=2, n_ff=3, n_gates=30, seed=5)
        a = synthesize(spec)
        b = synthesize(spec)
        assert {n: (g.gtype, g.fanins) for n, g in a.gates.items()} == {
            n: (g.gtype, g.fanins) for n, g in b.gates.items()
        }

    def test_different_seeds_differ(self):
        a = synthesize(SynthSpec("t", 4, 2, 3, 30, seed=5))
        b = synthesize(SynthSpec("t", 4, 2, 3, 30, seed=6))
        assert {n: (g.gtype, g.fanins) for n, g in a.gates.items()} != {
            n: (g.gtype, g.fanins) for n, g in b.gates.items()
        }

    def test_interface_sizes(self):
        circuit = synthesize(SynthSpec("t", n_pi=7, n_po=3, n_ff=5, n_gates=50, seed=1))
        assert len(circuit.inputs) == 7
        assert len(circuit.flops) == 5
        # POs: requested count, plus possibly one XOR-observer output.
        assert len(circuit.outputs) in (3, 4)

    def test_no_dangling_logic(self):
        circuit = synthesize(SynthSpec("t", 5, 2, 4, 60, seed=9))
        for net in circuit.combinational_order:
            assert circuit.fanout_count(net) > 0 or circuit.is_output(net)

    def test_flops_have_feedback(self):
        circuit = synthesize(SynthSpec("t", 5, 2, 6, 80, seed=3))
        # At least one flop participates in sequential feedback.
        assert feedback_flops(circuit)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize(SynthSpec("t", n_pi=0, n_po=1, n_ff=1, n_gates=10))
        with pytest.raises(ValueError):
            synthesize(SynthSpec("t", n_pi=2, n_po=5, n_ff=1, n_gates=2))


class TestLibrary:
    def test_available_lists_s27_first(self):
        names = available_circuits()
        assert names[0] == "s27"
        assert "g208" in names

    def test_load_unknown_raises(self):
        with pytest.raises(ReproError, match="unknown circuit"):
            load_circuit("s9999")

    def test_cache_returns_same_object(self):
        assert load_circuit("s27") is load_circuit("s27")

    def test_stand_in_interface_matches_iscas(self):
        # g208 mirrors s208: 10 PI, 1 PO (+observer), 8 DFF.
        g = load_circuit("g208")
        assert len(g.inputs) == 10
        assert len(g.flops) == 8
        spec = synth_spec("g208")
        assert spec.n_gates == 96

    def test_synth_spec_unknown_raises(self):
        with pytest.raises(ReproError):
            synth_spec("s27")

    @pytest.mark.parametrize("name", ["g298", "g344", "g386"])
    def test_stand_ins_build(self, name):
        circuit = load_circuit(name)
        assert len(circuit.inputs) >= 3
        assert circuit.depth >= 2


class TestStats:
    def test_s27_stats(self, s27):
        stats = circuit_stats(s27)
        assert stats.n_pi == 4
        assert stats.n_po == 1
        assert stats.n_ff == 3
        assert stats.n_gates == 10
        assert stats.n_nets == 17
        assert dict(stats.gate_mix)["NOR"] == 4

    def test_describe(self, s27):
        text = circuit_stats(s27).describe()
        assert "s27" in text and "4 PI" in text

    def test_feedback_flops_s27(self, s27):
        # All three s27 flops sit in feedback loops.
        assert set(feedback_flops(s27)) == {"G5", "G6", "G7"}
