"""Tests for the flip-flop-modifying DFT baselines ([21]/[22])."""

from __future__ import annotations

import pytest

from repro.baselines.flopmod import (
    add_hold_mode,
    add_partial_reset,
    hold_mode_bist,
    modification_cost,
    partial_reset_bist,
)
from repro.circuit.gates import GateType
from repro.errors import NetlistError
from repro.sim import Fault, LogicSimulator, V0, V1, VX


class TestHoldMode:
    def test_structure(self, s27):
        modified = add_hold_mode(s27)
        assert modified.inputs == ("G0", "G1", "G2", "G3", "hold")
        assert set(modified.flops) == set(s27.flops)
        # 3 flops x 3 mux gates + 1 inverter = 10 extra gates.
        cost = modification_cost(s27, modified)
        assert cost.extra_gates == 10
        assert cost.extra_inputs == 1

    def test_hold_freezes_state(self, settable_circuit):
        modified = add_hold_mode(settable_circuit)
        sim = LogicSimulator(modified)
        # Initialize q to 1, then hold while inputs would clear it.
        trace = sim.run(
            [
                (V1, V1, 0),  # q' = 1
                (V0, V0, 1),  # held: q stays 1
                (V0, V0, 1),  # held: q stays 1
                (V0, V0, 0),  # released: q' = 0
                (V0, V0, 0),
            ]
        )
        q = [out[0] for out in trace.outputs]
        assert q == [VX, V1, V1, V1, V0]

    def test_subset_of_flops(self, s27):
        modified = add_hold_mode(s27, flops=["G5"])
        # Only G5's datapath gains the mux.
        assert "G5_next" in modified.gates
        assert "G6_next" not in modified.gates

    def test_unknown_flop_rejected(self, s27):
        with pytest.raises(NetlistError):
            add_hold_mode(s27, flops=["G8"])  # a gate, not a flop

    def test_name_collision_rejected(self, s27):
        with pytest.raises(NetlistError):
            add_hold_mode(s27, hold_input="G0")


class TestPartialReset:
    def test_structure(self, s27):
        modified = add_partial_reset(s27)
        assert modified.inputs[-1] == "preset"
        cost = modification_cost(s27, modified)
        assert cost.extra_gates == 4  # 3 AND + 1 inverter
        assert cost.extra_inputs == 1

    def test_reset_clears_state(self, settable_circuit):
        modified = add_partial_reset(settable_circuit)
        sim = LogicSimulator(modified)
        trace = sim.run(
            [
                (V1, V1, 0),  # q' = 1
                (V1, V1, 1),  # reset pulse: q' = 0
                (V0, V0, 0),
            ]
        )
        q = [out[0] for out in trace.outputs]
        assert q == [VX, V1, V0]

    def test_reset_initializes_from_x(self, toggle_circuit):
        # The toggle circuit is uninitializable; partial reset fixes it.
        modified = add_partial_reset(toggle_circuit)
        trace = LogicSimulator(modified).run([(V0, 1), (V1, 0), (V1, 0)])
        q = [out[0] for out in trace.outputs]
        assert q == [VX, V0, V1]


class TestBistDrivers:
    def _stem_faults(self, circuit):
        return [
            Fault(net, v)
            for net in circuit.gates
            if circuit.gate(net).gtype
            not in (GateType.CONST0, GateType.CONST1)
            for v in (0, 1)
        ]

    def test_hold_bist_runs(self, s27):
        faults = self._stem_faults(s27)
        result = hold_mode_bist(s27, faults, n_patterns=200, seed=3)
        assert 0.0 < result.coverage <= 1.0

    def test_partial_reset_bist_runs(self, s27):
        faults = self._stem_faults(s27)
        result = partial_reset_bist(s27, faults, n_patterns=200, seed=3)
        assert 0.0 < result.coverage <= 1.0

    def test_partial_reset_helps_uninitializable(self, toggle_circuit):
        # Plain random testing cannot detect anything (state never
        # leaves X); partial reset makes faults detectable.
        from repro.baselines import lfsr_bist

        faults = self._stem_faults(toggle_circuit)
        plain = lfsr_bist(toggle_circuit, faults, n_patterns=100)
        with_reset = partial_reset_bist(
            toggle_circuit, faults, n_patterns=100, reset_probability=0.2
        )
        assert plain.coverage == 0.0
        assert with_reset.coverage > 0.0

    def test_deterministic(self, s27):
        faults = self._stem_faults(s27)
        a = hold_mode_bist(s27, faults, n_patterns=100, seed=5)
        b = hold_mode_bist(s27, faults, n_patterns=100, seed=5)
        assert a.detection_time == b.detection_time
