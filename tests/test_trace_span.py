"""Unit tests for the span tree and tracer (:mod:`repro.trace.span`)."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.runtime.metrics import RuntimeStats
from repro.trace import ROOT_SPAN_ID, Span, Tracer, span_id_for


class TestSpanIds:
    def test_root_id_is_constant(self):
        assert Tracer().root.span_id == ROOT_SPAN_ID
        assert Tracer().root.span_id == ROOT_SPAN_ID

    def test_ids_are_stable_across_tracers(self):
        ids = []
        for _ in range(2):
            t = Tracer()
            with t.span("flow") as outer, t.span("phase") as inner:
                ids.append((outer.span_id, inner.span_id))
            t.finish()
        assert ids[0] == ids[1]

    def test_same_name_siblings_get_distinct_ids(self):
        t = Tracer()
        with t.span("phase") as a:
            pass
        with t.span("phase") as b:
            pass
        assert a.span_id != b.span_id
        assert a.span_id == span_id_for(ROOT_SPAN_ID, "phase", "0")
        assert b.span_id == span_id_for(ROOT_SPAN_ID, "phase", "1")

    def test_explicit_key_overrides_occurrence_index(self):
        t = Tracer()
        span = t.begin("task", category="task", key="deadbeef")
        t.end(span)
        assert span.span_id == span_id_for(ROOT_SPAN_ID, "task", "deadbeef")

    def test_ids_do_not_depend_on_timing(self):
        import time

        t1 = Tracer()
        with t1.span("a"):
            pass
        t2 = Tracer()
        time.sleep(0.01)
        with t2.span("a"):
            pass
        assert t1.root.children[0].span_id == t2.root.children[0].span_id


class TestTracerDiscipline:
    def test_nesting_and_stack(self):
        t = Tracer()
        with t.span("outer") as outer:
            assert t.current is outer
            with t.span("inner") as inner:
                assert t.current is inner
            assert t.current is outer
        assert t.current is t.root
        root = t.finish()
        assert [s.name for s in root.walk()] == ["trace", "outer", "inner"]

    def test_out_of_order_end_raises(self):
        t = Tracer()
        a = t.begin("a")
        t.begin("b")
        with pytest.raises(TraceError, match="out-of-order"):
            t.end(a)

    def test_end_without_open_span_raises(self):
        t = Tracer()
        with pytest.raises(TraceError, match="no open span"):
            t.end(t.root)

    def test_unknown_category_raises(self):
        t = Tracer()
        with pytest.raises(TraceError, match="category"):
            t.begin("x", category="nope")

    def test_finish_closes_open_spans_and_is_idempotent(self):
        t = Tracer()
        t.begin("a")
        t.begin("b")
        root = t.finish()
        assert t.finished
        for span in root.walk():
            assert span.t_end_s is not None
        assert t.finish() is root

    def test_begin_after_finish_raises(self):
        t = Tracer()
        t.finish()
        with pytest.raises(TraceError, match="finished"):
            t.begin("late")

    def test_event_after_finish_raises(self):
        t = Tracer()
        t.finish()
        with pytest.raises(TraceError, match="finished"):
            t.event("note")

    def test_span_closed_even_when_body_raises(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("doomed"):
                raise RuntimeError("boom")
        assert t.current is t.root
        assert t.root.children[0].t_end_s is not None


class TestEvents:
    def test_events_attach_to_current_span_with_global_seq(self):
        t = Tracer()
        t.event("note", msg="at root")
        with t.span("phase") as phase:
            t.event("omega", u=3)
        root = t.finish()
        assert [e.seq for e in t.events] == [0, 1]
        assert t.events[0].span_id == root.span_id
        assert t.events[1].span_id == phase.span_id
        assert t.events[1].attrs == {"u": 3}

    def test_unknown_kind_raises(self):
        t = Tracer()
        with pytest.raises(TraceError, match="unknown trace event kind"):
            t.event("not_a_kind")

    def test_attrs_are_coerced_to_scalars(self):
        t = Tracer()
        event = t.event("note", path=object())
        assert isinstance(event.attrs["path"], str)


class TestTaskSpans:
    def test_task_span_attached_closed_and_keyed(self):
        t = Tracer()
        with t.span("phase") as phase:
            task = t.add_task_span("fault_group", "abc123", 0.25, faults=8)
        assert task in phase.children
        assert task.category == "task"
        assert task.t_end_s is not None
        assert task.duration_s == pytest.approx(0.25)
        assert task.span_id == span_id_for(phase.span_id, "fault_group", "abc123")
        assert task.attrs == {"faults": 8}

    def test_task_span_never_starts_before_parent(self):
        t = Tracer()
        with t.span("phase") as phase:
            task = t.add_task_span("w", "k", 1e9)
        assert task.t_start_s >= phase.t_start_s


class TestCounterDeltas:
    def test_deltas_are_recorded_nonzero_only(self):
        stats = RuntimeStats()
        t = Tracer(stats=stats)
        with t.span("work"):
            stats.full_simulations += 2
        root = t.finish()
        work = root.children[0]
        assert work.counter_deltas == {"full_simulations": 2.0}
        assert root.counter_deltas == {"full_simulations": 2.0}

    def test_parent_delta_is_sum_of_children_plus_self(self):
        stats = RuntimeStats()
        t = Tracer(stats=stats)
        with t.span("parent"):
            stats.cache_misses += 1
            with t.span("child"):
                stats.cache_misses += 3
        root = t.finish()
        parent = root.children[0]
        child = parent.children[0]
        assert parent.counter_deltas == {"cache_misses": 4.0}
        assert child.counter_deltas == {"cache_misses": 3.0}
        assert parent.self_counter_deltas() == {"cache_misses": 1.0}

    def test_no_stats_means_no_deltas(self):
        t = Tracer()
        with t.span("work"):
            pass
        assert t.finish().children[0].counter_deltas == {}

    def test_snapshot_excludes_configuration(self):
        snap = RuntimeStats(jobs=8).snapshot()
        assert "jobs" not in snap
        assert "timers" not in snap
        assert snap["full_simulations"] == 0.0


class TestSpanSerialization:
    def test_round_trip(self):
        stats = RuntimeStats()
        t = Tracer(stats=stats)
        with t.span("flow", circuit="s27"):
            stats.full_simulations += 1
            t.add_task_span("fault_group", "k1", 0.1)
        root = t.finish()
        back = Span.from_dict(root.to_dict())
        assert [s.span_id for s in back.walk()] == [
            s.span_id for s in root.walk()
        ]
        assert [s.name for s in back.walk()] == [s.name for s in root.walk()]
        assert back.children[0].attrs == {"circuit": "s27"}
        assert back.children[0].counter_deltas == {"full_simulations": 1.0}
        assert back.children[0].duration_s == pytest.approx(
            root.children[0].duration_s
        )

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {"name": "x"},  # missing id
            {"id": "a", "name": "x", "attrs": 5},
            {"id": "a", "name": "x", "children": "nope"},
        ],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(TraceError):
            Span.from_dict(payload)
