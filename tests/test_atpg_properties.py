"""Property-based tests tying the ATPG model to the simulators.

The central property: the unrolled time-frame model, simulated with
the composite engine, must agree with the *sequential* simulators —
good machine with :class:`LogicSimulator`, faulty machine with the
bit-parallel fault simulator — at every net of every frame.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.atpg.unroll import unroll
from repro.circuit.synth import SynthSpec, synthesize
from repro.sim import LogicSimulator, collapse_faults
from repro.sim.compile import compile_circuit
from repro.sim.faultsim import _GroupSim
from repro.sim.values import V0, V1, VX

bits = st.integers(min_value=0, max_value=1)


def _model_values(model, patterns):
    """Composite-simulate the unrolled model under concrete PI patterns."""
    sources = dict(model.fixed)
    for frame, pattern in enumerate(patterns):
        for idx, value in zip(model.pi_of_frame(frame), pattern):
            sources[idx] = (value, value)
    return model.simulator().run(sources)


class TestUnrollEquivalence:
    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=1, max_value=5),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_good_machine_matches_sequential_sim(self, seed, n_frames, data):
        circuit = synthesize(SynthSpec("t", 3, 2, 2, 15, seed=seed))
        comp = compile_circuit(circuit)
        fault = collapse_faults(circuit)[0]
        model = unroll(comp, fault, n_frames)
        patterns = [
            tuple(data.draw(bits) for _ in circuit.inputs)
            for _ in range(n_frames)
        ]
        values = _model_values(model, patterns)
        trace = LogicSimulator(circuit, comp).run(patterns, record_nets=True)
        for frame in range(n_frames):
            offset = frame * comp.n_nets
            for name, idx in comp.index.items():
                good = values[offset + idx][0]
                assert good == trace.nets[frame][idx], (frame, name)

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=1, max_value=4),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_faulty_machine_matches_fault_simulator(self, seed, n_frames, data):
        circuit = synthesize(SynthSpec("t", 3, 2, 2, 15, seed=seed))
        comp = compile_circuit(circuit)
        faults = collapse_faults(circuit)
        fault = faults[data.draw(st.integers(0, len(faults) - 1))]
        model = unroll(comp, fault, n_frames)
        patterns = [
            tuple(data.draw(bits) for _ in circuit.inputs)
            for _ in range(n_frames)
        ]
        values = _model_values(model, patterns)

        flop_pos = {name: i for i, name in enumerate(circuit.flops)}
        group = _GroupSim(comp, flop_pos, [fault])
        for frame, pattern in enumerate(patterns):
            group.step(pattern)
            offset = frame * comp.n_nets
            for idx in range(comp.n_nets):
                ones, zeros = group.ones[idx], group.zeros[idx]
                if ones & 2:
                    expected = V1
                elif zeros & 2:
                    expected = V0
                else:
                    expected = VX
                faulty = values[offset + idx][1]
                assert faulty == expected, (frame, comp.names[idx], fault)

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_podem_success_implies_simulator_detection(self, seed, data):
        # Whatever PODEM claims to detect must re-verify on the fault
        # simulator (the driver asserts this too; here it is randomized).
        from repro.atpg.driver import generate_for_fault

        circuit = synthesize(SynthSpec("t", 4, 2, 2, 18, seed=seed))
        comp = compile_circuit(circuit)
        faults = collapse_faults(circuit)
        fault = faults[data.draw(st.integers(0, len(faults) - 1))]
        # generate_for_fault raises on any ATPG/simulator disagreement.
        generate_for_fault(circuit, fault, compiled=comp)
