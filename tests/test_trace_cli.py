"""CLI coverage for ``--trace`` and the ``repro trace`` subcommand:
happy paths plus the one-line error contract for every failure mode."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.flows import clear_cache
from repro.trace import load_trace, normalized_json


def _one_error_line(captured):
    assert "Traceback" not in captured.err
    err_lines = [line for line in captured.err.splitlines() if line]
    assert len(err_lines) == 1
    assert err_lines[0].startswith("repro: error:")
    return err_lines[0]


@pytest.fixture(scope="module")
def flow_trace(tmp_path_factory):
    """One traced flow run, shared by the read-only CLI tests."""
    clear_cache()
    path = tmp_path_factory.mktemp("trace") / "s27.trace.json"
    rc = main(
        ["flow", "s27", "--lg", "100", "--no-cache", "--trace", str(path)]
    )
    assert rc == 0
    return path


class TestTraceFlag:
    def test_flow_writes_trace_artifact(self, flow_trace, capsys):
        root, events = load_trace(flow_trace)
        names = {span.name for span in root.walk()}
        assert {"full_flow", "procedure", "reverse_order"} <= names
        assert any(e.kind == "stage" for e in events)

    def test_trace_format_text(self, tmp_path, capsys):
        clear_cache()
        path = tmp_path / "s27.trace.txt"
        rc = main(
            [
                "flow",
                "s27",
                "--lg",
                "100",
                "--no-cache",
                "--trace",
                str(path),
                "--trace-format",
                "text",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert f"wrote {path} (text trace)" in out
        assert path.read_text().startswith("- trace")

    def test_unwritable_trace_path_fails_before_the_flow(self, capsys):
        rc = main(
            ["flow", "s27", "--trace", "/nonexistent/dir/t.json"]
        )
        captured = capsys.readouterr()
        assert rc == 1
        line = _one_error_line(captured)
        assert "cannot write trace" in line
        assert "/nonexistent/dir" in line
        # fail-fast contract: no flow output was produced first
        assert "s27" not in captured.out

    def test_trace_path_that_is_a_directory_fails(self, tmp_path, capsys):
        rc = main(["flow", "s27", "--trace", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "is a directory" in _one_error_line(captured)

    def test_unknown_trace_format_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["flow", "s27", "--trace", "t.json", "--trace-format", "xml"])
        assert excinfo.value.code == 2
        assert "--trace-format" in capsys.readouterr().err


class TestTraceShow:
    def test_show(self, flow_trace, capsys):
        rc = main(["trace", "show", str(flow_trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("- trace")
        assert "full_flow" in out
        assert "events:" in out

    def test_show_missing_file(self, tmp_path, capsys):
        rc = main(["trace", "show", str(tmp_path / "absent.json")])
        captured = capsys.readouterr()
        assert rc == 1
        assert "cannot read trace" in _one_error_line(captured)

    def test_show_garbage_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{nope")
        rc = main(["trace", "show", str(path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "not valid JSON" in _one_error_line(captured)

    def test_bare_trace_prints_help(self, capsys):
        rc = main(["trace"])
        assert rc == 2
        assert "show" in capsys.readouterr().out


class TestTraceConvert:
    def test_convert_to_chrome(self, flow_trace, tmp_path, capsys):
        out_path = tmp_path / "s27.chrome.json"
        rc = main(
            [
                "trace",
                "convert",
                str(flow_trace),
                "--to",
                "chrome",
                "--output",
                str(out_path),
            ]
        )
        assert rc == 0
        assert f"wrote {out_path}" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"][0]["ph"] == "M"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_convert_round_trips_normalized_content(
        self, flow_trace, tmp_path, capsys
    ):
        out_path = tmp_path / "copy.json"
        rc = main(
            [
                "trace",
                "convert",
                str(flow_trace),
                "--to",
                "json",
                "--output",
                str(out_path),
            ]
        )
        assert rc == 0
        r1, e1 = load_trace(flow_trace)
        r2, e2 = load_trace(out_path)
        assert normalized_json(r1, e1) == normalized_json(r2, e2)

    def test_convert_unwritable_output(self, flow_trace, tmp_path, capsys):
        rc = main(
            [
                "trace",
                "convert",
                str(flow_trace),
                "--output",
                str(tmp_path / "no" / "dir" / "out.json"),
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "cannot write trace" in _one_error_line(captured)


class TestTraceCompare:
    def test_no_regressions(self, flow_trace, capsys):
        rc = main(["trace", "compare", str(flow_trace), str(flow_trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no phase regressions" in out
        assert "procedure" in out

    def test_regression_exits_nonzero(self, flow_trace, tmp_path, capsys):
        slow = tmp_path / "slow.json"
        slow.write_text(
            json.dumps({"phases": {"procedure": 3600.0, "compaction": 0.01}})
        )
        rc = main(["trace", "compare", str(flow_trace), str(slow)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSED" in captured.out
        assert "regressed beyond" in captured.err

    def test_tolerance_flag_suppresses_regression(
        self, flow_trace, tmp_path, capsys
    ):
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"phases": {"procedure": 0.2}}))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"phases": {"procedure": 0.1}}))
        assert (
            main(["trace", "compare", str(baseline), str(current)]) == 1
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "trace",
                    "compare",
                    str(baseline),
                    str(current),
                    "--tolerance",
                    "2.0",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_missing_baseline(self, flow_trace, tmp_path, capsys):
        rc = main(
            [
                "trace",
                "compare",
                str(tmp_path / "missing-baseline.json"),
                str(flow_trace),
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "baseline not found" in _one_error_line(captured)
