"""Tests for the BIST closure, observation-point insertion, Verilog
export, the LFSR-backed TPG, and the CLI."""

from __future__ import annotations

import pytest

from repro.circuit import (
    CircuitBuilder,
    load_circuit,
    parse_bench_text,
    write_bench,
    write_verilog,
)
from repro.cli import main as cli_main
from repro.core import WeightAssignment
from repro.errors import HardwareError, NetlistError
from repro.flows import compose_bist
from repro.hw import LfsrSpec, synthesize_tpg, verify_tpg
from repro.obs import insert_observation_points
from repro.sim import FaultSimulator


@pytest.fixture(scope="module")
def s27_tpg():
    cut = load_circuit("s27")
    a1 = WeightAssignment.from_strings(["01", "0", "100", "1"])
    a2 = WeightAssignment.from_strings(["100", "00", "01", "100"])
    return cut, synthesize_tpg([a1, a2], l_g=30, input_names=cut.inputs)


class TestBistClosure:
    def test_signature_matches_prediction(self, s27_tpg):
        cut, tpg = s27_tpg
        closure = compose_bist(cut, tpg)
        hw_sig, hw_x = closure.run_hardware()
        sw_sig, sw_x = closure.predict_signature()
        assert hw_x == 0 and sw_x == 0
        assert hw_sig == sw_sig

    def test_faulty_cut_changes_signature(self, s27_tpg):
        from repro.circuit.gates import Gate, GateType
        from repro.circuit.netlist import Circuit

        cut, tpg = s27_tpg
        good = compose_bist(cut, tpg)
        good_sig, _ = good.run_hardware()

        # G11 -> G17 branch stuck-at-0.
        gates = []
        for net, gate in cut.gates.items():
            fanins = tuple(
                "fc" if (net == "G17" and f == "G11") else f
                for f in gate.fanins
            )
            gates.append(Gate(net, gate.gtype, fanins))
        gates.append(Gate("fc", GateType.CONST0, ()))
        faulty = Circuit("s27f", gates, cut.outputs)
        bad = compose_bist(faulty, tpg, settle_cycles=good.settle_cycles)
        bad_sig, bad_x = bad.run_hardware()
        assert bad_x == 0
        assert bad_sig != good_sig

    def test_settle_computed(self, s27_tpg):
        cut, tpg = s27_tpg
        closure = compose_bist(cut, tpg)
        assert closure.settle_cycles >= 1

    def test_mismatched_ports_rejected(self, s27_tpg):
        cut, _tpg = s27_tpg
        narrow = synthesize_tpg(
            [WeightAssignment.from_strings(["0"])], l_g=4
        )
        with pytest.raises(HardwareError, match="drives"):
            compose_bist(cut, narrow)

    def test_uninitializable_cut_rejected(self):
        # A toggle flop never initializes -> settle cannot be computed.
        b = CircuitBuilder("t")
        b.input("en")
        b.dff("q", "d")
        b.xor("d", "q", "en")
        b.output("q")
        cut = b.build()
        tpg = synthesize_tpg(
            [WeightAssignment.from_strings(["1"])], l_g=8,
            input_names=cut.inputs,
        )
        with pytest.raises(HardwareError, match="X-free"):
            compose_bist(cut, tpg)


class TestLfsrTpg:
    def test_replay_with_random_weights(self):
        a1 = WeightAssignment.from_strings(["R", "01", "1"])
        a2 = WeightAssignment.from_strings(["100", "R", "R"])
        design = synthesize_tpg(
            [a1, a2], l_g=20, lfsr=LfsrSpec(width=6, seed=1)
        )
        assert verify_tpg(design).ok
        assert design.lfsr is not None

    def test_random_stream_not_constant(self):
        design = synthesize_tpg(
            [WeightAssignment.from_strings(["R"])],
            l_g=16,
            lfsr=LfsrSpec(width=5, seed=1),
        )
        stream = design.expected_stream(0).restrict(0)
        assert len(set(stream)) == 2  # both values occur

    def test_random_without_lfsr_rejected(self):
        with pytest.raises(HardwareError, match="LfsrSpec"):
            synthesize_tpg([WeightAssignment.from_strings(["R"])], l_g=4)

    def test_expected_stream_matches_deterministic_generate(self, s27_tpg):
        _cut, tpg = s27_tpg
        for j in range(tpg.n_assignments):
            assert tpg.expected_stream(j) == tpg.assignments[j].generate(tpg.l_g)

    def test_lfsr_resets_each_window(self):
        # Both assignments use R on the same input: identical streams.
        a1 = WeightAssignment.from_strings(["R", "0"])
        a2 = WeightAssignment.from_strings(["R", "1"])
        design = synthesize_tpg([a1, a2], l_g=12, lfsr=LfsrSpec(width=4))
        assert verify_tpg(design).ok
        s1 = design.expected_stream(0).restrict(0)
        s2 = design.expected_stream(1).restrict(0)
        assert s1 == s2


class TestObservationInsertion:
    def test_buffered_insertion(self, s27):
        observed = insert_observation_points(s27, ["G8", "G12"])
        assert len(observed.outputs) == 3
        assert "obs_G8" in observed.outputs
        # The observed net's original function is untouched.
        assert observed.gate("G8").fanins == s27.gate("G8").fanins

    def test_unbuffered_insertion(self, s27):
        observed = insert_observation_points(s27, ["G8"], buffered=False)
        assert observed.outputs == ("G17", "G8")

    def test_existing_output_skipped(self, s27):
        observed = insert_observation_points(s27, ["G17"])
        assert len(observed.outputs) == 1

    def test_unknown_line_rejected(self, s27):
        with pytest.raises(NetlistError):
            insert_observation_points(s27, ["nope"])

    def test_insertion_enables_detection(self, s27, s27_faults, paper_t):
        # End-to-end soundness: a fault undetected by a short prefix
        # becomes detected once one of its OP(f) lines is observed.
        from repro.obs import compute_op_sets
        from repro.core import select_weight_assignments, ProcedureConfig

        procedure = select_weight_assignments(
            s27, paper_t, s27_faults, ProcedureConfig(l_g=64)
        )
        first = procedure.omega[0]
        undetected = [
            f for f in procedure.target_faults if f not in set(first.detected)
        ]
        if not undetected:
            pytest.skip("first assignment covers everything")
        op_sets = compute_op_sets(
            s27, [first.assignment], undetected, procedure.l_g
        )
        fault = next(f for f in undetected if op_sets[f])
        line = sorted(op_sets[fault])[0]
        observed = insert_observation_points(s27, [line])
        t_g = first.assignment.generate(procedure.l_g)
        result = FaultSimulator(observed).run(t_g.patterns, [fault])
        assert fault in result.detection_time


class TestVerilogExport:
    def test_s27_module_structure(self, s27):
        text = write_verilog(s27)
        assert text.startswith("module s27 (")
        assert "input clk;" in text
        assert "always @(posedge clk)" in text
        for net in s27.flops:
            assert f"{net} <=" in text
        assert text.strip().endswith("endmodule")

    def test_combinational_module_has_no_clock(self, comb_circuit):
        text = write_verilog(comb_circuit)
        assert "clk" not in text
        assert "always" not in text

    def test_operators(self):
        b = CircuitBuilder("ops")
        b.input("a")
        b.input("b")
        b.nand("n1", "a", "b")
        b.xnor("n2", "a", "b")
        b.not_("n3", "a")
        b.buf("n4", "b")
        b.const1("one")
        b.and_("n5", "n1", "one")
        b.output("n5")
        text = write_verilog(b.build())
        assert "~(a & b)" in text
        assert "~(a ^ b)" in text
        assert "= ~a;" in text
        assert "= b;" in text
        assert "1'b1" in text

    def test_clock_collision_rejected(self, s27):
        from repro.errors import NetlistError

        with pytest.raises(NetlistError):
            write_verilog(s27, clock="G0")

    def test_tpg_exports(self, s27_tpg):
        _cut, tpg = s27_tpg
        text = write_verilog(tpg.circuit)
        assert "module tpg" in text
        assert "out_G0" in text


class TestCli:
    def test_circuits(self, capsys):
        assert cli_main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out and "g208" in out

    def test_flow_with_exports(self, capsys, tmp_path):
        verilog = tmp_path / "tpg.v"
        bench = tmp_path / "tpg.bench"
        code = cli_main(
            ["flow", "s27", "--lg", "64",
             "--verilog", str(verilog), "--bench", str(bench)]
        )
        assert code == 0
        assert "TPG verified: True" in capsys.readouterr().out
        assert verilog.exists() and bench.exists()
        # the .bench export round-trips
        again = parse_bench_text(bench.read_text(), "tpg")
        assert again.outputs

    def test_table6_single(self, capsys):
        assert cli_main(["table6", "s27"]) == 0
        assert "s27" in capsys.readouterr().out

    def test_flow_save_seq(self, capsys, tmp_path):
        from repro.tgen.io import load_sequence

        path = tmp_path / "t.seq"
        assert cli_main(
            ["flow", "s27", "--lg", "64", "--save-seq", str(path)]
        ) == 0
        sequence = load_sequence(path)
        assert len(sequence) > 0
        assert sequence.width == 4

    def test_atpg(self, capsys):
        assert cli_main(["atpg", "s27"]) == 0
        assert "32/32" in capsys.readouterr().out

    def test_bench_info(self, capsys, tmp_path, s27):
        path = tmp_path / "c.bench"
        path.write_text(write_bench(s27))
        assert cli_main(["bench-info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "52 (32 collapsed)" in out

    def test_no_command_shows_help(self, capsys):
        assert cli_main([]) == 2
