"""The multi-objective weight-assignment search (repro.optimize).

Covers the pure layers (NSGA-II ranking, genome operators, alphabet
construction) with unit and closure properties, and the full search
with the three guarantees the subsystem is built around:

* the greedy baseline always appears on (or is dominated by) the
  reported front;
* the rendered front is byte-identical for any worker count and cache
  temperature;
* an interrupted search resumed from its checkpoint journal produces
  byte-identical output to an uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.weight import Weight
from repro.core.weight_set import WeightSet
from repro.errors import OptimizeError, SweepInterrupted
from repro.optimize import (
    OptimizeConfig,
    build_alphabet,
    crossover,
    crowding_distance,
    derive_windows,
    dominates,
    fast_non_dominated_sort,
    genome_assignments,
    mutate,
    random_genome,
    render_front,
    run_optimize,
)
from repro.optimize.genome import genome_from_jsonable, genome_to_jsonable
from repro.runtime.context import RuntimeContext
from repro.util.rng import DeterministicRng

#: Small but real search budget: s27, short flow, two generations.
FAST = dict(
    population=4, generations=2, l_g=32, tgen_max_len=64, compaction_sims=0
)


def _w(text: str) -> Weight:
    return Weight.from_string(text)


# -- NSGA-II ranking ---------------------------------------------------------


class TestNsga:
    def test_dominates_is_strict_pareto(self):
        assert dominates((0.0, 1.0), (1.0, 1.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))  # equal: no
        assert not dominates((0.0, 2.0), (1.0, 1.0))  # trade-off: no

    def test_fast_non_dominated_sort_layers(self):
        objectives = [
            (1.0, 1.0),  # front 0
            (2.0, 2.0),  # dominated by 0: front 1
            (0.5, 3.0),  # front 0 (trade-off with 0)
            (3.0, 3.0),  # dominated by everything: front 2
        ]
        fronts = fast_non_dominated_sort(objectives)
        assert fronts == [[0, 2], [1], [3]]

    def test_sort_handles_all_equal(self):
        fronts = fast_non_dominated_sort([(1.0, 1.0)] * 3)
        assert fronts == [[0, 1, 2]]

    def test_crowding_boundary_points_are_infinite(self):
        objectives = [(0.0, 3.0), (1.0, 2.0), (2.0, 1.0), (3.0, 0.0)]
        crowd = crowding_distance(objectives, [0, 1, 2, 3])
        assert crowd[0] == float("inf") and crowd[3] == float("inf")
        assert 0.0 < crowd[1] < float("inf")

    def test_crowding_tiny_fronts_all_infinite(self):
        crowd = crowding_distance([(0.0, 1.0), (1.0, 0.0)], [0, 1])
        assert set(crowd.values()) == {float("inf")}


# -- alphabet and windows ----------------------------------------------------


class TestAlphabet:
    def test_kept_weights_lead_and_are_never_dropped(self):
        from repro.core import WeightAssignment

        kept = [WeightAssignment.from_strings(["01", "1"])]
        s = WeightSet()
        for text in ("1", "0", "00", "100", "01"):
            s.add(_w(text))
        alphabet = build_alphabet(kept, s, max_alphabet=3)
        assert list(alphabet[:2]) == [_w("01"), _w("1")]
        assert len(alphabet) == 3
        assert len(set(alphabet)) == 3

    def test_cap_below_kept_still_keeps_all_kept(self):
        from repro.core import WeightAssignment

        kept = [WeightAssignment.from_strings(["01", "1", "0"])]
        alphabet = build_alphabet(kept, WeightSet(), max_alphabet=1)
        assert list(alphabet) == [_w("01"), _w("1"), _w("0")]

    def test_empty_alphabet_is_an_error(self):
        with pytest.raises(OptimizeError):
            build_alphabet([], WeightSet())

    def test_windows_are_sorted_distinct_and_end_at_lg(self):
        assert derive_windows(64) == (16, 32, 64)
        assert derive_windows(2) == (1, 2)
        assert derive_windows(1) == (1,)
        with pytest.raises(OptimizeError):
            derive_windows(0)


# -- genome operators --------------------------------------------------------


def _in_space(genome, n_inputs, n_alphabet, n_windows, max_phases) -> bool:
    if not 1 <= len(genome) <= max_phases:
        return False
    for genes, window in genome:
        if len(genes) != n_inputs or not 0 <= window < n_windows:
            return False
        if not all(0 <= g < n_alphabet for g in genes):
            return False
    return True


class TestGenomeOperators:
    def test_operators_closed_over_the_quantized_space(self):
        # Whatever the rng does, variation can never leave the
        # alphabet/window grid the hardware supports.
        n_inputs, n_alphabet, n_windows, max_phases = 3, 4, 3, 4
        rng = DeterministicRng(7)
        pool = [
            random_genome(rng, n_inputs, n_alphabet, n_windows, max_phases)
            for _ in range(20)
        ]
        assert all(
            _in_space(g, n_inputs, n_alphabet, n_windows, max_phases)
            for g in pool
        )
        for i, a in enumerate(pool):
            b = pool[(i + 1) % len(pool)]
            child = crossover(rng, a, b)[:max_phases]
            mutant = mutate(
                rng, child, n_alphabet, n_windows, max_phases, rate=0.5
            )
            assert _in_space(
                mutant, n_inputs, n_alphabet, n_windows, max_phases
            )

    def test_operators_are_deterministic_in_the_rng(self):
        args = (2, 3, 2, 3)
        a = random_genome(DeterministicRng(1), *args)
        b = random_genome(DeterministicRng(2), *args)
        first = mutate(
            DeterministicRng(9), crossover(DeterministicRng(5), a, b),
            3, 2, 3, 0.3,
        )
        second = mutate(
            DeterministicRng(9), crossover(DeterministicRng(5), a, b),
            3, 2, 3, 0.3,
        )
        assert first == second

    def test_genome_assignments_dedup_first_appearance(self):
        alphabet = (_w("0"), _w("1"))
        genome = (((0, 1), 0), ((1, 0), 1), ((0, 1), 2))
        assignments = genome_assignments(genome, alphabet)
        assert [tuple(str(w) for w in a.weights) for a in assignments] == [
            ("0", "1"),
            ("1", "0"),
        ]

    def test_jsonable_round_trip(self):
        genome = (((0, 2), 1), ((1, 1), 0))
        assert genome_from_jsonable(genome_to_jsonable(genome)) == genome
        with pytest.raises((ValueError, TypeError)):
            genome_from_jsonable([])
        with pytest.raises((ValueError, TypeError)):
            genome_from_jsonable("bogus")


# -- configuration -----------------------------------------------------------


class TestConfig:
    def test_bad_budgets_raise(self):
        with pytest.raises(OptimizeError):
            OptimizeConfig(population=1)
        with pytest.raises(OptimizeError):
            OptimizeConfig(generations=-1)
        with pytest.raises(OptimizeError):
            OptimizeConfig(mutation_rate=1.5)


# -- the full search ---------------------------------------------------------


class TestSearch:
    def test_baseline_is_matched_or_dominated(self):
        result = run_optimize("s27", OptimizeConfig(**FAST))
        from repro.optimize import front_comparison

        comparison = front_comparison(result)
        assert comparison["dominates_or_matches_baseline"] is True
        # The archive guarantee, stated directly: no front point is
        # dominated by the greedy baseline.
        base = result.baseline.objectives
        assert not any(dominates(base, p.objectives) for p in result.front)

    def test_front_is_nondominated_and_sorted(self):
        result = run_optimize("s27", OptimizeConfig(**FAST))
        objs = [p.objectives for p in result.front]
        for i, a in enumerate(objs):
            assert not any(
                dominates(b, a) for j, b in enumerate(objs) if j != i
            )
        assert objs == sorted(objs)

    def test_byte_identical_across_worker_counts(self, tmp_path):
        cfg = OptimizeConfig(**FAST)
        with RuntimeContext(jobs=1, cache_dir=str(tmp_path / "a")) as runtime:
            serial = render_front(run_optimize("s27", cfg, runtime=runtime))
        with RuntimeContext(jobs=4, cache_dir=str(tmp_path / "b")) as runtime:
            parallel = render_front(run_optimize("s27", cfg, runtime=runtime))
        assert serial == parallel
        # And identical again against a warm cache.
        with RuntimeContext(jobs=2, cache_dir=str(tmp_path / "a")) as runtime:
            warm = render_front(run_optimize("s27", cfg, runtime=runtime))
            assert runtime.stats.full_sim_hits > 0
        assert warm == serial

    def test_interrupt_then_resume_is_byte_identical(
        self, tmp_path, monkeypatch
    ):
        from repro.optimize import search as search_mod

        cfg = OptimizeConfig(generations=3, **{
            k: v for k, v in FAST.items() if k != "generations"
        })
        with RuntimeContext(
            jobs=1, cache_dir=str(tmp_path / "golden")
        ) as runtime:
            golden = render_front(run_optimize("s27", cfg, runtime=runtime))

        state = str(tmp_path / "state")
        real = search_mod._Search.offspring
        calls = {"n": 0}

        def interrupted(self, rng):
            if calls["n"] >= 2:
                raise SweepInterrupted("simulated SIGTERM")
            calls["n"] += 1
            return real(self, rng)

        monkeypatch.setattr(search_mod._Search, "offspring", interrupted)
        with pytest.raises(SweepInterrupted):
            with RuntimeContext(jobs=1, cache_dir=state) as runtime:
                run_optimize("s27", cfg, runtime=runtime)
        monkeypatch.setattr(search_mod._Search, "offspring", real)

        with RuntimeContext(
            jobs=1, cache_dir=state, resume=True
        ) as runtime:
            result = run_optimize("s27", cfg, runtime=runtime)
        assert result.resumed_from == 2  # generations 0-2 checkpointed
        assert render_front(result) == golden


# -- CLI ---------------------------------------------------------------------


class TestCli:
    ARGS = [
        "optimize", "s27", "--population", "4", "--generations", "1",
        "--lg", "32", "--tgen-max-len", "64", "--compaction-sims", "0",
        "--no-cache",
    ]

    def test_smoke_writes_front_and_design(self, tmp_path, capsys):
        front = tmp_path / "front.json"
        design = tmp_path / "design.json"
        rc = main(
            self.ARGS
            + ["--output", str(front), "--save-tpg", str(design)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Pareto front" in out
        assert "dominates or matches the greedy baseline" in out
        assert front.read_text().startswith("{")
        from repro.lint import lint_design_path

        report = lint_design_path(design)
        assert report.error_count == 0
        assert "T004" not in report.by_rule()

    def test_error_contract_is_one_line(self, capsys):
        rc = main(["optimize", "s27", "--population", "1", "--no-cache"])
        err = capsys.readouterr().err
        assert rc == 1
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1
