"""Tests for observation-point insertion: greedy selection, OP(f)
computation, set covering, and the tradeoff sweep."""

from __future__ import annotations

import pytest

from repro.core import ProcedureConfig, select_weight_assignments
from repro.obs import (
    compute_op_sets,
    format_tradeoff,
    greedy_cover,
    greedy_select,
    observation_point_tradeoff,
)
from repro.sim import Fault, FaultSimulator


@pytest.fixture(scope="module")
def s27_procedure(s27, paper_t):
    # l_g = 10 keeps individual weighted sequences short enough that no
    # single assignment covers all 32 faults — the observation-point
    # tests need leftovers to work on.
    from repro.sim import collapse_faults

    return select_weight_assignments(
        s27, paper_t, collapse_faults(s27), ProcedureConfig(l_g=10)
    )


class TestGreedySelect:
    def test_covers_all_targets(self, s27, s27_procedure):
        picks = greedy_select(s27, s27_procedure)
        assert picks[-1].cumulative_detected == len(s27_procedure.target_faults)

    def test_marginal_gains_recorded(self, s27, s27_procedure):
        picks = greedy_select(s27, s27_procedure)
        running = 0
        for pick in picks:
            assert pick.new_faults
            running += len(pick.new_faults)
            assert pick.cumulative_detected == running

    def test_first_pick_is_max_cover(self, s27, s27_procedure):
        picks = greedy_select(s27, s27_procedure)
        sim = FaultSimulator(s27)
        targets = list(s27_procedure.target_faults)
        best = 0
        for entry in s27_procedure.omega:
            t_g = entry.assignment.generate(s27_procedure.l_g)
            best = max(best, len(sim.run(t_g.patterns, targets).detection_time))
        assert len(picks[0].new_faults) == best


class TestOpSets:
    def test_detected_faults_would_be_empty(self, s27, s27_procedure):
        # Compute OP sets for faults that ARE detected: their effects
        # reach lines trivially (including POs); this asserts shape only.
        picks = greedy_select(s27, s27_procedure)
        assignments = [picks[0].assignment]
        undetected = [
            f
            for f in s27_procedure.target_faults
            if f not in set(picks[0].new_faults)
        ]
        if not undetected:
            pytest.skip("first assignment already covers everything")
        op_sets = compute_op_sets(
            s27, assignments, undetected, s27_procedure.l_g
        )
        assert set(op_sets) == set(undetected)
        for lines in op_sets.values():
            for line in lines:
                assert line in s27

    def test_observing_op_line_detects_fault(self, s27, s27_procedure):
        # Soundness: add the observation point as a real PO and
        # re-simulate — the fault must now be detected.
        from repro.circuit import Circuit

        picks = greedy_select(s27, s27_procedure)
        assignments = [picks[0].assignment]
        undetected = [
            f
            for f in s27_procedure.target_faults
            if f not in set(picks[0].new_faults)
        ]
        if not undetected:
            pytest.skip("first assignment already covers everything")
        op_sets = compute_op_sets(s27, assignments, undetected, s27_procedure.l_g)
        checked = 0
        for fault, lines in op_sets.items():
            for line in sorted(lines)[:2]:
                observed = Circuit(
                    "s27obs",
                    list(s27.gates.values()),
                    list(s27.outputs) + ([line] if line not in s27.outputs else []),
                )
                t_g = assignments[0].generate(s27_procedure.l_g)
                result = FaultSimulator(observed).run(t_g.patterns, [fault])
                assert fault in result.detection_time, (fault, line)
                checked += 1
        assert checked > 0


class TestGreedyCover:
    def test_simple_cover(self):
        f1, f2, f3 = Fault("a", 0), Fault("a", 1), Fault("b", 0)
        op_sets = {f1: {"x"}, f2: {"x", "y"}, f3: {"y"}}
        result = greedy_cover(op_sets)
        assert set(result.lines) <= {"x", "y"}
        assert set(result.covered) == {f1, f2, f3}
        assert result.uncoverable == ()

    def test_uncoverable_reported(self):
        f1, f2 = Fault("a", 0), Fault("a", 1)
        result = greedy_cover({f1: {"x"}, f2: set()})
        assert result.uncoverable == (f2,)
        assert result.covered == (f1,)

    def test_greedy_prefers_big_lines(self):
        faults = [Fault(f"n{i}", 0) for i in range(5)]
        op_sets = {f: {"big"} for f in faults}
        op_sets[faults[0]] = {"big", "small"}
        result = greedy_cover(op_sets)
        assert result.lines == ("big",)

    def test_empty(self):
        result = greedy_cover({})
        assert result.lines == ()
        assert result.covered == ()


class TestTradeoff:
    def test_monotone_fault_efficiency(self, s27, s27_procedure):
        rows = observation_point_tradeoff(s27, s27_procedure)
        fes = [row.fault_efficiency for row in rows]
        assert fes == sorted(fes)
        assert rows[-1].fault_efficiency == 100.0
        assert rows[-1].n_observation_points == 0

    def test_with_obs_at_least_without(self, s27, s27_procedure):
        rows = observation_point_tradeoff(s27, s27_procedure)
        for row in rows:
            assert row.fault_efficiency_with_obs >= row.fault_efficiency

    def test_sequences_count_increments(self, s27, s27_procedure):
        rows = observation_point_tradeoff(s27, s27_procedure)
        assert [row.n_sequences for row in rows] == list(range(1, len(rows) + 1))

    def test_max_prefix(self, s27, s27_procedure):
        rows = observation_point_tradeoff(s27, s27_procedure, max_prefix=1)
        assert len(rows) == 1

    def test_format(self, s27, s27_procedure):
        rows = observation_point_tradeoff(s27, s27_procedure)
        text = format_tradeoff("s27", rows)
        assert "s27" in text
        assert "f.e." in text
