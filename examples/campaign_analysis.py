#!/usr/bin/env python3
"""Campaign analysis: factorial DoE → sqlite warehouse → model → dashboard.

Runs a small full-factorial campaign over the weight-selection flow
knobs (locally, no server needed), lands every Table-6 row, phase
timing and job record in a sqlite warehouse, then asks the warehouse
questions: raw SQL, a fitted regression model of coverage and TPG
area, a knob suggestion for a coverage target, and finally a fully
self-contained HTML dashboard.

Run:  python examples/campaign_analysis.py
"""

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignStore,
    fit_models,
    parse_grid,
    render_dashboard,
    run_campaign,
    suggest,
)
from repro.util.tables import format_table


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-campaign-demo-"))
    store = CampaignStore(workdir / "campaign.db")

    # 1. A 2x2x2 factorial over circuit, L_G and seed, run locally.
    grid = parse_grid("circuit=s27,g208 l_g=64,128 seed=1,2", name="demo")
    print(f"running a {grid.size}-point factorial campaign locally ...")
    run = run_campaign(
        store, grid, spec_overrides=dict(tgen_max_len=300, compaction_sims=4)
    )
    print(f"  {run.done}/{run.points} points done\n")

    # 2. Everything is now queryable — including with raw SQL.
    rows = store.query_table6(campaign="demo")
    print(format_table(
        ["pt", "circuit", "L_G", "seed", "coverage", "subs", "len"],
        [
            [r["point"], r["circuit"], r["l_g"], r["seed"],
             f"{r['coverage']:.3f}", r["n_subsequences"], r["max_length"]]
            for r in rows
        ],
        title="campaign 'demo': Table-6 rows straight from sqlite",
    ))
    print()
    sql = (
        "SELECT circuit, AVG(seconds) AS mean_s FROM timings "
        "JOIN table6_rows USING (fingerprint) "
        "WHERE phase = 'procedure' GROUP BY circuit ORDER BY circuit"
    )
    for row in store.sql(sql):
        print(f"  mean weight-selection time on {row['circuit']}: "
              f"{row['mean_s']:.3f}s")
    print()

    # 3. Fit the regression models and ask for a knob suggestion.
    models = fit_models(store)
    cov = models["coverage"]
    print(f"coverage model: {cov.n_observations} observations, "
          f"R^2 = {cov.r2:.3f}")
    advice = suggest(store, "g208", target_coverage=0.7, models=models)
    rec = advice["recommendation"]
    print(
        f"to hit {advice['target_coverage']:.0%} coverage on g208, try "
        f"L_G={rec['l_g']} tgen_max_len={rec['tgen_max_len']} "
        f"(predicted coverage {rec['predicted_coverage']:.3f}, "
        f"TPG ~{rec['predicted_tpg_gate_equivalents']:.0f} "
        f"gate equivalents)\n"
    )

    # 4. One self-contained HTML file; open it in any browser.
    dashboard = workdir / "dashboard.html"
    dashboard.write_text(render_dashboard(store))
    print(f"dashboard written to {dashboard} "
          f"({dashboard.stat().st_size} bytes, zero external assets)")


if __name__ == "__main__":
    main()
