#!/usr/bin/env python3
"""Fault diagnosis: from a failing device back to the defect.

Builds a fault dictionary for s27 under the paper's deterministic test
sequence, injects a physical defect (a hard-wired stuck-at), observes
the tester's failing syndrome, and diagnoses it — demonstrating that
diagnosis resolves exactly to structural equivalence classes.

Run:  python examples/fault_diagnosis.py
"""

from repro import TestSequence, collapse_faults, load_circuit
from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.diag import FaultDictionary, observed_syndrome
from repro.sim import Fault, fault_name


def inject(circuit: Circuit, fault: Fault) -> Circuit:
    """Hard-wire a stuck-at defect into a copy of the circuit."""
    const = Gate("__defect", GateType.CONST1 if fault.stuck else GateType.CONST0, ())
    gates = []
    for net, gate in circuit.gates.items():
        fanins = list(gate.fanins)
        for pin in range(len(fanins)):
            if fault.is_branch:
                if net == fault.gate and pin == fault.pin:
                    fanins[pin] = "__defect"
            elif fanins[pin] == fault.net:
                fanins[pin] = "__defect"
        gates.append(Gate(net, gate.gtype, tuple(fanins)))
    gates.append(const)
    outputs = [
        "__defect" if (not fault.is_branch and out == fault.net) else out
        for out in circuit.outputs
    ]
    return Circuit(circuit.name + "_defective", gates, outputs)


def main() -> None:
    circuit = load_circuit("s27")
    faults = collapse_faults(circuit)
    sequence = TestSequence.from_strings(
        ["0111", "1001", "0111", "1001", "0100",
         "1011", "1001", "0000", "0000", "1011"]
    )
    dictionary = FaultDictionary.build(circuit, sequence.patterns, faults)
    groups = dictionary.equivalence_groups()
    print(f"Dictionary: {len(faults)} faults, "
          f"{len(groups)} distinguishable syndrome classes\n")

    for fault in (faults[0], faults[10], faults[20]):
        defective = inject(circuit, fault)
        syndrome = observed_syndrome(circuit, defective, sequence.patterns)
        result = dictionary.diagnose(syndrome)
        failing = ", ".join(f"(u={u}, PO{po})" for u, po in sorted(syndrome)[:5])
        print(f"Injected {fault.net}/{fault.stuck}"
              + (f" (branch into {fault.gate}.{fault.pin})" if fault.is_branch else ""))
        print(f"  observed failures: {failing}"
              + (" ..." if len(syndrome) > 5 else ""))
        exact = ", ".join(fault_name(f) for f in result.exact)
        print(f"  exact diagnosis  : {exact}")
        print(f"  correct          : {fault in result.exact}\n")

    # Indistinguishable classes: faults that no response under this
    # sequence can tell apart.
    multi = [g for g in groups if len(g) > 1]
    if multi:
        sample = multi[0]
        names = ", ".join(fault_name(f) for f in sample)
        print(f"Example of an indistinguishable class under T: {names}")
        print("(distinguishing them needs a different test sequence — "
              "diagnosis theory 101)")


if __name__ == "__main__":
    main()
