#!/usr/bin/env python3
"""Quickstart: the paper's running example on s27, end to end.

Loads the genuine ISCAS-89 s27 circuit, uses the paper's own
deterministic test sequence (Table 1), runs the weight-selection
procedure, removes redundant assignments by reverse-order simulation,
and synthesizes + verifies the Figure-1 test pattern generator.

Run:  python examples/quickstart.py
"""

from repro import (
    FaultSimulator,
    TestSequence,
    collapse_faults,
    load_circuit,
    reverse_order_simulation,
    select_weight_assignments,
    synthesize_tpg,
    verify_tpg,
)
from repro.core import ProcedureConfig, build_table6_row
from repro.core.report import format_table6
from repro.hw import tpg_cost


def main() -> None:
    circuit = load_circuit("s27")
    print(f"Circuit: {circuit!r}")

    faults = collapse_faults(circuit)
    print(f"Collapsed stuck-at faults: {len(faults)} (the paper's f_0..f_31)")

    # The deterministic test sequence of the paper's Table 1.
    sequence = TestSequence.from_strings(
        ["0111", "1001", "0111", "1001", "0100",
         "1011", "1001", "0000", "0000", "1011"]
    )
    result = FaultSimulator(circuit).run(sequence.patterns, faults)
    print(f"T detects {len(result.detection_time)}/{len(faults)} faults "
          f"in {len(sequence)} time units\n")

    # Select weight assignments (Section 4.2) and prune (Section 4.3).
    procedure = select_weight_assignments(
        circuit, sequence, faults, ProcedureConfig(l_g=2000)
    )
    ros = reverse_order_simulation(circuit, procedure)
    print(f"Omega: {len(procedure.omega)} useful assignments generated, "
          f"{ros.n_kept} kept after reverse-order simulation")
    for assignment in ros.kept:
        print(f"  {assignment}")

    row = build_table6_row("s27", sequence, procedure, ros)
    print()
    print(format_table6([row]))

    # Hardware: the Figure-1 generator, verified cycle-exact.
    design = synthesize_tpg(list(ros.kept), procedure.l_g, circuit.inputs)
    verdict = verify_tpg(design)
    cost = tpg_cost(design)
    print(f"\nTPG: {design.circuit!r}")
    print(f"Replay verification: {'OK' if verdict.ok else 'FAILED'} "
          f"({verdict.cycles_checked} cycles checked)")
    print(f"Cost: {cost.n_flops} flip-flops, {cost.n_gates} gates, "
          f"~{cost.gate_equivalents:.0f} gate equivalents")


if __name__ == "__main__":
    main()
