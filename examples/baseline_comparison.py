#!/usr/bin/env python3
"""Baselines: pure LFSR BIST and the 3-weight method vs the proposed
weighted test sequences, at equal pattern budget.

Demonstrates the paper's motivation: free-running pseudo-random BIST
([16]/[17]-class) stores nothing but guarantees nothing; the proposed
subsequence weights reach the deterministic sequence's coverage by
construction.

Run:  python examples/baseline_comparison.py [circuit]
"""

import sys

from repro import FlowConfig, load_circuit, run_full_flow
from repro.baselines import lfsr_bist, three_weight_bist
from repro.baselines.lfsr import coverage_curve
from repro.core import ProcedureConfig
from repro.util.tables import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "g208"
    circuit = load_circuit(name)
    flow = run_full_flow(
        circuit,
        FlowConfig(
            seed=1,
            tgen_max_len=1000,
            compaction_sims=40,
            procedure=ProcedureConfig(l_g=256),
        ),
    )
    faults = list(flow.procedure.target_faults)
    budget = max(1, flow.table6.n_sequences) * flow.procedure.l_g
    print(f"Circuit {name}: {len(faults)} target faults, "
          f"budget {budget} cycles "
          f"({flow.table6.n_sequences} assignments x L_G={flow.procedure.l_g})\n")

    lfsr = lfsr_bist(circuit, faults, n_patterns=budget, seed=1)
    threew = three_weight_bist(
        circuit, flow.sequence, faults,
        window=8,
        n_per_assignment=max(1, budget // max(1, (len(flow.sequence) + 7) // 8)),
        seed=1,
    )

    print(format_table(
        ["method", "coverage of T's fault set", "storage needed"],
        [
            ["proposed (weighted sequences)", "100.0%",
             f"{flow.table6.n_subsequences} subsequences as FSM outputs"],
            ["LFSR pseudo-random", f"{100 * lfsr.coverage:.1f}%", "none"],
            ["3-weight windows [10]", f"{100 * threew.coverage:.1f}%",
             "one {0,0.5,1} assignment per window"],
        ],
        title="Coverage at equal pattern budget",
    ))

    print("\nLFSR coverage curve (patterns -> coverage):")
    for t, cov in coverage_curve(lfsr, n_points=8, length=budget):
        bar = "#" * int(cov * 40)
        print(f"  {t:>6} {100 * cov:6.1f}% {bar}")


if __name__ == "__main__":
    main()
