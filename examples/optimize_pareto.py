#!/usr/bin/env python3
"""Multi-objective search over weight assignments on s27.

The paper's Section-4 procedure is greedy: it grows Omega one
assignment at a time, each step maximizing newly-detected faults.  The
:mod:`repro.optimize` subsystem asks what that greed leaves on the
table by running a seeded NSGA-II search over the same quantized
design space — weights drawn from the mined alphabet, windows from the
L_G grid — and scoring every candidate on three objectives at once:
fault coverage, TPG area (gate equivalents of the Figure-1 generator),
and test length.

The greedy Omega seeds the search, so the reported Pareto front always
contains a point at least as good as the baseline; the interesting
output is the rest of the front — the coverage/area/length trade-off
curve the greedy construction cannot see.

Run:  python examples/optimize_pareto.py
"""

from repro.optimize import (
    OptimizeConfig,
    front_comparison,
    render_front_table,
    run_optimize,
)


def main() -> None:
    # Small fixed budget: everything here is deterministic in the seed.
    config = OptimizeConfig(
        seed=1,
        population=8,
        generations=2,
        l_g=64,
        tgen_max_len=256,
        compaction_sims=20,
    )
    result = run_optimize("s27", config)

    print(f"Weight alphabet ({len(result.alphabet)} weights): "
          + ", ".join(str(w) for w in result.alphabet))
    print(f"Window grid: {list(result.windows)} cycles")
    print()
    print(render_front_table(result))
    print()

    comparison = front_comparison(result)
    base = comparison["baseline"]
    cheap = comparison["area_at_equal_coverage"]
    print("Same-budget comparison against greedy Omega:")
    print(f"  greedy: {base['detected']} faults at {base['area']:.1f} GE, "
          f"{base['length']} cycles")
    if cheap is not None:
        print(f"  search: {cheap['detected']} faults at "
              f"{cheap['area']:.1f} GE, {cheap['length']} cycles "
              f"(smallest TPG at no coverage loss)")
    # Points below the baseline's coverage are the trade-off curve: how
    # much area/length a designer saves by accepting lower coverage.
    cheaper = [p for p in result.front if p.area < base["area"]]
    if cheaper:
        print(f"  {len(cheaper)} front point(s) use less area than greedy "
              f"(down to {min(p.area for p in cheaper):.1f} GE)")


if __name__ == "__main__":
    main()
