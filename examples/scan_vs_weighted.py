#!/usr/bin/env python3
"""Scan DFT vs the paper's non-scan weighted sequences, side by side.

Runs both flows on one circuit and prints the three-way tradeoff the
paper's introduction argues: coverage, test application time, and
hardware/routing overhead.

Run:  python examples/scan_vs_weighted.py [circuit]
"""

import sys

from repro import FlowConfig, load_circuit, run_full_flow
from repro.core import ProcedureConfig
from repro.hw import tpg_cost
from repro.scan import scan_atpg, scan_cost
from repro.sim import collapse_faults
from repro.util.tables import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s27"
    circuit = load_circuit(name)
    faults = collapse_faults(circuit)
    print(f"Circuit: {circuit!r}, {len(faults)} collapsed faults\n")

    flow = run_full_flow(
        circuit,
        FlowConfig(procedure=ProcedureConfig(l_g=256), synthesize_hardware=True),
    )
    assert flow.tpg is not None
    proposed_cost = tpg_cost(flow.tpg)
    proposed_cycles = flow.table6.n_sequences * flow.procedure.l_g

    scan = scan_atpg(circuit, faults)
    s_cost = scan_cost(circuit, scan.design)

    print(format_table(
        ["", "proposed (weighted seqs)", "full scan + comb. ATPG"],
        [
            ["faults detected",
             f"{len(flow.procedure.target_faults)} (= coverage of T)",
             f"{len(scan.detected)} (+{len(scan.untestable)} proven untestable)"],
            ["test time (cycles)", proposed_cycles, scan.session_cycles],
            ["extra gates", f"{proposed_cost.n_gates} (TPG, at inputs only)",
             f"{s_cost.extra_gates} (inside every flop's datapath)"],
            ["extra flip-flops", proposed_cost.n_flops, 0],
            ["routed control pins", 0, s_cost.extra_ports],
            ["flip-flops modified", 0, s_cost.cells],
        ],
        title=f"DFT tradeoff on {name}",
    ))

    print(
        "\nThe paper's position: no flip-flop is touched and nothing is "
        "routed across the layout — the cost is test time (free-running "
        "cycles) and the weight FSM bank at the inputs."
    )


if __name__ == "__main__":
    main()
