#!/usr/bin/env python3
"""BIST for your own circuit: parse a .bench netlist, generate a test
sequence, select weights, and export the synthesized TPG as .bench.

This is the workflow a user with their own design follows: everything
is derived automatically — the deterministic sequence comes from the
built-in simulation-based test generator, so no external ATPG is
needed.

Run:  python examples/custom_circuit_bist.py
"""

from repro import FlowConfig, parse_bench_text, run_full_flow, write_bench
from repro.core import ProcedureConfig
from repro.hw import rom_bits_equivalent, tpg_cost

# A small synchronous design: a 2-bit counter with enable, synchronous
# clear, and a terminal-count output (`hit` at state 11).  The clear
# input makes the state initializable from the unknown power-up state —
# a requirement for any no-reset BIST scheme.
MY_DESIGN = """
# two-bit enabled counter with synchronous clear
INPUT(en)
INPUT(clr)
OUTPUT(hit)
nclr = NOT(clr)
q0 = DFF(d0)
q1 = DFF(d1)
tog0 = XOR(q0, en)
d0 = AND(nclr, tog0)
carry = AND(en, q0)
tog1 = XOR(q1, carry)
d1 = AND(nclr, tog1)
hit = AND(q0, q1)
"""


def main() -> None:
    circuit = parse_bench_text(MY_DESIGN, "counter2")
    print(f"Parsed: {circuit!r}")

    flow = run_full_flow(
        circuit,
        FlowConfig(
            seed=7,
            tgen_max_len=500,
            compaction_sims=40,
            procedure=ProcedureConfig(l_g=256),
            synthesize_hardware=True,
        ),
    )

    print(f"Generated T: {len(flow.generated.sequence)} cycles, "
          f"coverage {100 * flow.generated.coverage:.1f}%")
    if flow.compaction:
        print(f"Compacted to {flow.compaction.compacted_length} cycles "
              f"({100 * flow.compaction.reduction:.0f}% shorter)")
    print(f"Weight assignments kept: {flow.table6.n_sequences} "
          f"({flow.table6.n_subsequences} subsequences, "
          f"longest {flow.table6.max_length})")

    assert flow.tpg is not None
    print(f"\nTPG verified: {flow.tpg_verified}")
    cost = tpg_cost(flow.tpg)
    rom = rom_bits_equivalent(len(flow.sequence), len(circuit.inputs))
    print(f"TPG cost: {cost.n_flops} FFs + {cost.n_gates} gates "
          f"(vs {rom} ROM bits to store T directly)")

    bench = write_bench(flow.tpg.circuit)
    print("\n--- synthesized TPG netlist (.bench), first 15 lines ---")
    print("\n".join(bench.splitlines()[:15]))
    print(f"... ({len(bench.splitlines())} lines total)")


if __name__ == "__main__":
    main()
