#!/usr/bin/env python3
"""Testability analysis: why do random patterns miss faults?

Computes SCOAP and COP measures for a circuit, ranks its faults by
estimated random-pattern detection probability, then checks the
prediction against reality: the faults a long random-walk test
sequence actually fails to detect should cluster in the predicted-hard
tail.

Run:  python examples/testability_analysis.py [circuit]
"""

import sys

from repro import collapse_faults, load_circuit
from repro.analysis import compute_cop, compute_scoap, detection_probability
from repro.sim import fault_name
from repro.tgen import generate_test_sequence
from repro.util.tables import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "g208"
    circuit = load_circuit(name)
    faults = collapse_faults(circuit)
    print(f"Circuit: {circuit!r}, {len(faults)} collapsed faults\n")

    scoap = compute_scoap(circuit)
    cop = compute_cop(circuit)

    scored = sorted(
        ((detection_probability(cop, f), f) for f in faults),
        key=lambda pair: pair[0],
    )
    print(format_table(
        ["fault", "COP det. prob", "SCOAP difficulty"],
        [
            [fault_name(f), f"{dp:.2e}",
             scoap.fault_difficulty(f.net, f.stuck)]
            for dp, f in scored[:8]
        ],
        title="Predicted hardest faults",
    ))

    gen = generate_test_sequence(circuit, faults, seed=7, max_len=2000)
    missed = set(gen.undetected)
    print(f"\nRandom walk (2000 cycles): "
          f"{len(gen.detected)}/{len(faults)} detected")

    if missed:
        missed_dp = sorted(detection_probability(cop, f) for f in missed)
        hit_dp = sorted(detection_probability(cop, f) for f in gen.detected)
        median = lambda xs: xs[len(xs) // 2]  # noqa: E731
        print(f"median COP detection probability:")
        print(f"  faults the walk detected : {median(hit_dp):.2e}")
        print(f"  faults the walk missed   : {median(missed_dp):.2e}")
        hard_tail = {f for _dp, f in scored[: len(missed)]}
        overlap = len(hard_tail & missed) / len(missed)
        print(f"overlap of missed faults with the predicted-hard tail: "
              f"{100 * overlap:.0f}%")
    else:
        print("the walk detected everything — try a larger circuit")


if __name__ == "__main__":
    main()
