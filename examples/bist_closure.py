#!/usr/bin/env python3
"""Complete self-test: TPG → CUT → MISR as one synthesized circuit.

Runs the full paper flow on s27, stitches the synthesized Figure-1
generator, the circuit under test, and a MISR response compactor into
a single netlist with one reset pin, simulates the whole self-test
session gate-by-gate, and compares the hardware signature against the
software prediction.  Finally the composed design is exported as
structural Verilog.

Run:  python examples/bist_closure.py
"""

from repro import FlowConfig, load_circuit, run_full_flow, write_verilog
from repro.core import ProcedureConfig
from repro.flows import compose_bist
from repro.hw import signature_coverage, tpg_cost


def main() -> None:
    cut = load_circuit("s27")
    flow = run_full_flow(
        cut,
        FlowConfig(
            seed=1,
            procedure=ProcedureConfig(l_g=128),
            synthesize_hardware=True,
        ),
    )
    assert flow.tpg is not None and flow.tpg_verified
    print(f"CUT: {cut!r}")
    print(f"TPG: {flow.tpg.circuit!r} "
          f"({flow.tpg.n_assignments} assignments x L_G={flow.tpg.l_g})")

    closure = compose_bist(cut, flow.tpg)
    print(f"Composed self-test circuit: {closure.circuit!r}")
    print(f"Settle window: {closure.settle_cycles} cycles "
          f"(X flush before the MISR starts absorbing)")

    hw_sig, hw_x = closure.run_hardware()
    sw_sig, sw_x = closure.predict_signature()
    print(f"Hardware signature: {hw_sig:#0{closure.misr_width // 4 + 2}x} "
          f"({hw_x} unknown bits)")
    print(f"Predicted signature: {sw_sig:#0{closure.misr_width // 4 + 2}x} "
          f"({sw_x} X positions absorbed)")
    print("Signature match:", hw_sig == sw_sig and hw_x == 0 and sw_x == 0)

    # How much coverage survives signature-based detection?
    stimuli = [
        assignment.generate(flow.procedure.l_g).patterns
        for assignment in flow.reverse_order.kept
    ]
    grading = signature_coverage(cut, stimuli, list(flow.procedure.target_faults))
    print(f"\nSignature-based grading of the {len(flow.procedure.target_faults)} "
          f"target faults:")
    print(f"  detected by signature : {len(grading.detected)}")
    print(f"  lost to aliasing      : {len(grading.aliased)}")
    print(f"  unknown (X leakage)   : {len(grading.unknown)}")
    print(f"  no output discrepancy : {len(grading.undetected)}")

    cost = tpg_cost(flow.tpg)
    print(f"\nTotal BIST overhead: {cost.n_flops} TPG flops + "
          f"{closure.misr_width} MISR flops + settle counter, "
          f"{cost.n_gates} TPG gates")

    verilog = write_verilog(closure.circuit)
    print(f"\nVerilog export: {len(verilog.splitlines())} lines "
          f"(module {closure.circuit.name})")


if __name__ == "__main__":
    main()
