#!/usr/bin/env python3
"""Serving BIST campaigns: a job server, a client, and a tiny campaign.

Boots an in-process campaign server (the same machinery behind
``repro serve``), submits a mixed-priority batch of Section-4 flow
jobs over real HTTP, shows content-addressed dedup and the rate
limiter in action, then drains the server gracefully and proves the
served results are byte-identical to running the flows directly.

Run:  python examples/serve_campaign.py
"""

import tempfile
from pathlib import Path

from repro.errors import RateLimited
from repro.flows.full_flow import run_full_flow
from repro.serve import (
    JobSpec,
    ServeClient,
    ServerConfig,
    ServerThread,
    flow_result_payload,
    render_result,
)
from repro.util.tables import format_table


def spec(seed: int, priority: int, client: str) -> JobSpec:
    return JobSpec(
        circuit="s27",
        seed=seed,
        tgen_max_len=512,
        compaction_sims=16,
        l_g=128,
        priority=priority,
        client=client,
    )


def main() -> None:
    state = Path(tempfile.mkdtemp(prefix="repro-serve-demo-"))
    config = ServerConfig(
        state_dir=state, port=0, rate_per_s=2.0, burst=3
    )
    campaign = [
        spec(1, priority=9, client="alice"),
        spec(2, priority=4, client="alice"),
        spec(3, priority=0, client="bob"),
    ]

    with ServerThread(config) as url:
        client = ServeClient(url, client_id="alice")
        print(f"campaign server listening on {url}")
        print(f"state (journal, results, cache) under {state}\n")

        keys = []
        for s in campaign:
            record = client.submit_with_backoff(s, max_wait_s=30.0)
            keys.append(str(record["key"]))
            print(
                f"submitted seed={s.seed} priority={s.priority} "
                f"-> {record['key']} ({'new' if record['created'] else 'dedup'})"
            )

        # The same computation resubmitted — at any priority, from any
        # client — dedups onto the existing job.
        dup = client.submit_with_backoff(
            spec(1, priority=0, client="bob"), max_wait_s=30.0
        )
        print(f"resubmit of seed=1 dedups onto {dup['key']}\n")

        # A burst past the per-client token bucket meets 429 with a
        # machine-readable Retry-After instead of silent queueing.
        try:
            for burst_seed in range(50, 60):
                client.submit(spec(burst_seed, priority=1, client="alice"))
        except RateLimited as exc:
            print(
                f"rate limiter: HTTP {exc.status}, "
                f"retry after {exc.retry_after_s:.2f}s\n"
            )

        records = client.wait_all(keys, timeout_s=120.0)
        rows = []
        for key in keys:
            job = records[key]
            result = client.result(key)
            rows.append([
                key[:12],
                job["spec"]["seed"],
                job["spec"]["priority"],
                job["state"],
                result["table6"]["given_det"],
                result["omega_size"],
            ])
        print(format_table(
            ["job", "seed", "prio", "state", "detected", "|omega|"],
            rows,
            title="campaign results",
        ))

        # Byte-identity: the served result is exactly what a direct
        # run_full_flow produces, rendered canonically.
        first = campaign[0]
        served = client.result_bytes(keys[0])
        direct = run_full_flow(first.circuit, first.flow_config())
        identical = served == render_result(flow_result_payload(direct))
        print(f"\nserved result byte-identical to direct flow: {identical}")
        assert identical

    print("server drained cleanly")


if __name__ == "__main__":
    main()
