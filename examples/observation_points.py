#!/usr/bin/env python3
"""Observation-point tradeoff (the paper's Section 5, Tables 7-16).

Shows how a *limited* set of weight assignments plus a few observation
points can replace the full assignment set: fewer weight FSMs on chip,
at the cost of some observability DFT.

Run:  python examples/observation_points.py [circuit]
"""

import sys

from repro import FlowConfig, load_circuit, run_full_flow
from repro.core import ProcedureConfig
from repro.obs import format_tradeoff, observation_point_tradeoff


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "g208"
    circuit = load_circuit(name)
    print(f"Circuit: {circuit!r}")

    flow = run_full_flow(
        circuit,
        FlowConfig(
            seed=1,
            tgen_max_len=1000,
            compaction_sims=40,
            procedure=ProcedureConfig(l_g=256),
        ),
    )
    print(f"T: {len(flow.sequence)} cycles, "
          f"{len(flow.procedure.target_faults)} target faults, "
          f"|Omega| = {len(flow.procedure.omega)}\n")

    rows = observation_point_tradeoff(circuit, flow.procedure)
    print(format_tradeoff(name, rows))

    # Narrate the tradeoff like the paper does.
    first, last = rows[0], rows[-1]
    print(
        f"\nWith {first.n_sequences} assignment(s) "
        f"({first.n_subsequences} subsequences) the weighted sequences "
        f"reach {first.fault_efficiency:.1f}% fault efficiency; "
        f"{first.n_observation_points} observation points lift that to "
        f"{first.fault_efficiency_with_obs:.1f}%."
    )
    print(
        f"With {last.n_sequences} assignments the full "
        f"{last.fault_efficiency:.1f}% is reached with "
        f"{last.n_observation_points} observation points."
    )
    if first.observation_points:
        preview = ", ".join(first.observation_points[:6])
        print(f"First-row observation points: {preview}"
              + (" ..." if len(first.observation_points) > 6 else ""))


if __name__ == "__main__":
    main()
